"""Observability layer: unified metrics, tracing, and profiling.

The paper's §5–§6 claims are *operational* — linear Storm scalability,
millisecond end-to-end latency under production traffic — and reproducing
them requires measuring this system the way Tencent measured theirs.
:mod:`repro.obs` is that measurement plane:

* :class:`MetricsRegistry` with typed :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments — the shared registry every subsystem
  (topology metrics, router, trainer, KV stores, breakers) reports into;
* :class:`Tracer` — causally-linked spans from the spout (or a routed
  request) through every bolt and KV call, with per-stage latency
  attribution;
* :func:`profiled` / :class:`SamplingProfiler` — hot-path timing hooks;
* :class:`InstrumentedKVStore` — per-op KV metrics and spans;
* :class:`Observability` — the bundle components accept as one ``obs=``
  argument.

Everything runs on injected clocks, so observability output is exactly as
deterministic as the code under observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..clock import Clock, VirtualClock
from .kv import InstrumentedKVStore
from .percentiles import nearest_rank, summarize
from .profile import FunctionProfiler, SamplingProfiler, profiled
from .registry import (
    DEFAULT_BUCKETS,
    REGISTRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import TRACE_SCHEMA_VERSION, Span, SpanContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "REGISTRY_SCHEMA_VERSION",
    "Span",
    "SpanContext",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "FunctionProfiler",
    "SamplingProfiler",
    "profiled",
    "InstrumentedKVStore",
    "Observability",
    "nearest_rank",
    "summarize",
]


class _PerfClock:
    """Monotonic wall clock (``time.perf_counter``) for duration timing."""

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "_PerfClock()"


@dataclass
class Observability:
    """One handle bundling the registry, tracer, and profiling hooks.

    Components that support observability take ``obs: Observability |
    None = None``; passing the same bundle to the executor, the router,
    and the recommender is what stitches their metrics into one registry
    document and their spans into shared traces.

    ``perf_clock`` is the clock *durations* are measured on — wall
    ``perf_counter`` by default, or the same virtual clock as everything
    else under :meth:`deterministic` (where latencies only advance when
    the test advances the clock, making golden snapshots exact).
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    profiler: FunctionProfiler | None = None
    perf_clock: Clock = field(default_factory=_PerfClock)

    @classmethod
    def create(cls, sample_every: int = 1) -> "Observability":
        """Production-style bundle: wall clocks, optional trace sampling."""
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(sample_every=sample_every),
            profiler=FunctionProfiler(),
        )

    @classmethod
    def deterministic(cls, clock: Clock | None = None) -> "Observability":
        """Fully deterministic bundle on one shared virtual clock."""
        shared = clock if clock is not None else VirtualClock(0.0)
        return cls(
            registry=MetricsRegistry(clock=shared),
            tracer=Tracer(clock=shared),
            profiler=FunctionProfiler(clock=shared.now),
            perf_clock=shared,
        )

    def instrument_store(self, store):
        """Wrap a KV store so its ops report into this bundle."""
        return InstrumentedKVStore(
            store, registry=self.registry, tracer=self.tracer
        )
