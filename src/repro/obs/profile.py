"""Lightweight profiling hooks: ``@profiled`` and a sampling profiler.

Two complementary views of where topology time goes:

* :func:`profiled` — an explicit instrumentation decorator for known hot
  paths (the MF update step, top-N scoring).  When no
  :class:`FunctionProfiler` is active the wrapper is a single global read
  plus the call — cheap enough to leave on permanently.  Activate one
  with :meth:`FunctionProfiler.activate` (a context manager) to collect
  per-function call counts and inclusive wall time.
* :class:`SamplingProfiler` — a statistical profiler that periodically
  samples every live thread's stack via ``sys._current_frames()``.  No
  per-call overhead at all, so it can watch a whole topology run and
  surface hot frames that nobody thought to decorate.

Both report plain dicts, so bench JSON can embed them.
"""

from __future__ import annotations

import functools
import sys
import threading
import time
from collections import Counter as _TallyCounter
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

__all__ = ["FunctionProfiler", "SamplingProfiler", "profiled"]

F = TypeVar("F", bound=Callable[..., Any])

#: The process-wide active profiler ``@profiled`` wrappers report into.
_active_profiler: "FunctionProfiler | None" = None


class FunctionProfiler:
    """Collects call counts and inclusive time for ``@profiled`` functions."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._now = clock or time.perf_counter
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._calls[name] = self._calls.get(name, 0) + 1
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def stats(self) -> dict[str, dict[str, float]]:
        """``{name: {calls, total_seconds, mean_seconds}}`` snapshot."""
        with self._lock:
            return {
                name: {
                    "calls": self._calls[name],
                    "total_seconds": self._seconds[name],
                    "mean_seconds": (
                        self._seconds[name] / self._calls[name]
                        if self._calls[name]
                        else 0.0
                    ),
                }
                for name in sorted(self._calls)
            }

    def report(self, top: int = 10) -> str:
        """Human-readable table of the ``top`` costliest functions."""
        rows = sorted(
            self.stats().items(),
            key=lambda kv: -kv[1]["total_seconds"],
        )[:top]
        lines = [f"{'function':<48} {'calls':>8} {'total_s':>10} {'mean_us':>10}"]
        for name, row in rows:
            lines.append(
                f"{name:<48} {row['calls']:>8} "
                f"{row['total_seconds']:>10.4f} "
                f"{row['mean_seconds'] * 1e6:>10.2f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._calls.clear()
            self._seconds.clear()

    @contextmanager
    def activate(self) -> Iterator["FunctionProfiler"]:
        """Route ``@profiled`` timings here for the duration of the block."""
        global _active_profiler
        previous = _active_profiler
        _active_profiler = self
        try:
            yield self
        finally:
            _active_profiler = previous


def profiled(fn: F | None = None, *, name: str | None = None) -> F:
    """Instrument a hot-path function for :class:`FunctionProfiler`.

    Usable bare (``@profiled``) or with a stable display name
    (``@profiled(name="mf.sgd_step")`` — recommended for methods, so
    reports stay readable after refactors).  With no active profiler the
    overhead is one module-global read.
    """

    def decorate(func: F) -> F:
        label = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            profiler = _active_profiler
            if profiler is None:
                return func(*args, **kwargs)
            started = profiler._now()
            try:
                return func(*args, **kwargs)
            finally:
                profiler.record(label, profiler._now() - started)

        wrapper.__profiled_name__ = label  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    if fn is not None:
        return decorate(fn)
    return decorate  # type: ignore[return-value]


class SamplingProfiler:
    """Statistical whole-process profiler over ``sys._current_frames()``.

    A daemon thread wakes every ``interval`` seconds and tallies, for
    every live thread, the innermost application frame (and its full
    stack if ``keep_stacks``).  Zero cost on the code under measurement;
    resolution is bounded by ``interval`` — this is a *topology-level*
    tool for "where does the run spend its time", not a microbenchmark.

    Use as a context manager around an executor run::

        with SamplingProfiler(interval=0.005) as prof:
            ThreadedExecutor(topology).run()
        print(prof.report())
    """

    def __init__(
        self, interval: float = 0.005, keep_stacks: bool = False
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.keep_stacks = keep_stacks
        self.samples = 0
        self._frames: _TallyCounter[str] = _TallyCounter()
        self._stacks: _TallyCounter[tuple[str, ...]] = _TallyCounter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @staticmethod
    def _frame_label(frame) -> str:
        code = frame.f_code
        return f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno})"

    def _sample_once(self) -> None:
        own = threading.get_ident()
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                self._frames[self._frame_label(frame)] += 1
                if self.keep_stacks:
                    stack: list[str] = []
                    cursor = frame
                    while cursor is not None and len(stack) < 64:
                        stack.append(self._frame_label(cursor))
                        cursor = cursor.f_back
                    self._stacks[tuple(reversed(stack))] += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def hot_frames(self, top: int = 10) -> list[tuple[str, int]]:
        """The ``top`` most-sampled frames as ``(label, samples)`` pairs."""
        with self._lock:
            return self._frames.most_common(top)

    def stats(self) -> dict[str, float]:
        """Fraction of samples per frame (bench-JSON friendly)."""
        with self._lock:
            total = max(1, self.samples)
            return {
                label: count / total
                for label, count in self._frames.most_common()
            }

    def report(self, top: int = 10) -> str:
        rows = self.hot_frames(top)
        total = max(1, self.samples)
        lines = [f"{'frame':<64} {'samples':>8} {'share':>7}"]
        for label, count in rows:
            lines.append(f"{label:<64} {count:>8} {count / total:>6.1%}")
        return "\n".join(lines)
