"""The single percentile codepath shared by every latency summary.

Before this module existed, :class:`~repro.storm.metrics.LatencyStats`
(topology metrics) and the serving router each computed percentiles over
their own sample buffers, with subtly divergent rank conventions.  Every
percentile the system reports — topology stage latency, router p50/p95/p99,
histogram summaries, bench JSON — now funnels through
:func:`nearest_rank`, so "p99" means the same thing in every snapshot.

The convention is the *nearest-rank* method on the sorted sample set:

    ``rank = max(1, ceil(q/100 * n))`` → the value at that 1-based rank.

It is deterministic (no interpolation, so tests can assert exact values
from known samples) and matches numpy's ``inverted_cdf`` method for
``q > 0``; ``q = 0`` returns the minimum.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["nearest_rank", "summarize"]


def nearest_rank(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples``; ``0.0`` when empty.

    ``q`` is in [0, 100].  ``samples`` need not be sorted; sorting happens
    here, so callers keep their buffers append-only.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(
    samples: Sequence[float], quantiles: Sequence[float] = (50.0, 95.0, 99.0)
) -> dict[str, float]:
    """Percentile summary dict (``{"p50": ..., ...}``) over one sort.

    The keys drop trailing ``.0`` (``p99`` not ``p99.0``) but keep
    fractional quantiles distinct (``p99.9``).
    """
    if not samples:
        return {f"p{q:g}": 0.0 for q in quantiles}
    ordered = sorted(samples)
    n = len(ordered)
    out: dict[str, float] = {}
    for q in quantiles:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = max(1, math.ceil(q / 100.0 * n))
        out[f"p{q:g}"] = ordered[rank - 1]
    return out
