"""Unified metrics registry: typed instruments with labels and snapshots.

The paper's production claims (§6: millisecond serving under billions of
tuples per day) are measurement claims, and before this module each
subsystem counted for itself — :class:`~repro.storm.metrics.TopologyMetrics`
in one private dict, the router in another, the breakers in plain ints.  A
:class:`MetricsRegistry` is the one place they all register into, so a
single ``to_json()`` call captures the whole system and the bench harness
can diff runs.

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotonically non-decreasing; ``inc()`` only.
* :class:`Gauge` — a value that goes both ways; ``set()``/``inc()``/``dec()``.
* :class:`Histogram` — fixed bucket boundaries chosen at creation time,
  cumulative bucket counts, exact count/sum, plus a bounded raw-sample
  buffer so percentile queries go through the shared
  :func:`~repro.obs.percentiles.nearest_rank` codepath.  Durations are
  measured on an injected clock (:meth:`Histogram.time`), so latency
  metrics are deterministic under a :class:`~repro.clock.VirtualClock`.

Instruments support labels: declare ``labelnames`` at registration, then
``instrument.labels(component="spout")`` returns the child series for that
label combination.  Metric naming convention (enforced nowhere, documented
in DESIGN.md): ``<subsystem>_<quantity>_<unit>`` with ``_total`` for
counters — e.g. ``storm_tuples_processed_total``,
``serving_request_latency_seconds``.

Everything is thread-safe; ``snapshot()`` returns plain data that is
detached from the registry (mutating it cannot corrupt live instruments,
and later instrument updates never mutate an already-taken snapshot).
"""

from __future__ import annotations

import json
import re
import threading
from typing import Iterable, Mapping, Sequence

from ..clock import Clock, SystemClock
from .percentiles import nearest_rank

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "REGISTRY_SCHEMA_VERSION",
]

#: Version stamped into every ``MetricsRegistry.to_json()`` document.
REGISTRY_SCHEMA_VERSION = 1

#: Default histogram boundaries (seconds): 100 µs .. 10 s, roughly
#: logarithmic — covers both sub-millisecond KV ops and multi-second runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name must be lower_snake_case ([a-z0-9_]), got {name!r}"
        )
    return name


class _Instrument:
    """Shared label machinery: one parent holds one child per label set."""

    kind = "instrument"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], "_Instrument"] = {}
        self._lock = threading.Lock()

    # -- labels ------------------------------------------------------------

    def labels(self, **labelvalues: str) -> "_Instrument":
        """The child series for one label combination (created on demand)."""
        if not self.labelnames:
            raise ValueError(f"{self.name} was declared without labels")
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def _series(self) -> list[tuple[dict[str, str], "_Instrument"]]:
        """(labels-dict, leaf) pairs in deterministic (sorted-label) order."""
        if not self.labelnames:
            return [({}, self)]
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]

    def _guard_unlabelled(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; "
                "call .labels(...) first"
            )


class Counter(_Instrument):
    """A monotonically non-decreasing count."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self._guard_unlabelled()
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, breaker state, ...)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._guard_unlabelled()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._guard_unlabelled()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Timer:
    """Context manager recording one duration into a histogram."""

    __slots__ = ("_histogram", "_clock", "_started")

    def __init__(self, histogram: "Histogram", clock: Clock) -> None:
        self._histogram = histogram
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = self._clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(self._clock.now() - self._started)


class Histogram(_Instrument):
    """Fixed-boundary histogram with exact count/sum and percentiles.

    ``buckets`` are upper bounds in increasing order; an implicit ``+Inf``
    bucket always exists.  Bucket counts reported by :meth:`state` are
    *cumulative* (Prometheus-style), so they are monotonically
    non-decreasing across the boundaries — the invariant the obs test
    suite pins down.

    Up to ``sample_limit`` raw observations are retained so
    :meth:`percentile` can answer through the shared nearest-rank
    codepath; beyond the limit count/sum/buckets stay exact while
    percentiles describe the first ``sample_limit`` samples (same
    contract as :class:`~repro.storm.metrics.LatencyStats`).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        clock: Clock | None = None,
        sample_limit: int = 65_536,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds
        self.sample_limit = sample_limit
        self._clock = clock or SystemClock()
        self._bucket_counts = [0] * (len(bounds) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._samples: list[float] = []

    def _make_child(self) -> "Histogram":
        return Histogram(
            self.name,
            self.help,
            buckets=self.buckets,
            clock=self._clock,
            sample_limit=self.sample_limit,
        )

    def observe(self, value: float) -> None:
        self._guard_unlabelled()
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._bucket_counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.sample_limit:
                self._samples.append(value)

    def time(self) -> _Timer:
        """``with histogram.time(): ...`` — duration on the injected clock."""
        self._guard_unlabelled()
        return _Timer(self, self._clock)

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained raw samples."""
        with self._lock:
            samples = list(self._samples)
        return nearest_rank(samples, q)

    def state(self) -> dict:
        """Plain-data summary: cumulative buckets, count, sum, percentiles."""
        with self._lock:
            raw = list(self._bucket_counts)
            count = self._count
            total = self._sum
            mn = self._min if self._count else 0.0
            mx = self._max
            samples = list(self._samples)
        cumulative: list[int] = []
        running = 0
        for c in raw:
            running += c
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cum}
                for bound, cum in zip(
                    list(self.buckets) + ["+Inf"], cumulative
                )
            ],
            "count": count,
            "sum": total,
            "min": mn,
            "max": mx,
            "p50": nearest_rank(samples, 50.0),
            "p95": nearest_rank(samples, 95.0),
            "p99": nearest_rank(samples, 99.0),
        }


class MetricsRegistry:
    """Process-wide (or run-wide) collection of named instruments.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create:
    registering the same name twice returns the existing instrument, but
    re-registering under a different kind or label set raises — silent
    metric collisions are exactly what a shared registry exists to
    prevent.

    ``clock`` seeds every histogram's timer, so one
    :class:`~repro.clock.VirtualClock` injected here makes every latency
    metric in the system deterministic.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or SystemClock()
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def _get_or_create(self, cls, name: str, kwargs: dict) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, cannot re-register as {cls.kind}"
                    )
                if existing.labelnames != tuple(kwargs.get("labelnames", ())):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, got "
                        f"{tuple(kwargs.get('labelnames', ()))}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, {"help": help, "labelnames": tuple(labelnames)}
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, {"help": help, "labelnames": tuple(labelnames)}
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            {
                "help": help,
                "labelnames": tuple(labelnames),
                "buckets": tuple(buckets),
                "clock": self._clock,
            },
        )

    # -- introspection -----------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def snapshot(self) -> dict:
        """Detached plain-data view of every instrument.

        The returned structure shares nothing mutable with the registry:
        callers may mutate it freely, and instrument updates after the
        call never show up in it.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        out: dict[str, dict] = {}
        for name, instrument in instruments:
            series = []
            for labels, leaf in instrument._series():
                if isinstance(leaf, Histogram):
                    data: dict = leaf.state()
                elif isinstance(leaf, (Counter, Gauge)):
                    data = {"value": leaf.value}
                else:  # pragma: no cover - no other kinds exist
                    data = {}
                series.append({"labels": labels, **data})
            out[name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "series": series,
            }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """The full registry as a schema-versioned JSON document."""
        document = {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "metrics": self.snapshot(),
        }
        return json.dumps(document, indent=indent, sort_keys=True)

    def total(self, name: str, **labels: str) -> float:
        """Sum of a counter/gauge over all series matching ``labels``.

        ``labels`` filters on a subset of the instrument's label names —
        ``registry.total("serving_requests_total", outcome="shed")`` sums
        the shed count across scenarios.  Unknown instruments total 0.0
        (absence of traffic, not an error); histograms are rejected
        because summing their counts silently discards the distribution.
        """
        instrument = self.get(name)
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise ValueError(
                f"metric {name!r} is a histogram; total() only sums "
                "counters and gauges"
            )
        unknown = set(labels) - set(instrument.labelnames)
        if unknown:
            raise ValueError(
                f"metric {name!r} has labels {instrument.labelnames}, "
                f"cannot filter on {sorted(unknown)}"
            )
        wanted = {k: str(v) for k, v in labels.items()}
        out = 0.0
        for series_labels, leaf in instrument._series():
            if all(series_labels.get(k) == v for k, v in wanted.items()):
                out += leaf.value  # type: ignore[union-attr]
        return out

    def counter_totals(self) -> dict[str, float]:
        """Flat ``{name{label=value,...}: total}`` view of every counter.

        Only counters — the deterministic part of a run.  Used by the
        executor-equivalence tests: two executors over the same stream
        must agree on every count even though latency histograms differ.
        """
        totals: dict[str, float] = {}
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, instrument in instruments:
            if not isinstance(instrument, Counter):
                continue
            for labels, leaf in instrument._series():
                label_part = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                key = f"{name}{{{label_part}}}" if label_part else name
                totals[key] = leaf.value  # type: ignore[union-attr]
        return totals
