"""Observability wrapper for KV stores: op counters, latency, spans.

The paper's serving path is dominated by KV traffic (vectors, histories,
similar-video lists all live in the "distributed memory-based key-value
storage", §5.1), so per-op visibility is where latency attribution ends.
:class:`InstrumentedKVStore` wraps any :class:`~repro.kvstore.KVStore`
and, per operation, bumps ``kvstore_ops_total{op=...}``, observes
``kvstore_op_latency_seconds{op=...}``, and — only when the calling thread
already has an active span, so bulk offline work does not flood the
tracer — records a ``kv.<op>`` child span.  That makes the
router→recommender→KV call chain one causally-linked trace.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..kvstore.store import EntrySnapshot, Key, KVStore
from .registry import MetricsRegistry
from .trace import Tracer

__all__ = ["InstrumentedKVStore"]


class InstrumentedKVStore(KVStore):
    """Delegating KV store that reports into a registry and a tracer.

    Purely additive: every call forwards to ``inner`` with identical
    semantics, so it can wrap :class:`~repro.kvstore.InMemoryKVStore`,
    :class:`~repro.kvstore.ShardedKVStore`, or another wrapper (e.g. a
    breaker store) without behavioural change.
    """

    def __init__(
        self,
        inner: KVStore,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.inner = inner
        self._tracer = tracer
        if registry is not None:
            self._ops = registry.counter(
                "kvstore_ops_total",
                "KV operations by op name",
                labelnames=("op",),
            )
            self._latency = registry.histogram(
                "kvstore_op_latency_seconds",
                "KV operation latency by op name",
                labelnames=("op",),
            )
            self._batch_keys = registry.counter(
                "kvstore_batch_keys_total",
                "Keys carried by batch KV operations, by op name",
                labelnames=("op",),
            )
        else:
            self._ops = None
            self._latency = None
            self._batch_keys = None

    def _call(self, op: str, fn: Callable[[], Any]) -> Any:
        if self._ops is not None:
            self._ops.labels(op=op).inc()
        span = None
        if self._tracer is not None and self._tracer.current_span() is not None:
            span = self._tracer.start_span(f"kv.{op}")
        try:
            if self._latency is not None:
                with self._latency.labels(op=op).time():
                    return fn()
            return fn()
        finally:
            if span is not None:
                span.finish()

    # -- KVStore API -------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        return self._call("get", lambda: self.inner.get(key, default))

    def get_strict(self, key: Key) -> Any:
        return self._call("get", lambda: self.inner.get_strict(key))

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        return self._call("put", lambda: self.inner.put(key, value, ttl))

    def delete(self, key: Key) -> bool:
        return self._call("delete", lambda: self.inner.delete(key))

    def update(
        self, key: Key, fn: Callable[[Any], Any], default: Any = None
    ) -> Any:
        return self._call("update", lambda: self.inner.update(key, fn, default))

    def compare_and_set(
        self, key: Key, value: Any, expected_version: int
    ) -> int:
        return self._call(
            "cas", lambda: self.inner.compare_and_set(key, value, expected_version)
        )

    def mget(self, keys, default: Any = None) -> list[Any]:
        """Batch get: one ``mget`` op count/span for the whole batch, plus
        the batch size in ``kvstore_batch_keys_total{op="mget"}``."""
        keys = list(keys)
        if self._batch_keys is not None:
            self._batch_keys.labels(op="mget").inc(len(keys))
        return self._call("mget", lambda: self.inner.mget(keys, default))

    def mput(self, items, ttl: float | None = None) -> list[int]:
        """Batch put: one ``mput`` op count/span for the whole batch."""
        items = list(items)
        if self._batch_keys is not None:
            self._batch_keys.labels(op="mput").inc(len(items))
        return self._call("mput", lambda: self.inner.mput(items, ttl=ttl))

    def version(self, key: Key) -> int:
        return self._call("version", lambda: self.inner.version(key))

    def __contains__(self, key: Key) -> bool:
        return self._call("contains", lambda: key in self.inner)

    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> Iterator[Key]:
        return self.inner.keys()

    def items(self) -> Iterator[tuple[Key, Any]]:
        return self.inner.items()

    # -- checkpoint support (exactness preserved) --------------------------

    def snapshot_entries(self) -> list[EntrySnapshot]:
        return self.inner.snapshot_entries()

    def restore_entries(self, entries: Iterable[EntrySnapshot]) -> int:
        return self.inner.restore_entries(entries)
