"""Request/tuple tracing: causally-linked spans across the topology.

The paper quotes *end-to-end* numbers — an action enters the spout and
milliseconds later the refreshed model serves a request — but per-component
counters cannot attribute that end-to-end time to stages.  A
:class:`Tracer` mints a trace id at the edge of the system (the spout, or a
:class:`~repro.serving.router.RequestRouter` request), propagates it
through tuple metadata across bolts and through router→recommender→KV
calls, and records one :class:`Span` per unit of work, parent-linked so the
whole causal tree can be exported and each stage's share of the latency
read off.

Two propagation styles, both supported:

* **synchronous** (serving path) — spans nest with the call stack.  The
  tracer keeps a per-thread ambient span; :meth:`Tracer.span` parents to
  it automatically, so the router's span encloses the recommender's,
  which encloses each KV op's.
* **deferred** (topology path) — a bolt's output tuples are processed
  later, on other workers/threads.  The emitting span *defers* one child
  slot per downstream delivery (:meth:`Tracer.defer_child`) and stays
  open until every deferred child completes; the receiving executor opens
  the child with :meth:`Tracer.start_deferred`.  A span's ``end``
  therefore covers its whole subtree, which gives the causality
  invariants the test suite pins down: every child starts after its
  parent starts and ends before its parent ends, and a trace's root span
  brackets the entire end-to-end flow.

``work_end`` (when the span's own work finished) is recorded separately
from ``end`` (when its subtree finished), so per-stage *self* latency and
*subtree* latency are both attributable (:meth:`Tracer.stage_latencies`).

Ids are minted from deterministic counters — with a
:class:`~repro.clock.VirtualClock` a traced run is bit-for-bit
reproducible.  ``sample_every=n`` keeps only every n-th trace (the ids
still advance, so sampled runs stay comparable); ``max_spans`` bounds
memory.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..clock import Clock, SystemClock

__all__ = ["Span", "SpanContext", "Tracer", "TRACE_SCHEMA_VERSION"]

#: Version stamped into ``Tracer.to_json()`` documents.
TRACE_SCHEMA_VERSION = 1

#: Sentinel: "parent me to the calling thread's ambient span, else root".
_AMBIENT = object()


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The propagatable identity of a span (carried on stream tuples)."""

    trace_id: str
    span_id: str
    sampled: bool = True


@dataclass(slots=True)
class Span:
    """One unit of traced work.

    ``start`` ≤ ``work_end`` ≤ ``end``; ``end`` extends past ``work_end``
    while deferred children are still running.  Attribute writes go
    through :meth:`set_attribute`; after completion a span is effectively
    frozen (the tracer only hands out completed spans from its export
    APIs).
    """

    name: str
    context: SpanContext
    parent_id: str | None
    start: float
    attributes: dict[str, Any] = field(default_factory=dict)
    work_end: float | None = None
    end: float | None = None
    error: str | None = None
    _pending: int = field(default=0, repr=False)
    _tracer: "Tracer | None" = field(default=None, repr=False)

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Subtree duration (start → last deferred descendant done)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def self_duration(self) -> float:
        """Own-work duration (start → this span's work finished)."""
        return 0.0 if self.work_end is None else self.work_end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish(self, error: str | None = None) -> None:
        """Mark this span's own work done (idempotent).

        The span *completes* — becomes exportable — once every deferred
        child slot has also completed.
        """
        if self._tracer is not None:
            self._tracer._finish(self, error)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(
            error=None if exc is None else f"{exc_type.__name__}: {exc}"
        )


class _NoopSpan(Span):
    """Span of an unsampled trace: carries context, records nothing."""

    def finish(self, error: str | None = None) -> None:  # noqa: D102
        self.end = self.work_end = self.start


class Tracer:
    """Mints, links, and stores spans; see the module docstring."""

    def __init__(
        self,
        clock: Clock | None = None,
        sample_every: int = 1,
        max_spans: int = 100_000,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._clock = clock or SystemClock()
        self.sample_every = sample_every
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._local = threading.local()
        self._trace_seq = 0
        self._span_seq = 0
        self._root_seq = 0
        self._active: dict[str, Span] = {}
        self._finished: list[Span] = []
        self.dropped_spans = 0

    # -- ids ---------------------------------------------------------------

    def _mint_trace_locked(self) -> tuple[str, bool]:
        self._trace_seq += 1
        sampled = (self._root_seq % self.sample_every) == 0
        self._root_seq += 1
        return f"t{self._trace_seq:08d}", sampled

    def _mint_span_locked(self) -> str:
        self._span_seq += 1
        return f"s{self._span_seq:08d}"

    # -- ambient (per-thread) span ----------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        """The calling thread's innermost active span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the calling thread's ambient span."""
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    # -- span lifecycle ----------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = _AMBIENT,  # type: ignore[assignment]
        attributes: Mapping[str, Any] | None = None,
    ) -> Span:
        """Open a span.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext` (e.g.
        read off a stream tuple), ``None`` for an explicit new root, or
        omitted to parent to the calling thread's ambient span (falling
        back to a new root).
        """
        if parent is _AMBIENT:
            parent = self.current_span()
        parent_ctx: SpanContext | None
        if isinstance(parent, Span):
            parent_ctx = parent.context
        else:
            parent_ctx = parent
        with self._lock:
            if parent_ctx is None:
                trace_id, sampled = self._mint_trace_locked()
                parent_id = None
            else:
                trace_id = parent_ctx.trace_id
                sampled = parent_ctx.sampled
                parent_id = parent_ctx.span_id
            span_id = self._mint_span_locked()
            context = SpanContext(trace_id, span_id, sampled)
            now = self._clock.now()
            if not sampled:
                return _NoopSpan(name, context, parent_id, now)
            span = Span(
                name,
                context,
                parent_id,
                now,
                attributes=dict(attributes or {}),
                _tracer=self,
            )
            self._active[span_id] = span
            return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = _AMBIENT,  # type: ignore[assignment]
        attributes: Mapping[str, Any] | None = None,
    ) -> Iterator[Span]:
        """``with tracer.span("stage"):`` — start, activate, auto-finish."""
        opened = self.start_span(name, parent=parent, attributes=attributes)
        error: str | None = None
        with self.activate(opened):
            try:
                yield opened
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
                raise
            finally:
                opened.finish(error=error)

    # -- deferred children (the topology path) ----------------------------

    def defer_child(self, span: Span) -> None:
        """Reserve one deferred-child slot on ``span``.

        Called once per downstream delivery that will carry
        ``span.context``; the span stays open until each slot is consumed
        by a completing :meth:`start_deferred` span (or released by
        :meth:`cancel_deferred`).
        """
        if not span.context.sampled or span._tracer is not self:
            return
        with self._lock:
            span._pending += 1

    def start_deferred(
        self,
        name: str,
        parent: SpanContext,
        attributes: Mapping[str, Any] | None = None,
    ) -> Span:
        """Open the child span for one deferred slot of ``parent``.

        When this span (and its own subtree) completes, the parent's slot
        is released — completion cascades rootward.
        """
        span = self.start_span(name, parent=parent, attributes=attributes)
        if span.context.sampled:
            span.attributes.setdefault("deferred", True)
        return span

    def cancel_deferred(self, parent: SpanContext) -> None:
        """Release one deferred slot without a child span (tuple shed)."""
        if not parent.sampled:
            return
        with self._lock:
            span = self._active.get(parent.span_id)
            if span is not None:
                span._pending -= 1
                self._cascade_locked(span)

    # -- completion --------------------------------------------------------

    def _finish(self, span: Span, error: str | None) -> None:
        with self._lock:
            if span.work_end is not None:  # idempotent
                return
            span.work_end = self._clock.now()
            if error is not None:
                span.error = error
            self._cascade_locked(span)

    def _cascade_locked(self, span: Span) -> None:
        """Complete ``span`` if ready, then walk released parents rootward."""
        current: Span | None = span
        while current is not None:
            if current.work_end is None or current._pending > 0:
                return
            if current.end is None:
                current.end = self._clock.now()
                self._active.pop(current.span_id, None)
                if len(self._finished) >= self.max_spans:
                    self._finished.pop(0)
                    self.dropped_spans += 1
                self._finished.append(current)
            parent = (
                self._active.get(current.parent_id)
                if current.parent_id is not None
                else None
            )
            if parent is not None and current.attributes.get("deferred"):
                parent._pending -= 1
            current = parent

    # -- export ------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def active_span_count(self) -> int:
        with self._lock:
            return len(self._active)

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id, in start order."""
        grouped: dict[str, list[Span]] = {}
        for span in self.finished_spans():
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start, s.span_id))
        return grouped

    def complete_traces(self) -> dict[str, list[Span]]:
        """Only traces whose root span has completed (subtree fully done)."""
        return {
            trace_id: spans
            for trace_id, spans in self.traces().items()
            if any(s.is_root for s in spans)
        }

    def span_tree(self, trace_id: str) -> dict | None:
        """The trace as a nested dict (root at the top), or ``None``."""
        spans = self.traces().get(trace_id)
        if not spans:
            return None
        by_id = {s.span_id: s for s in spans}
        children: dict[str, list[Span]] = {}
        roots: list[Span] = []
        for s in spans:
            if s.parent_id is not None and s.parent_id in by_id:
                children.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)
        if not roots:
            return None

        def render(s: Span) -> dict:
            return {
                "name": s.name,
                "span_id": s.span_id,
                "start": s.start,
                "end": s.end,
                "self_seconds": s.self_duration,
                "subtree_seconds": s.duration,
                "attributes": dict(s.attributes),
                "error": s.error,
                "children": [
                    render(c)
                    for c in sorted(
                        children.get(s.span_id, []),
                        key=lambda c: (c.start, c.span_id),
                    )
                ],
            }

        return render(roots[0])

    def stage_latencies(
        self, trace_id: str | None = None
    ) -> dict[str, dict[str, float]]:
        """Per-stage (span-name) latency attribution.

        Returns ``{name: {count, self_seconds, subtree_seconds}}``, over
        one trace or (``trace_id=None``) over every finished span.
        """
        spans = (
            self.traces().get(trace_id, [])
            if trace_id is not None
            else self.finished_spans()
        )
        out: dict[str, dict[str, float]] = {}
        for s in spans:
            agg = out.setdefault(
                s.name, {"count": 0, "self_seconds": 0.0, "subtree_seconds": 0.0}
            )
            agg["count"] += 1
            agg["self_seconds"] += s.self_duration
            agg["subtree_seconds"] += s.duration
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """Every finished span as a schema-versioned JSON document."""
        document = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "dropped_spans": self.dropped_spans,
            "spans": [
                {
                    "trace_id": s.trace_id,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "name": s.name,
                    "start": s.start,
                    "work_end": s.work_end,
                    "end": s.end,
                    "attributes": {
                        k: v
                        for k, v in s.attributes.items()
                        if isinstance(v, (str, int, float, bool, type(None)))
                    },
                    "error": s.error,
                }
                for s in self.finished_spans()
            ],
        }
        return json.dumps(document, indent=indent, sort_keys=True)
