"""``repro-serve`` — start the HTTP gateway from the shell.

Boots a small synthetic world, trains the paper's CombineModel on its
action stream, and serves it through :class:`~repro.serving.gateway
.ServingGateway` with the full overload chain wired: admission control,
a circuit breaker around the primary, and a hot-videos fallback.  Meant
for demos, smoke tests, and poking the endpoints with curl::

    repro-serve --port 8080 --deadline-ms 50 &
    curl -s localhost:8080/healthz
    curl -s -XPOST localhost:8080/recommend -d '{"user_id": "u0001"}'

With ``--data-dir`` the model plane becomes durable: the KV store is a
:class:`~repro.kvstore.durable.DurableKVStore` under a read-through
cache, every observed action hits a write-ahead log first, and on boot
the process recovers checkpoint + WAL tail instead of retraining — kill
it and restart it and it serves the same recommendations.

Everything is stdlib + numpy; the process serves until interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from ..baselines import HotRecommender
from ..clock import SystemClock
from ..core import RealtimeRecommender
from ..data import SyntheticWorld
from ..data.synthetic import paper_world_config
from ..config import ReproConfig, RetrievalConfig
from ..kvstore import FSYNC_POLICIES, DurableKVStore, ReadThroughCache
from ..obs import Observability
from ..reliability import ActionWAL, CheckpointManager, RecoveryManager
from ..reliability.overload import AdmissionController, CircuitBreaker
from .gateway import GatewayConfig, ServingGateway
from .router import RequestRouter

__all__ = ["build_demo_gateway", "main"]


def build_demo_gateway(
    config: GatewayConfig,
    rate: float | None,
    max_concurrency: int | None,
    n_users: int = 120,
    n_videos: int = 150,
    seed: int = 2016,
    data_dir: str | Path | None = None,
    fsync: str = "interval",
    retrieval: str = "table",
) -> ServingGateway:
    """A fully-wired gateway over a freshly trained synthetic recommender.

    With ``data_dir`` the recommender's store is a durable tier
    (``<data_dir>/kv``), actions are WAL-logged (``<data_dir>/wal``), and
    boot first attempts checkpoint-restore + WAL replay; only a state-less
    data dir triggers the synthetic training pass, which is then sealed
    with an incremental checkpoint.
    """
    world = SyntheticWorld(
        paper_world_config(seed=seed, n_users=n_users, n_videos=n_videos)
    )
    obs = Observability.create()
    store = wal = recovery = None
    if data_dir is not None:
        data_root = Path(data_dir)
        durable = DurableKVStore(
            data_root / "kv", fsync=fsync, registry=obs.registry
        )
        store = ReadThroughCache(durable, capacity=4096)
        wal = ActionWAL(data_root / "wal", fsync=(fsync == "always"))
        recovery = RecoveryManager(
            CheckpointManager(data_root / "ckpt", fsync=(fsync != "never")),
            wal,
        )
    recommender = RealtimeRecommender(
        world.videos,
        users=world.users,
        config=ReproConfig(retrieval=RetrievalConfig(mode=retrieval)),
        clock=SystemClock(),
        obs=obs,
        store=store,
        wal=wal,
    )
    fallback = HotRecommender()
    recovered = False
    if recovery is not None and store is not None:
        report = recovery.recover(
            store,
            lambda action: (
                recommender.observe(action),
                fallback.observe(action),
            ),
        )
        recovered = report.checkpoint is not None or report.replayed > 0
        if report.checkpoint is not None:
            # The checkpoint restored KV-backed state only; demographic hot
            # lists and the hot-videos fallback are in-memory and must be
            # rebuilt from the WAL prefix the checkpoint covers (the replay
            # above already fed them everything after it).
            for seq, action in wal.replay():
                if seq > report.checkpoint.wal_seq:
                    break
                recommender.observe_demographic(action)
                fallback.observe(action)
        if recovered:
            print(
                f"recovered from {data_dir}: checkpoint="
                f"{report.checkpoint.name if report.checkpoint else 'none'} "
                f"replayed={report.replayed} (seq {report.last_seq})",
                flush=True,
            )
    if not recovered:
        actions = world.generate_actions()
        recommender.observe_stream(actions)
        for action in actions:
            fallback.observe(action)
        if recovery is not None and store is not None:
            recovery.checkpoint(store, incremental=True)
    # Seal the boot path for index-backed retrieval: whether the factors
    # came from training or checkpoint+WAL recovery, the ANN index is
    # rebuilt from the arena so it serves the exact same catalog.
    report = recommender.rebuild_index()
    if report is not None:
        print(
            f"ann index built: {report['indexed']} videos, "
            f"{report['tables']}x{report['band_bits']} bits "
            f"in {report['build_seconds'] * 1e3:.0f}ms",
            flush=True,
        )
    admission = (
        AdmissionController(
            rate=rate,
            max_concurrency=max_concurrency,
            registry=obs.registry,
        )
        if rate is not None or max_concurrency is not None
        else None
    )
    breaker = CircuitBreaker(name="primary", registry=obs.registry)
    router = RequestRouter(
        recommender,
        fallback=fallback,
        admission=admission,
        breaker=breaker,
        obs=obs,
    )
    return ServingGateway(
        router,
        config=config,
        observe=recommender.observe,
        obs=obs,
        breaker=breaker,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve real-time recommendations over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=256,
        help="open sockets beyond this are answered 503 and closed",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request latency budget (504 when exceeded)",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="how long the coalescing collector holds a batch open",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=64,
        help="flush a coalesced batch at this size even inside the window",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="admission-control requests/second (excess is shed with 503)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission-control cap on concurrently served requests",
    )
    parser.add_argument(
        "--users", type=int, default=120, help="synthetic world size"
    )
    parser.add_argument(
        "--videos", type=int, default=150, help="synthetic world size"
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--data-dir",
        default=None,
        help="persist model state here (durable KV + WAL + checkpoints); "
        "a restart recovers instead of retraining",
    )
    parser.add_argument(
        "--fsync",
        choices=list(FSYNC_POLICIES),
        default="interval",
        help="durability policy for --data-dir writes",
    )
    parser.add_argument(
        "--retrieval",
        choices=("table", "ann", "hybrid"),
        default="table",
        help="candidate retrieval: similar-video tables (the paper), "
        "LSH ANN shortlist, or the union of both",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        deadline_ms=args.deadline_ms,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
    )
    print(
        f"preparing demo recommender ({args.users} users, "
        f"{args.videos} videos)...",
        flush=True,
    )
    gateway = build_demo_gateway(
        config,
        rate=args.rate,
        max_concurrency=args.max_inflight,
        n_users=args.users,
        n_videos=args.videos,
        seed=args.seed,
        data_dir=args.data_dir,
        fsync=args.fsync,
        retrieval=args.retrieval,
    )

    async def serve() -> None:
        await gateway.start()
        print(
            f"repro-serve listening on http://{config.host}:{gateway.port} "
            f"(batch window {config.batch_window_ms}ms, "
            f"max {config.max_connections} connections)",
            flush=True,
        )
        try:
            await gateway.serve_forever()
        finally:
            await gateway.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
