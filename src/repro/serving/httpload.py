"""Open-loop HTTP load generation against a live gateway.

:meth:`~repro.serving.loadgen.LoadGenerator.run_offered` proved the
open-loop principle in-process on a virtual clock; this module evolves it
onto real sockets.  :class:`HttpLoadGenerator` *offers* a fixed arrival
schedule (request ``i`` departs at ``start + i/qps`` of wall time,
regardless of how the gateway copes) by spawning one asyncio task per
arrival — a slow or saturated server makes requests pile up concurrently
instead of slowing the offered rate down, which is exactly what a
saturation experiment needs and what a closed loop can never produce.

Each request is its own TCP connection by default (the worst case for the
server, and the honest one for measuring connection handling); set
``connections_per_request=False`` to reuse a pool of keep-alive
connections instead.  Responses are bucketed by HTTP status, so the
router's overload contract (200/503/504/500) is measured on the wire, and
latency percentiles are computed over 2xx responses only — shed requests
must not flatter the distribution, the same accounting rule the router's
own stats use.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.percentiles import nearest_rank

__all__ = ["HttpLoadReport", "HttpLoadGenerator", "http_get_json"]


@dataclass(frozen=True, slots=True)
class HttpLoadReport:
    """Outcome of one open-loop run against a gateway.

    ``offered`` counts every scheduled arrival; ``status_counts`` buckets
    the responses actually received by HTTP status; ``connect_errors``
    counts arrivals that never got a response (refused/reset sockets —
    the symptom of the connection cap).  Latency fields describe 2xx
    responses only.
    """

    offered: int
    offered_qps: float
    elapsed_seconds: float
    status_counts: dict[int, int] = field(default_factory=dict)
    connect_errors: int = 0
    latencies_ms: tuple[float, ...] = ()

    @property
    def completed(self) -> int:
        return sum(self.status_counts.values())

    @property
    def ok(self) -> int:
        """2xx responses (includes degraded 200s)."""
        return sum(
            count
            for status, count in self.status_counts.items()
            if 200 <= status < 300
        )

    @property
    def shed(self) -> int:
        return self.status_counts.get(503, 0)

    @property
    def deadline_exceeded(self) -> int:
        return self.status_counts.get(504, 0)

    @property
    def errors(self) -> int:
        return self.status_counts.get(500, 0) + self.connect_errors

    @property
    def achieved_qps(self) -> float:
        if not self.elapsed_seconds:
            return 0.0
        return self.ok / self.elapsed_seconds

    def percentile(self, p: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return nearest_rank(list(self.latencies_ms), p)

    @property
    def p50_ms(self) -> float:
        return self.percentile(50)

    @property
    def p95_ms(self) -> float:
        return self.percentile(95)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99)

    @property
    def mean_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.mean(self.latencies_ms))


async def _read_http_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Parse one HTTP/1.1 response off ``reader``."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _request_bytes(path: str, host: str, doc: dict) -> bytes:
    body = json.dumps(doc).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def http_get_json(
    host: str, port: int, path: str, timeout: float = 10.0
) -> tuple[int, dict[str, str], dict]:
    """One synchronous GET returning ``(status, headers, parsed body)``.

    Convenience for tests and benchmarks that poke ``/metrics``,
    ``/healthz`` or ``/snapshot`` without an event loop of their own.
    """

    async def fetch() -> tuple[int, dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            return await _read_http_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    status, headers, body = asyncio.run(asyncio.wait_for(fetch(), timeout))
    return status, headers, json.loads(body or b"{}")


class HttpLoadGenerator:
    """Offer a fixed request rate to a gateway over real TCP connections."""

    def __init__(
        self,
        host: str,
        port: int,
        user_ids: list[str],
        video_ids: list[str],
        related_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not user_ids or not video_ids:
            raise ValueError("need at least one user and one video")
        if not 0 <= related_fraction <= 1:
            raise ValueError("related_fraction must be in [0, 1]")
        self.host = host
        self.port = port
        self.user_ids = list(user_ids)
        self.video_ids = list(video_ids)
        self.related_fraction = related_fraction
        self.seed = seed

    def _make_doc(
        self,
        rng: np.random.Generator,
        n: int,
        deadline_ms: float | None,
        timestamp: float | None,
    ) -> dict:
        doc: dict = {
            "user_id": self.user_ids[rng.integers(0, len(self.user_ids))],
            "n": n,
        }
        if rng.random() < self.related_fraction:
            doc["current_video"] = self.video_ids[
                rng.integers(0, len(self.video_ids))
            ]
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        if timestamp is not None:
            doc["timestamp"] = timestamp
        return doc

    async def _one_request(
        self,
        doc: dict,
        timeout: float,
        statuses: dict[int, int],
        latencies: list[float],
        errors: list[int],
        lock: threading.Lock,
    ) -> None:
        started = time.perf_counter()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), timeout
            )
            try:
                writer.write(_request_bytes("/recommend", self.host, doc))
                await writer.drain()
                status, _headers, _body = await asyncio.wait_for(
                    _read_http_response(reader), timeout
                )
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        except (ConnectionError, OSError, asyncio.TimeoutError, EOFError):
            with lock:
                errors[0] += 1
            return
        except asyncio.IncompleteReadError:
            with lock:
                errors[0] += 1
            return
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with lock:
            statuses[status] = statuses.get(status, 0) + 1
            if 200 <= status < 300:
                latencies.append(elapsed_ms)

    async def _run(
        self,
        total_requests: int,
        qps: float,
        n: int,
        deadline_ms: float | None,
        timestamp: float | None,
        timeout: float,
    ) -> HttpLoadReport:
        rng = np.random.default_rng(self.seed * 1009)
        statuses: dict[int, int] = {}
        latencies: list[float] = []
        errors = [0]
        lock = threading.Lock()
        interval = 1.0 / qps
        tasks: list[asyncio.Task] = []
        started = time.perf_counter()
        for i in range(total_requests):
            # Absolute schedule: serving time never pushes arrivals back.
            target = started + i * interval
            delay = target - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            doc = self._make_doc(rng, n, deadline_ms, timestamp)
            tasks.append(
                asyncio.ensure_future(
                    self._one_request(
                        doc, timeout, statuses, latencies, errors, lock
                    )
                )
            )
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - started
        return HttpLoadReport(
            offered=total_requests,
            offered_qps=qps,
            elapsed_seconds=elapsed,
            status_counts=dict(statuses),
            connect_errors=errors[0],
            latencies_ms=tuple(latencies),
        )

    def run_offered(
        self,
        total_requests: int,
        qps: float,
        n: int = 10,
        deadline_ms: float | None = None,
        timestamp: float | None = None,
        timeout: float = 30.0,
    ) -> HttpLoadReport:
        """Offer ``total_requests`` at ``qps`` arrivals per second.

        ``timestamp`` (optional) is stamped on every request — recommenders
        trained on a virtual-clock stream need requests dated after their
        training data for recency weighting to behave.  Synchronous
        wrapper: owns its own event loop for the run (the gateway under
        test lives on a different loop/thread), so it can be called from
        pytest or the CLI directly.
        """
        if total_requests < 1:
            raise ValueError("total_requests must be >= 1")
        if qps <= 0:
            raise ValueError(f"qps must be positive, got {qps}")
        return asyncio.run(
            self._run(total_requests, qps, n, deadline_ms, timestamp, timeout)
        )
