"""Load generation — drive the router with realistic concurrent traffic.

The paper's deployment handles "more than 1 billion user requests every
day, with maximum 0.1 million requests in one second" while the model
keeps updating underneath.  :class:`LoadGenerator` reproduces that setting
at laptop scale in two modes:

* **closed-loop** (:meth:`LoadGenerator.run`) — N serving threads fire
  requests back-to-back (each thread waits for its response before the
  next request), optionally while a trainer thread streams new user
  actions into the same recommender — serve-while-train, the system's
  defining property.
* **offered-load** (:meth:`LoadGenerator.run_offered`) — an open-loop
  driver that *offers* a target QPS regardless of how the router copes,
  which is what saturation needs: a closed loop slows down with the
  server and can never push it past capacity.  On a
  :class:`~repro.clock.VirtualClock` shared with the router's admission
  controller, arrivals advance the clock at exactly ``1/qps`` steps, so a
  2× overload experiment is deterministic and instant.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..clock import VirtualClock
from ..data.schema import UserAction
from .arrivals import arrival_times, offer
from .router import RecRequest, RequestRouter


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Outcome of one load run.

    ``requests`` counts everything offered to the router; latency
    percentiles describe only the requests the router actually served
    (sheds and deadline misses are accounted in their own counters).
    """

    requests: int
    errors: int
    elapsed_seconds: float
    mean_latency_ms: float
    p99_latency_ms: float
    trained_actions: int
    shed: int = 0
    deadline_exceeded: int = 0
    p50_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def accepted(self) -> int:
        """Requests that reached a backend (served ok, degraded or error)."""
        return self.requests - self.shed - self.deadline_exceeded


def _report_from_responses(
    responses_latencies_ms: np.ndarray,
    total: int,
    errors: int,
    shed: int,
    deadline_exceeded: int,
    elapsed: float,
    trained: int,
) -> LoadReport:
    lat = responses_latencies_ms
    return LoadReport(
        requests=total,
        errors=errors,
        elapsed_seconds=elapsed,
        mean_latency_ms=float(lat.mean()) if lat.size else 0.0,
        p99_latency_ms=float(np.percentile(lat, 99)) if lat.size else 0.0,
        trained_actions=trained,
        shed=shed,
        deadline_exceeded=deadline_exceeded,
        p50_latency_ms=float(np.percentile(lat, 50)) if lat.size else 0.0,
        p95_latency_ms=float(np.percentile(lat, 95)) if lat.size else 0.0,
    )


class LoadGenerator:
    """Concurrent request driver with an optional live training stream."""

    def __init__(
        self,
        router: RequestRouter,
        user_ids: list[str],
        video_ids: list[str],
        related_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not user_ids or not video_ids:
            raise ValueError("need at least one user and one video")
        if not 0 <= related_fraction <= 1:
            raise ValueError("related_fraction must be in [0, 1]")
        self.router = router
        self.user_ids = list(user_ids)
        self.video_ids = list(video_ids)
        self.related_fraction = related_fraction
        self.seed = seed

    def _make_request(
        self, rng: np.random.Generator, now: float, deadline: float | None
    ) -> RecRequest:
        user = self.user_ids[rng.integers(0, len(self.user_ids))]
        if rng.random() < self.related_fraction:
            video = self.video_ids[rng.integers(0, len(self.video_ids))]
            return RecRequest(
                user,
                current_video=video,
                timestamp=now,
                deadline_seconds=deadline,
            )
        return RecRequest(user, timestamp=now, deadline_seconds=deadline)

    def _requests_for_worker(
        self, worker: int, count: int, now: float
    ) -> list[RecRequest]:
        rng = np.random.default_rng(self.seed * 1009 + worker)
        return [self._make_request(rng, now, None) for _ in range(count)]

    def run(
        self,
        total_requests: int,
        workers: int = 4,
        now: float = 0.0,
        training_stream: list[UserAction] | None = None,
        observe=None,
    ) -> LoadReport:
        """Fire ``total_requests`` across ``workers`` threads (closed loop).

        When ``training_stream`` and ``observe`` are given, a dedicated
        trainer thread feeds the stream through ``observe`` concurrently —
        the serve-while-train scenario.
        """
        if total_requests < 1 or workers < 1:
            raise ValueError("total_requests and workers must be >= 1")
        per_worker = max(1, total_requests // workers)
        latencies: list[float] = []
        counters = {"errors": 0, "shed": 0, "deadline": 0}
        lock = threading.Lock()

        def serve(worker_idx: int) -> None:
            own: list[float] = []
            own_errors = own_shed = own_deadline = 0
            for request in self._requests_for_worker(
                worker_idx, per_worker, now
            ):
                response = self.router.handle(request)
                if response.shed:
                    own_shed += 1
                    continue
                if response.deadline_exceeded:
                    own_deadline += 1
                    continue
                own.append(response.latency_seconds)
                if not response.ok:
                    own_errors += 1
            with lock:
                latencies.extend(own)
                counters["errors"] += own_errors
                counters["shed"] += own_shed
                counters["deadline"] += own_deadline

        trained = [0]
        stop_training = threading.Event()

        def train() -> None:
            assert training_stream is not None and observe is not None
            for action in training_stream:
                if stop_training.is_set():
                    return
                observe(action)
                trained[0] += 1

        threads = [
            threading.Thread(target=serve, args=(w,)) for w in range(workers)
        ]
        trainer = (
            threading.Thread(target=train)
            if training_stream is not None and observe is not None
            else None
        )
        started = time.perf_counter()
        if trainer is not None:
            trainer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop_training.set()
        if trainer is not None:
            trainer.join(timeout=60.0)

        total = (
            len(latencies) + counters["shed"] + counters["deadline"]
        )
        return _report_from_responses(
            np.array(latencies) * 1000.0,
            total=total,
            errors=counters["errors"],
            shed=counters["shed"],
            deadline_exceeded=counters["deadline"],
            elapsed=elapsed,
            trained=trained[0],
        )

    def run_offered(
        self,
        total_requests: int,
        qps: float,
        clock: VirtualClock,
        deadline_seconds: float | None = None,
        process: str = "uniform",
    ) -> LoadReport:
        """Offer ``total_requests`` at a target ``qps`` on a virtual clock.

        Open-loop saturation driver: arrivals follow an absolute schedule
        from :func:`repro.serving.arrivals.arrival_times` on ``clock`` —
        which must be the same :class:`~repro.clock.VirtualClock` the
        router (and its admission controller / simulated backend) runs on
        — so offered load does not slow down when the router saturates,
        and the run is fully deterministic.  ``process`` selects the
        arrival shape (``uniform``/``poisson``/``burst``);
        ``deadline_seconds`` stamps every request with that latency
        budget.
        """
        if total_requests < 1:
            raise ValueError("total_requests must be >= 1")
        if qps <= 0:
            raise ValueError(f"qps must be positive, got {qps}")
        rng = np.random.default_rng(self.seed * 1009)
        latencies: list[float] = []
        errors = shed = deadline_missed = 0
        started = clock.now()
        schedule = arrival_times(
            started,
            total_requests,
            qps,
            process=process,
            rng=np.random.default_rng(self.seed * 1013 + 1),
        )
        for now in offer(clock, schedule):
            request = self._make_request(rng, now, deadline_seconds)
            response = self.router.handle(request)
            if response.shed:
                shed += 1
            elif response.deadline_exceeded:
                deadline_missed += 1
            else:
                latencies.append(response.latency_seconds)
                if not response.ok:
                    errors += 1
        elapsed = clock.now() - started
        return _report_from_responses(
            np.array(latencies) * 1000.0,
            total=total_requests,
            errors=errors,
            shed=shed,
            deadline_exceeded=deadline_missed,
            elapsed=elapsed,
            trained=0,
        )
