"""Load generation — drive the router with realistic concurrent traffic.

The paper's deployment handles "more than 1 billion user requests every
day, with maximum 0.1 million requests in one second" while the model
keeps updating underneath.  :class:`LoadGenerator` reproduces that setting
at laptop scale: N serving threads fire requests at the router (a mix of
both scenarios) while, optionally, a trainer thread streams new user
actions into the same recommender — serve-while-train, the system's
defining property.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..data.schema import UserAction
from .router import RecRequest, RequestRouter


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Outcome of one load run."""

    requests: int
    errors: int
    elapsed_seconds: float
    mean_latency_ms: float
    p99_latency_ms: float
    trained_actions: int

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0


class LoadGenerator:
    """Concurrent request driver with an optional live training stream."""

    def __init__(
        self,
        router: RequestRouter,
        user_ids: list[str],
        video_ids: list[str],
        related_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not user_ids or not video_ids:
            raise ValueError("need at least one user and one video")
        if not 0 <= related_fraction <= 1:
            raise ValueError("related_fraction must be in [0, 1]")
        self.router = router
        self.user_ids = list(user_ids)
        self.video_ids = list(video_ids)
        self.related_fraction = related_fraction
        self.seed = seed

    def _requests_for_worker(
        self, worker: int, count: int, now: float
    ) -> list[RecRequest]:
        rng = np.random.default_rng(self.seed * 1009 + worker)
        requests = []
        for _ in range(count):
            user = self.user_ids[rng.integers(0, len(self.user_ids))]
            if rng.random() < self.related_fraction:
                video = self.video_ids[rng.integers(0, len(self.video_ids))]
                requests.append(
                    RecRequest(user, current_video=video, timestamp=now)
                )
            else:
                requests.append(RecRequest(user, timestamp=now))
        return requests

    def run(
        self,
        total_requests: int,
        workers: int = 4,
        now: float = 0.0,
        training_stream: list[UserAction] | None = None,
        observe=None,
    ) -> LoadReport:
        """Fire ``total_requests`` across ``workers`` threads.

        When ``training_stream`` and ``observe`` are given, a dedicated
        trainer thread feeds the stream through ``observe`` concurrently —
        the serve-while-train scenario.
        """
        if total_requests < 1 or workers < 1:
            raise ValueError("total_requests and workers must be >= 1")
        per_worker = max(1, total_requests // workers)
        latencies: list[float] = []
        errors = [0]
        lock = threading.Lock()

        def serve(worker_idx: int) -> None:
            own: list[float] = []
            own_errors = 0
            for request in self._requests_for_worker(
                worker_idx, per_worker, now
            ):
                response = self.router.handle(request)
                own.append(response.latency_seconds)
                if not response.ok:
                    own_errors += 1
            with lock:
                latencies.extend(own)
                errors[0] += own_errors

        trained = [0]
        stop_training = threading.Event()

        def train() -> None:
            assert training_stream is not None and observe is not None
            for action in training_stream:
                if stop_training.is_set():
                    return
                observe(action)
                trained[0] += 1

        threads = [
            threading.Thread(target=serve, args=(w,)) for w in range(workers)
        ]
        trainer = (
            threading.Thread(target=train)
            if training_stream is not None and observe is not None
            else None
        )
        started = time.perf_counter()
        if trainer is not None:
            trainer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop_training.set()
        if trainer is not None:
            trainer.join(timeout=60.0)

        lat = np.array(latencies) * 1000.0
        return LoadReport(
            requests=len(latencies),
            errors=errors[0],
            elapsed_seconds=elapsed,
            mean_latency_ms=float(lat.mean()) if lat.size else 0.0,
            p99_latency_ms=float(np.percentile(lat, 99)) if lat.size else 0.0,
            trained_actions=trained[0],
        )
