"""Shared open-loop arrival processes on the virtual clock.

Every open-loop driver in the repo — :meth:`LoadGenerator.run_offered`,
the scenario runner's ops loop, the serving benchmarks — needs the same
thing: an *absolute* schedule of arrival times at a target rate, so that
time the backend burns serving one request does not push later arrivals
back.  This module is the one implementation.

``process="uniform"`` reproduces the historical ``run_offered`` spacing
bit for bit (the same float accumulation ``t += 1/qps``), so swapping the
hand-rolled loops for :func:`arrival_times` changes no benchmark numbers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ConfigError

__all__ = ["arrival_times", "ARRIVAL_PROCESSES"]

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("uniform", "poisson", "burst")


def arrival_times(
    start: float,
    count: int,
    qps: float,
    *,
    process: str = "uniform",
    rng: np.random.Generator | int | None = None,
    burst_size: int = 16,
    burst_factor: float = 8.0,
) -> list[float]:
    """Absolute arrival times for ``count`` open-loop requests.

    * ``uniform`` — deterministic spacing of exactly ``1/qps``, accumulated
      with the same float additions as the legacy offered-load loop;
    * ``poisson`` — i.i.d. exponential inter-arrivals with mean ``1/qps``
      (deterministic given ``rng``, which may be a seed);
    * ``burst`` — bursts of ``burst_size`` arrivals spaced at
      ``burst_factor`` times the base rate, separated by idle gaps sized so
      the long-run mean rate is still ``qps`` — the adversarial shape for
      token-bucket admission control.

    All processes honour the open-loop contract: the schedule depends only
    on ``(start, count, qps)`` plus process parameters, never on how long
    the server takes.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if qps <= 0:
        raise ConfigError(f"qps must be positive, got {qps}")
    if process not in ARRIVAL_PROCESSES:
        raise ConfigError(
            f"process must be one of {ARRIVAL_PROCESSES}, got {process!r}"
        )

    if process == "uniform":
        interval = 1.0 / qps
        times = []
        t = start
        for _ in range(count):
            times.append(t)
            t += interval
        return times

    if rng is None or isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(0 if rng is None else int(rng))

    if process == "poisson":
        gaps = rng.exponential(1.0 / qps, size=count)
        # First arrival at ``start`` exactly, like the uniform process —
        # the gap sequence spaces the arrivals *after* it.
        return list(start + np.concatenate([[0.0], np.cumsum(gaps[:-1])]))

    # burst
    if burst_size < 1:
        raise ConfigError(f"burst_size must be >= 1, got {burst_size}")
    if burst_factor <= 1.0:
        raise ConfigError(
            f"burst_factor must exceed 1.0, got {burst_factor}"
        )
    inside = 1.0 / (qps * burst_factor)
    # Each burst owns a period of burst_size/qps; the tail of the period
    # beyond the burst itself is idle, so the mean rate stays qps.
    period = burst_size / qps
    times = []
    t = start
    position = 0
    for _ in range(count):
        times.append(t)
        position += 1
        if position == burst_size:
            t += period - (burst_size - 1) * inside
            position = 0
        else:
            t += inside
    return times


def offer(
    clock,
    times: Iterable[float],
) -> Iterable[float]:
    """Advance ``clock`` to each arrival time in turn, yielding it.

    The canonical consume loop: ``for t in offer(clock, times): ...`` —
    the clock never moves backwards (a slow backend can overrun the
    schedule; the late request then fires immediately, as in any real
    open-loop driver).
    """
    for t in times:
        if clock.now() < t:
            clock.advance(t - clock.now())
        yield clock.now()
