"""Serving layer: request routing, scenario accounting, load generation.

Reproduces the operational envelope the paper quotes for production —
millisecond request latency under concurrent traffic while the model keeps
updating in real time (§4.1, §6).
"""

from .loadgen import LoadGenerator, LoadReport
from .router import (
    Outcome,
    RecRequest,
    RecResponse,
    RequestRouter,
    Scenario,
    ScenarioStats,
)

__all__ = [
    "RecRequest",
    "RecResponse",
    "RequestRouter",
    "Scenario",
    "ScenarioStats",
    "Outcome",
    "LoadGenerator",
    "LoadReport",
]
