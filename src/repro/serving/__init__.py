"""Serving layer: request routing, the HTTP gateway, load generation.

Reproduces the operational envelope the paper quotes for production —
millisecond request latency under concurrent traffic while the model keeps
updating in real time (§4.1, §6).  :class:`ServingGateway` puts the
router behind real sockets with request coalescing;
:class:`HttpLoadGenerator` drives it open-loop for saturation
experiments.
"""

from .arrivals import ARRIVAL_PROCESSES, arrival_times, offer
from .gateway import (
    GatewayConfig,
    GatewayThread,
    RequestCollector,
    ServingGateway,
)
from .httpload import HttpLoadGenerator, HttpLoadReport, http_get_json
from .loadgen import LoadGenerator, LoadReport
from .router import (
    Outcome,
    RecRequest,
    RecResponse,
    RequestRouter,
    Scenario,
    ScenarioStats,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "arrival_times",
    "offer",
    "RecRequest",
    "RecResponse",
    "RequestRouter",
    "Scenario",
    "ScenarioStats",
    "Outcome",
    "LoadGenerator",
    "LoadReport",
    "GatewayConfig",
    "GatewayThread",
    "RequestCollector",
    "ServingGateway",
    "HttpLoadGenerator",
    "HttpLoadReport",
    "http_get_json",
]
