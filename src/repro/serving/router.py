"""Request routing — the serving face of the system (paper §4.1, §6.2).

Production serves two scenarios (Figure 6): *related videos* while the
user watches something, and *guess you like* on the home page.  A
:class:`RequestRouter` wraps any recommender behind a single
``handle(request)`` entry point with per-scenario accounting, error
isolation (a failing request returns an empty response rather than taking
the service down) and latency tracking — the numbers the paper quotes
("handling millions of user requests every day, with latency of
milliseconds").

The router also carries the overload-protection chain (DESIGN.md
"Overload semantics"), applied in a fixed order per request:

1. **admission** — an optional
   :class:`~repro.reliability.overload.AdmissionController` sheds excess
   traffic before any backend work (``RecResponse.shed``);
2. **deadline** — an optional per-request budget
   (``RecRequest.deadline_seconds``), checked between the primary and the
   fallback so a slow primary still leaves the fallback its share;
3. **circuit breaker** — an optional
   :class:`~repro.reliability.overload.CircuitBreaker` around the primary
   recommender: while open, requests skip straight to the fallback
   instead of waiting on a backend that is known-broken;
4. **fallback** — the degraded-serving path inherited from the
   fault-tolerance subsystem.

Sheds and deadline misses are distinct response outcomes — never
exceptions — and are counted per scenario.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..clock import Clock
from ..storm.metrics import LatencyStats

if TYPE_CHECKING:  # avoid serving <-> reliability import at module load
    from ..obs import Observability
    from ..reliability.overload import AdmissionController, CircuitBreaker


class _PerfClock:
    """Monotonic wall-clock for latency/deadline measurement (default)."""

    def now(self) -> float:
        return time.perf_counter()


class Scenario(enum.Enum):
    """The two recommendation surfaces of Figure 6."""

    GUESS_YOU_LIKE = "guess_you_like"
    RELATED_VIDEOS = "related_videos"


class Outcome(enum.Enum):
    """How a request left the router, from best to worst."""

    OK = "ok"
    DEGRADED = "degraded"
    SHED = "shed"
    DEADLINE_EXCEEDED = "deadline_exceeded"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class RecRequest:
    """One recommendation request.

    ``current_video`` set means the related-videos scenario; absent means
    the home-page scenario seeded from the user's history.
    ``deadline_seconds`` is an optional total latency budget measured on
    the router's clock from the moment :meth:`RequestRouter.handle` starts.
    """

    user_id: str
    current_video: str | None = None
    n: int = 10
    timestamp: float | None = None
    deadline_seconds: float | None = None

    @property
    def scenario(self) -> Scenario:
        return (
            Scenario.RELATED_VIDEOS
            if self.current_video is not None
            else Scenario.GUESS_YOU_LIKE
        )


@dataclass(frozen=True, slots=True)
class RecResponse:
    """The served list plus bookkeeping.

    ``degraded=True`` marks a response produced by the fallback
    recommender after the primary failed (or its breaker was open) —
    still a success (``ok``), but observable in per-scenario metrics.
    ``shed=True`` means admission control rejected the request before any
    backend work; ``deadline_exceeded=True`` means the budget ran out
    before a fallback could be tried.  Both are distinct outcomes, not
    errors.
    """

    request: RecRequest
    video_ids: tuple[str, ...]
    latency_seconds: float
    error: str | None = None
    degraded: bool = False
    shed: bool = False
    shed_reason: str | None = None
    deadline_exceeded: bool = False

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and not self.shed
            and not self.deadline_exceeded
        )

    @property
    def empty(self) -> bool:
        return not self.video_ids

    @property
    def outcome(self) -> Outcome:
        if self.shed:
            return Outcome.SHED
        if self.deadline_exceeded:
            return Outcome.DEADLINE_EXCEEDED
        if self.error is not None:
            return Outcome.ERROR
        if self.degraded:
            return Outcome.DEGRADED
        return Outcome.OK


@dataclass
class ScenarioStats:
    """Per-scenario serving counters.

    ``latency`` tracks *served* requests only (ok/degraded/error); shed
    and deadline-exceeded requests are counted separately so admission
    control cannot flatter the latency distribution with near-zero
    rejections.
    """

    requests: int = 0
    errors: int = 0
    empty: int = 0
    fallbacks: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    breaker_fast_fails: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)


class RequestRouter:
    """Thread-safe serving front for any recommender.

    The backing recommender only needs ``recommend_ids``; the router adds
    scenario dispatch, latency measurement, per-scenario stats, error
    isolation and the admission → deadline → breaker → fallback overload
    chain.  Multiple threads may call :meth:`handle` concurrently — the
    per-scenario counters are lock-protected, and the state the
    recommender reads lives in the (locked) KV store.

    ``fallback`` (any object with the same ``recommend_ids`` signature,
    e.g. :class:`~repro.baselines.HotRecommender`) enables graceful
    degradation: when the primary recommender raises — say the model store
    is erroring — the request is re-served from the fallback and counted
    in the scenario's ``fallbacks`` metric, instead of returning an empty
    error response.  Only when the fallback also fails (or none is
    configured) does the response carry an error.

    ``admission`` sheds excess traffic before any backend call;
    ``breaker`` wraps only the *primary* recommender (the fallback is the
    escape hatch and must stay reachable); ``clock`` drives latency and
    deadline measurement — inject a
    :class:`~repro.clock.VirtualClock` for deterministic overload tests.
    """

    def __init__(
        self,
        recommender,
        fallback=None,
        admission: "AdmissionController | None" = None,
        breaker: "CircuitBreaker | None" = None,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.recommender = recommender
        self.fallback = fallback
        self.admission = admission
        self.breaker = breaker
        if clock is None:
            clock = obs.perf_clock if obs is not None else _PerfClock()
        self._clock = clock
        self._stats = {scenario: ScenarioStats() for scenario in Scenario}
        self._lock = threading.Lock()
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            self._requests_counter = obs.registry.counter(
                "serving_requests_total",
                "Requests handled by the router, by scenario and outcome",
                labelnames=("scenario", "outcome"),
            )
            self._latency_hist = obs.registry.histogram(
                "serving_request_latency_seconds",
                "End-to-end router latency for served requests",
                labelnames=("scenario",),
            )
        else:
            self._requests_counter = None
            self._latency_hist = None

    def _observe_response(self, response: RecResponse) -> None:
        """Mirror one response into the registry instruments."""
        if self._requests_counter is None:
            return
        scenario = response.request.scenario.value
        self._requests_counter.labels(
            scenario=scenario, outcome=response.outcome.value
        ).inc()
        # Match ScenarioStats: only *served* requests contribute latency,
        # so sheds/deadline misses cannot flatter the distribution.
        if not response.shed and not response.deadline_exceeded:
            self._latency_hist.labels(scenario=scenario).observe(
                response.latency_seconds
            )

    def _serve(self, backend, request: RecRequest) -> tuple[str, ...]:
        return tuple(
            backend.recommend_ids(
                request.user_id,
                current_video=request.current_video,
                n=request.n,
                now=request.timestamp,
            )
        )

    def _shed_response(
        self, request: RecRequest, started: float, reason: str | None
    ) -> RecResponse:
        stats = self._stats[request.scenario]
        with self._lock:
            stats.requests += 1
            stats.shed += 1
        return RecResponse(
            request=request,
            video_ids=(),
            latency_seconds=self._clock.now() - started,
            shed=True,
            shed_reason=reason,
        )

    def _remaining(self, request: RecRequest, started: float) -> float | None:
        if request.deadline_seconds is None:
            return None
        return request.deadline_seconds - (self._clock.now() - started)

    def handle(self, request: RecRequest) -> RecResponse:
        """Serve one request; never raises."""
        if self._tracer is None:
            response = self._handle(request)
        else:
            # Each request roots its own trace; the recommender and KV
            # spans underneath parent to it via the ambient span stack.
            with self._tracer.span("router.handle", parent=None) as span:
                span.set_attribute("scenario", request.scenario.value)
                response = self._handle(request)
                span.set_attribute("outcome", response.outcome.value)
        self._observe_response(response)
        return response

    def _handle(self, request: RecRequest) -> RecResponse:
        started = self._clock.now()
        if self.admission is not None:
            decision = self.admission.try_admit()
            if not decision.admitted:
                return self._shed_response(request, started, decision.reason)
            try:
                return self._handle_admitted(request, started)
            finally:
                self.admission.release()
        return self._handle_admitted(request, started)

    def _handle_admitted(
        self, request: RecRequest, started: float
    ) -> RecResponse:
        error: str | None = None
        degraded = False
        deadline_exceeded = False
        breaker_fast_fail = False
        videos: tuple[str, ...] = ()

        primary_allowed = self.breaker is None or self.breaker.allow()
        primary_failed = True
        if primary_allowed:
            try:
                videos = self._serve(self.recommender, request)
                primary_failed = False
                if self.breaker is not None:
                    self.breaker.record_success()
            except Exception as exc:  # noqa: BLE001 - service isolation boundary
                error = f"{type(exc).__name__}: {exc}"
                if self.breaker is not None:
                    self.breaker.record_failure()
        else:
            breaker_fast_fail = True
            error = "CircuitOpenError: primary recommender breaker is open"

        if primary_failed:
            # The deadline checkpoint: only try the fallback if the budget
            # (when set) still has time left.
            remaining = self._remaining(request, started)
            if remaining is not None and remaining <= 0:
                deadline_exceeded = True
                error = None
            elif self.fallback is not None:
                try:
                    videos = self._serve(self.fallback, request)
                    error = None
                    degraded = True
                except Exception as fb_exc:  # noqa: BLE001 - same boundary
                    error = (
                        f"{error}; fallback failed: "
                        f"{type(fb_exc).__name__}: {fb_exc}"
                    )

        elapsed = self._clock.now() - started
        stats = self._stats[request.scenario]
        with self._lock:
            stats.requests += 1
            if breaker_fast_fail:
                stats.breaker_fast_fails += 1
            if deadline_exceeded:
                stats.deadline_exceeded += 1
            else:
                stats.latency.record(elapsed)
                if error is not None:
                    stats.errors += 1
                else:
                    if degraded:
                        stats.fallbacks += 1
                    if not videos:
                        stats.empty += 1
        return RecResponse(
            request=request,
            video_ids=videos,
            latency_seconds=elapsed,
            error=error,
            degraded=degraded,
            deadline_exceeded=deadline_exceeded,
        )

    def handle_many(self, requests: list[RecRequest]) -> list[RecResponse]:
        """Serve a batch of requests; never raises.

        Each request runs through the full admission → breaker → deadline
        → fallback chain independently (one user's failure or shed never
        poisons a neighbour's response), in input order — the shape a
        batched serving endpoint hands the router.  Responses come back in
        the same order as the requests.

        An empty batch is an explicit no-op: no counters move, no latency
        sample is recorded.  The gateway's coalescing collector may race a
        timer flush against a size flush — the loser finds an empty buffer
        and must leave the stats untouched.
        """
        if not requests:
            return []
        return [self.handle(request) for request in requests]

    def stats(self, scenario: Scenario) -> ScenarioStats:
        return self._stats[scenario]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict summary of both scenarios (for dashboards/tests)."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            for scenario, stats in self._stats.items():
                out[scenario.value] = {
                    "requests": stats.requests,
                    "errors": stats.errors,
                    "empty": stats.empty,
                    "fallbacks": stats.fallbacks,
                    "shed": stats.shed,
                    "deadline_exceeded": stats.deadline_exceeded,
                    "breaker_fast_fails": stats.breaker_fast_fails,
                    "mean_latency_ms": stats.latency.mean * 1000.0,
                    "max_latency_ms": stats.latency.max * 1000.0,
                    "p50_latency_ms": stats.latency.p50 * 1000.0,
                    "p95_latency_ms": stats.latency.p95 * 1000.0,
                    "p99_latency_ms": stats.latency.p99 * 1000.0,
                }
        return out

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(s.requests for s in self._stats.values())

    @property
    def total_shed(self) -> int:
        with self._lock:
            return sum(s.shed for s in self._stats.values())

    @property
    def breaker_trips(self) -> int:
        """Times the primary's circuit breaker has opened (0 if none)."""
        return self.breaker.opened_count if self.breaker is not None else 0

    def reset_stats(self) -> None:
        """Zero the per-scenario counters (keep backends and breakers).

        Scenario runs measure shed rate window by window on one router;
        resetting between measurement phases beats re-wiring the chain.
        """
        with self._lock:
            self._stats = {scenario: ScenarioStats() for scenario in Scenario}
