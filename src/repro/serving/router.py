"""Request routing — the serving face of the system (paper §4.1, §6.2).

Production serves two scenarios (Figure 6): *related videos* while the
user watches something, and *guess you like* on the home page.  A
:class:`RequestRouter` wraps any recommender behind a single
``handle(request)`` entry point with per-scenario accounting, error
isolation (a failing request returns an empty response rather than taking
the service down) and latency tracking — the numbers the paper quotes
("handling millions of user requests every day, with latency of
milliseconds").
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field

from ..storm.metrics import LatencyStats


class Scenario(enum.Enum):
    """The two recommendation surfaces of Figure 6."""

    GUESS_YOU_LIKE = "guess_you_like"
    RELATED_VIDEOS = "related_videos"


@dataclass(frozen=True, slots=True)
class RecRequest:
    """One recommendation request.

    ``current_video`` set means the related-videos scenario; absent means
    the home-page scenario seeded from the user's history.
    """

    user_id: str
    current_video: str | None = None
    n: int = 10
    timestamp: float | None = None

    @property
    def scenario(self) -> Scenario:
        return (
            Scenario.RELATED_VIDEOS
            if self.current_video is not None
            else Scenario.GUESS_YOU_LIKE
        )


@dataclass(frozen=True, slots=True)
class RecResponse:
    """The served list plus bookkeeping.

    ``degraded=True`` marks a response produced by the fallback
    recommender after the primary failed — still a success (``ok``), but
    observable in per-scenario metrics.
    """

    request: RecRequest
    video_ids: tuple[str, ...]
    latency_seconds: float
    error: str | None = None
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def empty(self) -> bool:
        return not self.video_ids


@dataclass
class ScenarioStats:
    """Per-scenario serving counters."""

    requests: int = 0
    errors: int = 0
    empty: int = 0
    fallbacks: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)


class RequestRouter:
    """Thread-safe serving front for any recommender.

    The backing recommender only needs ``recommend_ids``; the router adds
    scenario dispatch, latency measurement, per-scenario stats and error
    isolation.  Multiple threads may call :meth:`handle` concurrently —
    the per-scenario counters are lock-protected, and the state the
    recommender reads lives in the (locked) KV store.

    ``fallback`` (any object with the same ``recommend_ids`` signature,
    e.g. :class:`~repro.baselines.HotRecommender`) enables graceful
    degradation: when the primary recommender raises — say the model store
    is erroring — the request is re-served from the fallback and counted
    in the scenario's ``fallbacks`` metric, instead of returning an empty
    error response.  Only when the fallback also fails (or none is
    configured) does the response carry an error.
    """

    def __init__(self, recommender, fallback=None) -> None:
        self.recommender = recommender
        self.fallback = fallback
        self._stats = {scenario: ScenarioStats() for scenario in Scenario}
        self._lock = threading.Lock()

    def _serve(self, backend, request: RecRequest) -> tuple[str, ...]:
        return tuple(
            backend.recommend_ids(
                request.user_id,
                current_video=request.current_video,
                n=request.n,
                now=request.timestamp,
            )
        )

    def handle(self, request: RecRequest) -> RecResponse:
        """Serve one request; never raises."""
        started = time.perf_counter()
        error: str | None = None
        degraded = False
        videos: tuple[str, ...] = ()
        try:
            videos = self._serve(self.recommender, request)
        except Exception as exc:  # noqa: BLE001 - service isolation boundary
            error = f"{type(exc).__name__}: {exc}"
            if self.fallback is not None:
                try:
                    videos = self._serve(self.fallback, request)
                    error = None
                    degraded = True
                except Exception as fb_exc:  # noqa: BLE001 - same boundary
                    error = (
                        f"{error}; fallback failed: "
                        f"{type(fb_exc).__name__}: {fb_exc}"
                    )
        elapsed = time.perf_counter() - started

        stats = self._stats[request.scenario]
        with self._lock:
            stats.requests += 1
            stats.latency.record(elapsed)
            if error is not None:
                stats.errors += 1
            else:
                if degraded:
                    stats.fallbacks += 1
                if not videos:
                    stats.empty += 1
        return RecResponse(
            request=request,
            video_ids=videos,
            latency_seconds=elapsed,
            error=error,
            degraded=degraded,
        )

    def stats(self, scenario: Scenario) -> ScenarioStats:
        return self._stats[scenario]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict summary of both scenarios (for dashboards/tests)."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            for scenario, stats in self._stats.items():
                out[scenario.value] = {
                    "requests": stats.requests,
                    "errors": stats.errors,
                    "empty": stats.empty,
                    "fallbacks": stats.fallbacks,
                    "mean_latency_ms": stats.latency.mean * 1000.0,
                    "max_latency_ms": stats.latency.max * 1000.0,
                }
        return out

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(s.requests for s in self._stats.values())
