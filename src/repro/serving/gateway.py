"""Async HTTP serving gateway — the system's network face (§4.1, §6.2).

Every layer built so far — router, admission control, breakers,
micro-batched scoring — is reached by in-process function calls.  The
paper's deployment is a *service*: "handling millions of user requests
every day, with latency of milliseconds" arrives over sockets.
:class:`ServingGateway` is that boundary, a dependency-light asyncio
HTTP/1.1 front-end over :class:`~repro.serving.router.RequestRouter`:

* ``POST /recommend`` — serve one recommendation request;
* ``POST /ingest``   — feed one user action into the live trainer;
* ``GET  /metrics``  — the schema-versioned
  :meth:`~repro.obs.MetricsRegistry.to_json` document;
* ``GET  /healthz``  — liveness + breaker/supervisor state;
* ``GET  /snapshot`` — the router's per-scenario counters plus the
  gateway's own connection/coalescing statistics.

**Request coalescing.** Concurrent in-flight ``/recommend`` requests are
not dispatched one by one: a :class:`RequestCollector` buffers them for up
to ``batch_window_ms`` (or until ``batch_max`` accumulate, mirroring
:class:`~repro.topology.BatchingConfig`'s flush-on-full semantics) and
hands the whole batch to one :meth:`RequestRouter.handle_many` call on a
worker thread.  That realises the vectorized model plane's batched-scoring
win *across connections* — the batch a single caller used to have to
assemble now assembles itself from independent sockets.

**Overload semantics on the wire.**  The router's outcome enum maps onto
HTTP statuses faithfully (DESIGN.md "Serving over HTTP"):

=====================  ======================================
router outcome         HTTP response
=====================  ======================================
``OK``                 ``200`` + recommendations
``DEGRADED``           ``200`` + ``X-Repro-Degraded: 1``
``SHED``               ``503`` + ``Retry-After``
``DEADLINE_EXCEEDED``  ``504``
``ERROR``              ``500``
=====================  ======================================

Connections beyond ``max_connections`` are answered ``503`` and closed
before any routing work, the socket-level analogue of admission shedding.

Everything here is standard-library asyncio: no aiohttp/FastAPI import,
so the gateway runs wherever the rest of the repo does.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Awaitable, Callable

from ..data.schema import ActionType, UserAction
from ..errors import DataError
from .router import Outcome, RecRequest, RecResponse, RequestRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..reliability.overload import CircuitBreaker
    from ..reliability.supervisor import Supervisor

__all__ = [
    "GatewayConfig",
    "RequestCollector",
    "ServingGateway",
    "GatewayThread",
]

#: Canonical reason phrases for the statuses the gateway emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on one request's header block, defensive.
_MAX_HEADER_BYTES = 16 * 1024


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Tunables of one :class:`ServingGateway`.

    ``batch_window_ms``/``batch_max`` bound the request-coalescing
    collector exactly like :class:`~repro.topology.BatchingConfig` bounds
    the trainer bolts: a batch flushes when it is full *or* when the
    oldest request has waited the whole window.  ``batch_window_ms=0``
    still coalesces whatever arrived while the previous batch was being
    served (greedy drain), so a loaded gateway batches even with no timer.

    ``deadline_ms`` is the default per-request latency budget stamped on
    requests that do not carry their own ``deadline_ms`` field;
    ``None`` disables the default.  ``max_connections`` bounds
    concurrently open sockets; excess connections get an immediate
    ``503`` + ``Retry-After`` and are closed.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port off the gateway
    max_connections: int = 256
    deadline_ms: float | None = None
    batch_window_ms: float = 2.0
    batch_max: int = 64
    max_body_bytes: int = 64 * 1024
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}"
            )
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")


@dataclass(slots=True)
class _HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"


class _HttpError(Exception):
    """Abort the current request with a specific status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class RequestCollector:
    """Coalesce concurrent recommendation requests into ``handle_many``.

    Requests :meth:`submit`-ted while a batch is open join it; the batch
    flushes when ``batch_max`` requests accumulate or ``window_seconds``
    after its first request, whichever comes first.  The flush runs
    :meth:`RequestRouter.handle_many` on the event loop's default thread
    pool, so the loop keeps accepting (and coalescing) new requests while
    a batch is being served — that concurrency is exactly what makes
    batches form under load.

    Per-batch sizes are recorded in a bounded histogram
    (:meth:`coalesce_snapshot`) and, when a registry is attached, the
    ``gateway_coalesced_batch_size`` histogram.
    """

    def __init__(
        self,
        router: RequestRouter,
        batch_max: int = 64,
        window_seconds: float = 0.002,
        obs: "Observability | None" = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        self.router = router
        self.batch_max = batch_max
        self.window_seconds = window_seconds
        self._pending: list[tuple[RecRequest, asyncio.Future]] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._batch_sizes: dict[int, int] = {}
        self._batches = 0
        self._coalesced_requests = 0
        self._stats_lock = threading.Lock()
        self._size_hist = (
            obs.registry.histogram(
                "gateway_coalesced_batch_size",
                "Requests coalesced into one handle_many call",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            )
            if obs is not None
            else None
        )

    async def submit(self, request: RecRequest) -> RecResponse:
        """Enqueue one request and await its (batched) response."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if len(self._pending) >= self.batch_max:
            self._flush(loop)
        elif self._flush_handle is None:
            # First request of a new batch arms the window timer.  A zero
            # window flushes on the next loop tick — requests that arrived
            # in the same tick (or while a previous batch was serving)
            # still coalesce.
            self._flush_handle = loop.call_later(
                self.window_seconds, self._flush, loop
            )
        return await future

    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self._record_batch(len(batch))
        requests = [request for request, _ in batch]
        futures = [future for _, future in batch]
        task = loop.run_in_executor(None, self.router.handle_many, requests)
        task.add_done_callback(
            lambda done: self._resolve(futures, done)
        )

    @staticmethod
    def _resolve(futures: list[asyncio.Future], done: asyncio.Future) -> None:
        exc = done.exception()
        for i, future in enumerate(futures):
            if future.cancelled():
                continue
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(done.result()[i])

    def _record_batch(self, size: int) -> None:
        with self._stats_lock:
            self._batches += 1
            self._coalesced_requests += size
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        if self._size_hist is not None:
            self._size_hist.observe(size)

    def coalesce_snapshot(self) -> dict:
        """Plain-dict coalescing statistics (for ``/snapshot`` and benches)."""
        with self._stats_lock:
            sizes = dict(sorted(self._batch_sizes.items()))
            batches = self._batches
            total = self._coalesced_requests
        return {
            "batches": batches,
            "requests": total,
            "mean_batch_size": (total / batches) if batches else 0.0,
            "max_batch_size": max(sizes) if sizes else 0,
            "batch_size_counts": {str(k): v for k, v in sizes.items()},
        }


async def _read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> _HttpRequest | None:
    """Parse one HTTP/1.1 request; ``None`` on clean EOF before a request."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests — normal
        raise _HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise _HttpError(413, "request head too large") from exc
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise _HttpError(400, f"bad Content-Length: {raw_length!r}") from exc
    if length < 0:
        raise _HttpError(400, f"bad Content-Length: {raw_length!r}")
    if length > max_body_bytes:
        raise _HttpError(413, f"body of {length} bytes exceeds limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise _HttpError(400, "truncated request body") from exc
    # Strip any query string — endpoints here take parameters in the body.
    path = target.split("?", 1)[0]
    return _HttpRequest(method=method, path=path, headers=headers, body=body)


def _response_bytes(
    status: int,
    payload: dict,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body


def _parse_action(doc: dict) -> UserAction:
    """Build a :class:`UserAction` from an ``/ingest`` JSON document."""
    try:
        action_type = ActionType.parse(str(doc["action"]))
        return UserAction(
            timestamp=float(doc["timestamp"]),
            user_id=str(doc["user_id"]),
            video_id=str(doc["video_id"]),
            action=action_type,
            view_time=float(doc.get("view_time", 0.0)),
        )
    except (KeyError, TypeError, ValueError, DataError) as exc:
        raise _HttpError(400, f"bad action: {exc}") from exc


class ServingGateway:
    """Asyncio HTTP server over a :class:`RequestRouter`.

    ``observe`` is the live-training sink ``POST /ingest`` feeds (e.g.
    ``RealtimeRecommender.observe``); omit it and ``/ingest`` answers
    ``503``.  ``obs`` wires gateway metrics
    (``gateway_http_requests_total``, ``gateway_open_connections``,
    ``gateway_coalesced_batch_size``, ``gateway_connections_rejected_total``)
    into the same registry ``/metrics`` serves.  ``breaker`` and
    ``supervisor`` default to the router's own breaker and feed
    ``/healthz``.

    Lifecycle: ``await start()`` binds the socket (``port`` then reports
    the real port when the config asked for 0), ``await stop()`` closes
    it.  Synchronous callers — tests, benchmarks, the CLI — use
    :class:`GatewayThread` instead.
    """

    def __init__(
        self,
        router: RequestRouter,
        config: GatewayConfig | None = None,
        observe: Callable[[UserAction], None] | None = None,
        obs: "Observability | None" = None,
        supervisor: "Supervisor | None" = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> None:
        self.router = router
        self.config = config or GatewayConfig()
        self.observe = observe
        self.obs = obs
        self.supervisor = supervisor
        self.breaker = breaker if breaker is not None else router.breaker
        self.collector = RequestCollector(
            router,
            batch_max=self.config.batch_max,
            window_seconds=self.config.batch_window_ms / 1000.0,
            obs=obs,
        )
        self._server: asyncio.AbstractServer | None = None
        self._open_connections = 0
        self._rejected_connections = 0
        self._ingested = 0
        self._conn_lock = threading.Lock()
        if obs is not None:
            self._http_counter = obs.registry.counter(
                "gateway_http_requests_total",
                "HTTP requests served by the gateway, by path and status",
                labelnames=("path", "status"),
            )
            self._conn_gauge = obs.registry.gauge(
                "gateway_open_connections",
                "Currently open gateway connections",
            )
            self._rejected_counter = obs.registry.counter(
                "gateway_connections_rejected_total",
                "Connections refused because max_connections was reached",
            )
        else:
            self._http_counter = None
            self._conn_gauge = None
            self._rejected_counter = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=max(self.config.max_body_bytes, _MAX_HEADER_BYTES) + 1024,
        )

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def port(self) -> int:
        """The actually-bound port (resolves an ephemeral ``port=0``)."""
        if self._server is None:
            raise RuntimeError("gateway not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _track_connection(self, delta: int) -> int:
        with self._conn_lock:
            self._open_connections += delta
            count = self._open_connections
        if self._conn_gauge is not None:
            self._conn_gauge.set(count)
        return count

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._track_connection(+1) > self.config.max_connections:
            # Socket-level shedding: answer and close before any routing.
            with self._conn_lock:
                self._rejected_connections += 1
            if self._rejected_counter is not None:
                self._rejected_counter.inc()
            await self._finish(
                writer,
                _response_bytes(
                    503,
                    {"error": "too many connections"},
                    extra_headers={
                        "Retry-After": _retry_after(
                            self.config.retry_after_seconds
                        )
                    },
                    keep_alive=False,
                ),
            )
            self._track_connection(-1)
            return
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._track_connection(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # client went away mid-close
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await _read_request(
                    reader, self.config.max_body_bytes
                )
            except _HttpError as exc:
                await self._finish(
                    writer,
                    _response_bytes(
                        exc.status, {"error": exc.message}, keep_alive=False
                    ),
                )
                return
            except (ConnectionError, OSError):
                return
            if request is None:
                return
            status, payload, extra = await self._dispatch(request)
            if self._http_counter is not None:
                self._http_counter.labels(
                    path=request.path, status=str(status)
                ).inc()
            try:
                await self._finish(
                    writer,
                    _response_bytes(
                        status,
                        payload,
                        extra_headers=extra,
                        keep_alive=request.keep_alive,
                    ),
                )
            except (ConnectionError, OSError):
                return
            if not request.keep_alive:
                return

    @staticmethod
    async def _finish(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Endpoint dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest
    ) -> tuple[int, dict, dict[str, str] | None]:
        routes: dict[
            tuple[str, str],
            Callable[[_HttpRequest], Awaitable[tuple[int, dict, dict | None]]],
        ] = {
            ("POST", "/recommend"): self._recommend,
            ("POST", "/ingest"): self._ingest,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/healthz"): self._healthz,
            ("GET", "/snapshot"): self._snapshot,
        }
        known_paths = {path for _, path in routes}
        handler = routes.get((request.method, request.path))
        if handler is None:
            if request.path in known_paths:
                return 405, {"error": f"method {request.method} not allowed"}, None
            return 404, {"error": f"no such endpoint: {request.path}"}, None
        try:
            return await handler(request)
        except _HttpError as exc:
            return exc.status, {"error": exc.message}, None
        except Exception as exc:  # noqa: BLE001 - service isolation boundary
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None

    def _json_body(self, request: _HttpRequest) -> dict:
        try:
            doc = json.loads(request.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise _HttpError(400, "JSON body must be an object")
        return doc

    async def _recommend(
        self, request: _HttpRequest
    ) -> tuple[int, dict, dict[str, str] | None]:
        doc = self._json_body(request)
        if "user_id" not in doc:
            raise _HttpError(400, "missing required field: user_id")
        deadline_ms = doc.get("deadline_ms", self.config.deadline_ms)
        try:
            rec_request = RecRequest(
                user_id=str(doc["user_id"]),
                current_video=(
                    str(doc["current_video"])
                    if doc.get("current_video") is not None
                    else None
                ),
                n=int(doc.get("n", 10)),
                timestamp=(
                    float(doc["timestamp"])
                    if doc.get("timestamp") is not None
                    else None
                ),
                deadline_seconds=(
                    float(deadline_ms) / 1000.0
                    if deadline_ms is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad request field: {exc}") from exc
        response = await self.collector.submit(rec_request)
        return self._map_outcome(response)

    def _map_outcome(
        self, response: RecResponse
    ) -> tuple[int, dict, dict[str, str] | None]:
        """The router-outcome → HTTP-status contract (one place, tested)."""
        base = {
            "user_id": response.request.user_id,
            "scenario": response.request.scenario.value,
            "latency_ms": response.latency_seconds * 1000.0,
        }
        outcome = response.outcome
        if outcome is Outcome.SHED:
            base["error"] = "shed"
            if response.shed_reason is not None:
                base["reason"] = response.shed_reason
            retry = {"Retry-After": _retry_after(self.config.retry_after_seconds)}
            return 503, base, retry
        if outcome is Outcome.DEADLINE_EXCEEDED:
            base["error"] = "deadline exceeded"
            return 504, base, None
        if outcome is Outcome.ERROR:
            base["error"] = response.error or "internal error"
            return 500, base, None
        base["video_ids"] = list(response.video_ids)
        if outcome is Outcome.DEGRADED:
            return 200, base, {"X-Repro-Degraded": "1"}
        return 200, base, None

    async def _ingest(
        self, request: _HttpRequest
    ) -> tuple[int, dict, dict[str, str] | None]:
        if self.observe is None:
            return 503, {"error": "ingest is not wired on this gateway"}, None
        action = _parse_action(self._json_body(request))
        loop = asyncio.get_running_loop()
        # The trainer touches the (locked) KV store — keep it off the loop.
        await loop.run_in_executor(None, self.observe, action)
        with self._conn_lock:
            self._ingested += 1
            total = self._ingested
        return 202, {"ingested": total}, None

    async def _metrics(
        self, request: _HttpRequest
    ) -> tuple[int, dict, dict[str, str] | None]:
        if self.obs is None:
            return 200, {"metrics": None, "detail": "no registry attached"}, None
        return 200, json.loads(self.obs.registry.to_json()), None

    async def _healthz(
        self, request: _HttpRequest
    ) -> tuple[int, dict, dict[str, str] | None]:
        breaker_state = (
            self.breaker.state.value if self.breaker is not None else None
        )
        supervisor_given_up = (
            self.supervisor.gave_up() if self.supervisor is not None else 0
        )
        healthy = breaker_state != "open" and supervisor_given_up == 0
        payload = {
            "status": "ok" if healthy else "degraded",
            "breaker": breaker_state,
            "supervisor_gave_up": supervisor_given_up,
            "open_connections": self._open_connections,
        }
        return (200 if healthy else 503), payload, None

    async def _snapshot(
        self, request: _HttpRequest
    ) -> tuple[int, dict, dict[str, str] | None]:
        with self._conn_lock:
            gateway = {
                "open_connections": self._open_connections,
                "rejected_connections": self._rejected_connections,
                "ingested": self._ingested,
            }
        payload = {
            "router": self.router.snapshot(),
            "coalescing": self.collector.coalesce_snapshot(),
            "gateway": gateway,
        }
        return 200, payload, None


def _retry_after(seconds: float) -> str:
    """Retry-After wants integral seconds; round up so 0.5 isn't 'now'."""
    return str(max(1, int(seconds + 0.999)))


class GatewayThread:
    """Run a :class:`ServingGateway` on a background event loop.

    The rest of the repo (tests, benchmarks, the CLI's load path) is
    synchronous; this context manager owns a daemon thread with its own
    asyncio loop, starts the gateway, exposes the bound ``port``, and
    tears everything down on exit::

        with GatewayThread(gateway) as running:
            resp = http.client.HTTPConnection("127.0.0.1", running.port)
    """

    def __init__(self, gateway: ServingGateway, startup_timeout: float = 10.0):
        self.gateway = gateway
        self.startup_timeout = startup_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def host(self) -> str:
        return self.gateway.config.host

    def __enter__(self) -> "GatewayThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self.startup_timeout):
            raise RuntimeError("gateway failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                await self.gateway.start()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                self._startup_error = exc
                raise
            finally:
                self._started.set()

        try:
            self._loop.run_until_complete(main())
            self._loop.run_forever()
        except BaseException:  # noqa: BLE001 - loop thread must not crash silently
            pass
        finally:
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._thread is not None
        stopping = asyncio.run_coroutine_threadsafe(
            self.gateway.stop(), self._loop
        )
        try:
            stopping.result(timeout=self.startup_timeout)
        except Exception:  # noqa: BLE001 - best-effort shutdown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=self.startup_timeout)
