"""Stable hashing helpers.

Python's built-in ``hash`` is salted per process for strings, which would
make shard assignment and Storm fields-grouping non-deterministic across
runs.  Everything in this library that routes by key uses
:func:`stable_hash` instead, so a given key always lands on the same shard
or worker regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import zlib
from typing import Iterable


def stable_hash(key: object) -> int:
    """Return a deterministic 32-bit hash of ``key``.

    Keys are rendered with ``repr`` (so ``1`` and ``"1"`` hash differently)
    and digested with CRC32.  This is *not* cryptographic — it only needs to
    spread keys evenly and be stable across processes.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def stable_bucket(key: object, buckets: int) -> int:
    """Map ``key`` onto one of ``buckets`` slots deterministically."""
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    return stable_hash(key) % buckets


def combined_hash(parts: Iterable[object]) -> int:
    """Hash a sequence of parts order-sensitively into 32 bits."""
    acc = 0
    for part in parts:
        acc = zlib.crc32(repr(part).encode("utf-8"), acc)
    return acc
