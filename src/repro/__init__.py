"""repro — reproduction of *Real-time Video Recommendation Exploration*
(Huang, Cui, Jiang, Hong, Zhang, Xie; SIGMOD 2016).

The package implements Tencent Video's production real-time recommender as
described in the paper, plus every substrate it depends on:

* :mod:`repro.core` — online adjustable MF for implicit feedback,
  similar-video tables, real-time top-N generation, demographic
  optimizations (the paper's contribution);
* :mod:`repro.storm` — a Storm-like stream-processing engine;
* :mod:`repro.kvstore` — the distributed-style key-value storage;
* :mod:`repro.topology` — the paper's Figure 2 topology on that engine;
* :mod:`repro.data` — synthetic Tencent-like workloads and MovieLens I/O;
* :mod:`repro.baselines` — Hot / AR / SimHash / ItemCF / BatchMF
  comparators;
* :mod:`repro.eval` — recall@N, average rank, the offline protocol, grid
  search and the simulated A/B test;
* :mod:`repro.obs` — the observability layer: one metrics registry,
  causally-linked trace spans across the topology and the serving path,
  profiling hooks, and the JSON perf-regression harness.

Quickstart::

    from repro import RealtimeRecommender, SyntheticWorld

    world = SyntheticWorld()
    rec = RealtimeRecommender(world.videos, users=world.users)
    for action in world.generate_actions(days=6):
        rec.observe(action)
    print(rec.recommend_ids("u0", n=10))
"""

from .clock import SECONDS_PER_DAY, Clock, SystemClock, VirtualClock
from .config import (
    ActionWeightConfig,
    MFConfig,
    OnlineConfig,
    RecommendConfig,
    ReproConfig,
    SimilarityConfig,
)
from .core import (
    ALL_VARIANTS,
    BINARY_MODEL,
    COMBINE_MODEL,
    CONF_MODEL,
    GroupedRecommender,
    MFModel,
    OnlineTrainer,
    RealtimeRecommender,
    Recommendation,
    SimilarVideoTable,
)
from .data import (
    ActionType,
    SyntheticWorld,
    User,
    UserAction,
    Video,
    WorldConfig,
)
from .errors import ReproError
from .obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    profiled,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ReproConfig",
    "ActionWeightConfig",
    "MFConfig",
    "OnlineConfig",
    "SimilarityConfig",
    "RecommendConfig",
    "Clock",
    "SystemClock",
    "VirtualClock",
    "SECONDS_PER_DAY",
    "ActionType",
    "User",
    "UserAction",
    "Video",
    "SyntheticWorld",
    "WorldConfig",
    "MFModel",
    "OnlineTrainer",
    "RealtimeRecommender",
    "Recommendation",
    "GroupedRecommender",
    "SimilarVideoTable",
    "BINARY_MODEL",
    "CONF_MODEL",
    "COMBINE_MODEL",
    "ALL_VARIANTS",
    "MetricsRegistry",
    "Tracer",
    "Observability",
    "profiled",
]
