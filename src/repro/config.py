"""Configuration objects for every stage of the system.

The paper tunes its parameters by grid search (Table 2).  The table's header
names the parameters — ``f, lambda, a, b, eta_0, alpha, beta, xi`` — and we
expose each one here with documented semantics and validation.  The defaults
below are the optima of our own grid search on the synthetic world (see
``benchmarks/test_table2_gridsearch.py``); they sit in the ranges the paper's
text implies (e.g. PlayTime weights spanning ``[1.5, 2.5]`` per Table 1).

Configs are frozen dataclasses: construct once, share freely across threads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from .errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class ActionWeightConfig:
    """Weights of implicit-feedback action types (paper Table 1, Eq. 6).

    ``Impress`` carries zero weight — an impression alone is *not* evidence
    of preference and never updates the model (§3.3).  ``PlayTime`` actions
    are weighted by the *view rate* ``vrate = watched_seconds / video_length``
    through ``w = a + b * log10(vrate)`` so that a full view scores ``a`` and
    the floor view rate scores ``a - b``; the paper clamps ``vrate`` to
    ``[0.1, 1]`` and treats anything below the floor like a bare ``Play``.

    With the defaults ``a = 2.5, b = 1.0`` the PlayTime weight spans exactly
    the ``[1.5, 2.5]`` interval printed in Table 1.  The click weight sits
    below the Play weight: a click is the weakest, most accident-prone
    positive signal (the value row of the paper's Table 1 is unreadable in
    the source text; 0.5 is our grid-searched choice).
    """

    impress: float = 0.0
    click: float = 0.5
    play: float = 1.5
    comment: float = 3.0
    like: float = 3.0
    share: float = 3.5
    a: float = 2.5
    b: float = 1.0
    vrate_floor: float = 0.1

    def __post_init__(self) -> None:
        _require(self.impress == 0.0, "impress weight must be 0 (no evidence)")
        _require(self.click > 0, "click weight must be positive")
        _require(self.a >= self.b > 0, "Eq. 6 requires a >= b > 0")
        _require(0 < self.vrate_floor < 1, "vrate floor must be in (0, 1)")
        # A floored PlayTime must not score below a bare Play, otherwise a
        # user who watched a little would count for *less* than one who only
        # pressed play.
        _require(
            self.a + self.b * math.log10(self.vrate_floor) <= self.play,
            "PlayTime floor weight must not exceed the Play weight",
        )


@dataclass(frozen=True, slots=True)
class MFConfig:
    """Biased matrix-factorization hyper-parameters (paper §3.1).

    ``f`` is the latent dimensionality (the paper quotes 20-200 as the
    production range), ``lam`` the L2 regularization strength of Eq. 3, and
    ``init_scale`` the standard deviation used to initialise new user/video
    vectors in Algorithm 1.

    ``backend`` selects where the factors live (DESIGN.md "Model storage
    backends & batching"):

    * ``"arena"`` (default) — entity ids are interned into contiguous
      ``(N, f)`` factor arenas stored as two KV entries, so batch reads
      are gathers and ``predict_many`` is one matmul;
    * ``"kv"`` — one KV entry per vector/bias, the paper's
      distributed-storage layout where every parameter is individually
      addressable by key (§5.1).

    Both backends produce identical predictions; a store written by one
    is migrated on model construction by the other.
    """

    f: int = 16
    lam: float = 0.01
    init_scale: float = 0.03
    seed: int = 7
    backend: str = "arena"

    def __post_init__(self) -> None:
        _require(self.f >= 1, "latent dimensionality f must be >= 1")
        _require(self.lam >= 0, "regularization lambda must be >= 0")
        _require(self.init_scale > 0, "init_scale must be positive")
        _require(
            self.backend in ("arena", "kv"),
            f"backend must be 'arena' or 'kv', got {self.backend!r}",
        )


@dataclass(frozen=True, slots=True)
class OnlineConfig:
    """Adjustable online-update parameters (paper Eq. 8, Algorithm 1).

    The per-action learning rate is ``eta_ui = eta0 + alpha * w_ui``:
    ``eta0`` is the basic rate every positive action receives, and ``alpha``
    scales the action's confidence into extra step size.  Setting
    ``alpha = 0`` recovers the paper's *BinaryModel*.
    """

    eta0: float = 0.001
    alpha: float = 0.002
    max_eta: float = 0.5

    def __post_init__(self) -> None:
        _require(self.eta0 > 0, "base learning rate eta0 must be positive")
        _require(self.alpha >= 0, "confidence coefficient alpha must be >= 0")
        _require(self.max_eta >= self.eta0, "max_eta must be >= eta0")


@dataclass(frozen=True, slots=True)
class SimilarityConfig:
    """Similar-video table parameters (paper §4.2, Eqs. 9-12).

    ``beta`` mixes CF similarity (Eq. 9) with type similarity (Eq. 10);
    ``xi`` is the half-life in seconds of the time damping factor
    ``d = 2^(-dt/xi)`` (Eq. 11); ``table_size`` is the length of each
    video's similar-video list; ``candidate_pool`` bounds how many
    co-occurring videos are rescored per triggering action.
    """

    beta: float = 0.2
    xi: float = 2 * 86_400.0
    table_size: int = 50
    candidate_pool: int = 200

    def __post_init__(self) -> None:
        _require(0 <= self.beta <= 1, "fusion weight beta must be in [0, 1]")
        _require(self.xi > 0, "damping half-life xi must be positive")
        _require(self.table_size >= 1, "table_size must be >= 1")
        _require(
            self.candidate_pool >= self.table_size,
            "candidate_pool must be >= table_size",
        )


@dataclass(frozen=True, slots=True)
class RecommendConfig:
    """Real-time recommendation generation parameters (paper §4.1, §5.2)."""

    top_n: int = 10
    max_seeds: int = 5
    #: Candidates rescored per request.  Deliberately tight: the
    #: similar-video tables already rank by relevance, and §4.1's whole
    #: point is that serving must not degenerate into scoring large pools
    #: (grid-searched; widening this dilutes the tables' signal with the
    #: popularity bias of the Eq. 2 reranker).
    max_candidates: int = 30
    #: Fraction of recommendation slots the demographic (DB) algorithm may
    #: fill when merging hot videos into the MF results (§5.2.1).
    demographic_slots: float = 0.2
    #: Whether already-watched videos are suppressed from recommendations.
    #: Off by default: the paper's scenarios ("related videos", "guess you
    #: like") do not exclude re-watching, which is pervasive on video sites
    #: (series, shows) and part of what its recall protocol measures.
    exclude_watched: bool = False

    def __post_init__(self) -> None:
        _require(self.top_n >= 1, "top_n must be >= 1")
        _require(self.max_seeds >= 1, "max_seeds must be >= 1")
        _require(self.max_candidates >= self.top_n, "candidates must cover top_n")
        _require(
            0 <= self.demographic_slots <= 1,
            "demographic_slots is a fraction in [0, 1]",
        )


@dataclass(frozen=True, slots=True)
class RetrievalConfig:
    """Candidate retrieval strategy (DESIGN.md "Candidate retrieval index").

    ``mode`` selects how the recommender gathers the pool the Eq. 2
    re-ranker scores:

    * ``"table"`` (default) — the paper's similar-video tables only; no
      index is built.  This is also the correctness oracle the ANN path is
      tested against.
    * ``"ann"`` — LSH shortlist from :class:`repro.core.AnnIndex` over the
      learned factor vectors, exact re-rank on top.
    * ``"hybrid"`` — union of the table candidates and the ANN shortlist.

    The index knobs trade recall for probe cost: more ``tables`` and a
    larger ``probe_radius`` raise recall; more ``band_bits`` shrink the
    buckets (fewer candidates per probe).  ``band_bits = 0`` auto-sizes the
    bands so mean bucket occupancy lands near ``target_occupancy``.
    """

    mode: str = "table"
    #: Number of independent hash tables (LSH bands).
    tables: int = 8
    #: Bits per band; 0 = auto-size from catalog size and partition count.
    band_bits: int = 0
    #: Target mean rows per (partition, band-value) bucket for auto-sizing.
    target_occupancy: int = 32
    min_band_bits: int = 4
    max_band_bits: int = 20
    #: Maximum Hamming radius of multi-probe escalation within each band.
    probe_radius: int = 2
    #: Shortlist target = ``oversample * n`` before the exact re-rank.
    #: Query-directed probing stops at the first perturbation that meets
    #: it, so it is the recall/latency knob: the default holds recall@100
    #: above 0.95 on a 1M-item clustered catalog.
    oversample: int = 128
    #: Floor on the shortlist target (useful when ``n`` is tiny).
    min_shortlist: int = 512
    #: Hard cap on shortlist size handed to the re-ranker.
    shortlist_cap: int = 65_536
    #: Re-hash an indexed video every ``check_every``-th upsert (signature
    #: drift check), not on every SGD step.
    check_every: int = 8
    #: Partition the inverted lists by ``Video.kind``.
    partition_by_kind: bool = True
    #: Probe only partitions compatible with the requester's demographic
    #: group (learned from observed engagements).  Off by default: pruning
    #: narrows recall for users whose group has little history.
    partition_pruning: bool = False
    #: Scale of the bias coordinate in the hashed direction ``[y, s*b]``
    #: (query ``[x, 1/s]``).  0 = derive from the data at build time so the
    #: query's constant coordinate stays small relative to a typical
    #: factor vector and does not compress the angular spread.
    bias_scale: float = 0.0
    seed: int = 83

    def __post_init__(self) -> None:
        _require(
            self.mode in ("table", "ann", "hybrid"),
            f"mode must be 'table', 'ann' or 'hybrid', got {self.mode!r}",
        )
        _require(self.tables >= 1, "tables must be >= 1")
        _require(self.band_bits >= 0, "band_bits must be >= 0 (0 = auto)")
        _require(self.target_occupancy >= 1, "target_occupancy must be >= 1")
        _require(
            1 <= self.min_band_bits <= self.max_band_bits <= 63,
            "need 1 <= min_band_bits <= max_band_bits <= 63",
        )
        _require(
            self.band_bits == 0 or self.band_bits <= 63,
            "band_bits must fit in a uint64 band value",
        )
        _require(self.probe_radius >= 0, "probe_radius must be >= 0")
        _require(self.oversample >= 1, "oversample must be >= 1")
        _require(self.min_shortlist >= 1, "min_shortlist must be >= 1")
        _require(self.shortlist_cap >= self.min_shortlist,
                 "shortlist_cap must be >= min_shortlist")
        _require(self.check_every >= 1, "check_every must be >= 1")
        _require(self.bias_scale >= 0, "bias_scale must be >= 0 (0 = auto)")


@dataclass(frozen=True, slots=True)
class ReproConfig:
    """Bundle of all stage configurations with paper-style defaults."""

    weights: ActionWeightConfig = field(default_factory=ActionWeightConfig)
    mf: MFConfig = field(default_factory=MFConfig)
    online: OnlineConfig = field(default_factory=OnlineConfig)
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    recommend: RecommendConfig = field(default_factory=RecommendConfig)
    retrieval: RetrievalConfig = field(default_factory=RetrievalConfig)

    def with_overrides(self, **sections: Mapping[str, object]) -> "ReproConfig":
        """Return a copy with named fields replaced inside named sections.

        Example::

            cfg = ReproConfig().with_overrides(online={"alpha": 0.0})
        """
        updates = {}
        for section, fields_ in sections.items():
            current = getattr(self, section, None)
            if current is None:
                raise ConfigError(f"unknown config section: {section!r}")
            updates[section] = replace(current, **dict(fields_))
        return replace(self, **updates)


#: The parameter names of the paper's Table 2, mapped to where they live in
#: this configuration.  The printed value row is unreadable in the source
#: text, so values are re-derived by grid search (see DESIGN.md).
TABLE2_PARAMETERS: Mapping[str, str] = {
    "f": "mf.f",
    "lambda": "mf.lam",
    "a": "weights.a",
    "b": "weights.b",
    "eta_0": "online.eta0",
    "alpha": "online.alpha",
    "beta": "similarity.beta",
    "xi": "similarity.xi",
}
