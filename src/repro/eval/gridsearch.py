"""Grid search over model parameters (paper Table 2).

"Parameters used in our model are determined by using grid search to obtain
the optimal values."  The harness takes a recommender *factory* and a
parameter grid, runs the offline protocol for every combination, and ranks
them by recall@N — reproducing how Table 2's values were obtained.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..data.schema import UserAction, Video
from .protocol import EvalResult, evaluate


@dataclass(frozen=True, slots=True)
class GridPoint:
    """One evaluated parameter combination."""

    params: Mapping[str, object]
    result: EvalResult
    score: float


@dataclass(frozen=True, slots=True)
class GridSearchResult:
    """All evaluated points, best first."""

    points: Sequence[GridPoint]
    metric: str

    @property
    def best(self) -> GridPoint:
        return self.points[0]

    def table(self) -> list[dict[str, object]]:
        """Rows of (params..., score) — a printable Table 2 derivation."""
        rows = []
        for point in self.points:
            row = dict(point.params)
            row[self.metric] = round(point.score, 4)
            rows.append(row)
        return rows


def grid_search(
    factory: Callable[..., object],
    grid: Mapping[str, Sequence[object]],
    train: Sequence[UserAction],
    test: Sequence[UserAction],
    videos: Mapping[str, Video] | None = None,
    metric_n: int = 10,
) -> GridSearchResult:
    """Evaluate every combination in ``grid`` and rank by recall@``metric_n``.

    ``factory(**params)`` must return a fresh recommender for each
    combination (models must not share state across grid points).
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    names = sorted(grid)
    points: list[GridPoint] = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        recommender = factory(**params)
        result = evaluate(
            recommender, train, test, videos=videos, max_n=metric_n
        )
        points.append(
            GridPoint(params=params, result=result, score=result.recall(metric_n))
        )
    points.sort(key=lambda p: -p.score)
    return GridSearchResult(points=points, metric=f"recall@{metric_n}")
