"""Continuous experimentation: many arms, interleaving, early stopping.

Generalises the paper's fixed-split ten-day A/B test (§6.2) into an
:class:`Experiment` object:

* **assignment** — either the classic stable hash split (each user's
  traffic goes to one arm, exactly like the legacy
  :class:`~repro.eval.abtest.ABTestHarness`), or **team-draft
  multileaving**: every request's result list is drafted round-robin from
  all arms in a per-round random order, and impressions/clicks are
  credited to the arm that contributed each slot.  Interleaving gives
  every arm per-user paired exposure, which slashes the variance of CTR
  deltas;
* **shared logs** — all arms observe the same organic daily stream plus
  all recommendation feedback, as in the paper's production setup;
* **sequential stopping** — an always-valid mixture sequential probability
  ratio test (mSPRT, Johari et al.) per treatment arm against a control
  arm, checked at end-of-day checkpoints, so rigged experiments stop in
  days instead of running the full horizon, without inflating the
  false-positive rate of A/A runs.

The legacy ``ABTestHarness`` API is kept as a thin deprecated shim over
this module (see :mod:`repro.eval.abtest`); its hash-split semantics are
reproduced draw for draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..clock import SECONDS_PER_DAY
from ..data.schema import ActionType, UserAction
from ..data.stream import group_by_day
from ..data.synthetic import SyntheticWorld
from ..errors import ConfigError
from ..hashing import stable_bucket

__all__ = [
    "ArmStats",
    "Experiment",
    "ExperimentResult",
    "MSPRTStopping",
    "mixture_sprt_p_value",
]


@dataclass(slots=True)
class ArmStats:
    """Per-arm impression/click accounting.

    ``daily_ctr`` reports ``None`` on zero-impression days — "never
    served" must stay distinguishable from "served but never clicked"
    (which is a true 0.0).
    """

    impressions: list[int] = field(default_factory=list)
    clicks: list[int] = field(default_factory=list)

    def daily_ctr(self) -> list[float | None]:
        return [
            c / i if i else None
            for c, i in zip(self.clicks, self.impressions)
        ]

    @property
    def total_impressions(self) -> int:
        return sum(self.impressions)

    @property
    def total_clicks(self) -> int:
        return sum(self.clicks)

    @property
    def overall_ctr(self) -> float:
        """Clicks over impressions; NaN when the arm was never served."""
        total_impressions = self.total_impressions
        if not total_impressions:
            return float("nan")
        return self.total_clicks / total_impressions


# ---------------------------------------------------------------------------
# Sequential stopping (mSPRT)
# ---------------------------------------------------------------------------


def mixture_sprt_p_value(
    clicks_a: int,
    impressions_a: int,
    clicks_b: int,
    impressions_b: int,
    tau: float,
) -> float:
    """One mSPRT likelihood-ratio step for a CTR difference.

    Normal-approximation mixture SPRT with a ``N(0, tau^2)`` prior on the
    treatment effect ``theta = p_b - p_a`` (Johari, Pekelis & Walsh,
    "Always valid inference").  Returns ``1 / Lambda_n`` clipped to
    ``[0, 1]`` — the *instantaneous* p-value; callers must take the
    running minimum over checkpoints to keep it always-valid.
    """
    if impressions_a <= 0 or impressions_b <= 0:
        return 1.0
    p_a = clicks_a / impressions_a
    p_b = clicks_b / impressions_b
    pooled = (clicks_a + clicks_b) / (impressions_a + impressions_b)
    variance = max(pooled * (1.0 - pooled), 1e-12) * (
        1.0 / impressions_a + 1.0 / impressions_b
    )
    theta = p_b - p_a
    tau_sq = tau * tau
    log_lambda = 0.5 * math.log(variance / (variance + tau_sq)) + (
        theta * theta * tau_sq
    ) / (2.0 * variance * (variance + tau_sq))
    if log_lambda > 700.0:  # exp overflow guard: p-value is ~0 anyway
        return 0.0
    return min(1.0, math.exp(-log_lambda))


@dataclass(frozen=True, slots=True)
class MSPRTStopping:
    """Sequential-stopping policy for :class:`Experiment`.

    At the end of every day (after ``min_days`` full days) each treatment
    arm is tested against ``control`` (default: the alphabetically first
    arm) with an always-valid mSPRT p-value on cumulative impressions and
    clicks.  The experiment stops as soon as any arm's running p-value
    drops to ``alpha`` or below.
    """

    alpha: float = 0.05
    tau: float = 0.02
    control: str | None = None
    min_days: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.tau <= 0.0:
            raise ConfigError(f"tau must be positive, got {self.tau}")
        if self.min_days < 1:
            raise ConfigError("min_days must be >= 1")


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one experiment run.

    ``days`` is the number of days actually simulated — fewer than the
    configured horizon when sequential stopping fired (``stopped_day`` is
    then the zero-based day after which the experiment halted, and
    ``stopped_arm`` the treatment arm that crossed the threshold).
    ``p_values`` holds the final running mSPRT p-value per treatment arm
    (empty when no stopping policy was attached).
    """

    arms: Mapping[str, ArmStats]
    days: int
    assignment: str = "hash"
    stopped_day: int | None = None
    stopped_arm: str | None = None
    p_values: Mapping[str, float] = field(default_factory=dict)

    def daily_ctr(self) -> dict[str, list[float | None]]:
        """Figure 7: one CTR series per arm (None on zero-impression days)."""
        return {name: stats.daily_ctr() for name, stats in self.arms.items()}

    def overall_ctr(self) -> dict[str, float]:
        return {name: stats.overall_ctr for name, stats in self.arms.items()}

    def improvement_table(self) -> dict[tuple[str, str], float]:
        """Table 5: relative CTR improvement of every arm over every other."""
        ctr = self.overall_ctr()
        table: dict[tuple[str, str], float] = {}
        for a in ctr:
            for b in ctr:
                if (
                    a != b
                    and math.isfinite(ctr[a])
                    and math.isfinite(ctr[b])
                    and ctr[b] > 0
                ):
                    table[(a, b)] = (ctr[a] - ctr[b]) / ctr[b]
        return table

    def days_won(self, arm: str) -> int:
        """On how many days ``arm`` had the strictly highest CTR."""
        daily = self.daily_ctr()
        wins = 0
        for day in range(self.days):
            served = [
                series[day]
                for series in daily.values()
                if series[day] is not None
            ]
            if not served or daily[arm][day] is None:
                continue
            best = max(served)
            if daily[arm][day] == best and served.count(best) == 1:
                wins += 1
        return wins


# ---------------------------------------------------------------------------
# The experiment engine
# ---------------------------------------------------------------------------


class Experiment:
    """Runs a multi-arm live-evaluation simulation on a synthetic world.

    ``assignment="hash"`` reproduces the legacy fixed hash split draw for
    draw; ``assignment="interleave"`` serves every request with a
    team-draft multileaved list built from all arms.  An optional
    ``stopping`` policy (:class:`MSPRTStopping`) ends the run early at a
    day boundary.
    """

    ASSIGNMENTS = ("hash", "interleave")

    def __init__(
        self,
        world: SyntheticWorld,
        arms: Mapping[str, Any],
        days: int = 10,
        requests_per_user_per_day: int = 1,
        top_n: int = 10,
        seed: int = 99,
        assignment: str = "hash",
        stopping: MSPRTStopping | None = None,
    ) -> None:
        if not arms:
            raise ValueError("an experiment needs at least one arm")
        if assignment not in self.ASSIGNMENTS:
            raise ConfigError(
                f"assignment must be one of {self.ASSIGNMENTS}, "
                f"got {assignment!r}"
            )
        if stopping is not None:
            control = stopping.control
            if control is not None and control not in arms:
                raise ConfigError(
                    f"stopping control arm {control!r} is not an arm"
                )
            if len(arms) < 2:
                raise ConfigError(
                    "sequential stopping needs at least two arms"
                )
        self.world = world
        self.arms = dict(arms)
        self.days = days
        self.requests_per_user_per_day = requests_per_user_per_day
        self.top_n = top_n
        self.assignment = assignment
        self.stopping = stopping
        self._rng = np.random.default_rng(seed)
        self._arm_names = sorted(self.arms)

    # -- assignment ---------------------------------------------------------

    def arm_of(self, user_id: str) -> str:
        """Stable traffic split: the arm this user's requests go to."""
        return self._arm_names[stable_bucket(user_id, len(self._arm_names))]

    def _interleave(
        self, per_arm: Mapping[str, list[str]]
    ) -> list[tuple[str, str]]:
        """Team-draft multileave: ``(video_id, crediting_arm)`` slots.

        Rounds of drafting: each round visits the arms in a fresh random
        order; every arm drafts its best not-yet-picked candidate.  Stops
        at ``top_n`` slots or when all candidate lists are exhausted.
        """
        cursors = {name: 0 for name in self._arm_names}
        picked: set[str] = set()
        slots: list[tuple[str, str]] = []
        while len(slots) < self.top_n:
            progressed = False
            order = self._rng.permutation(len(self._arm_names))
            for idx in order:
                name = self._arm_names[idx]
                candidates = per_arm[name]
                cursor = cursors[name]
                while cursor < len(candidates) and candidates[cursor] in picked:
                    cursor += 1
                cursors[name] = cursor
                if cursor >= len(candidates):
                    continue
                video_id = candidates[cursor]
                cursors[name] = cursor + 1
                picked.add(video_id)
                slots.append((video_id, name))
                progressed = True
                if len(slots) >= self.top_n:
                    break
            if not progressed:
                break
        return slots

    # -- feedback -----------------------------------------------------------

    def _feedback_actions(
        self, user_id: str, clicked: list[str], now: float
    ) -> list[UserAction]:
        """Engagement generated by clicking recommended videos."""
        actions: list[UserAction] = []
        t = now
        for video_id in clicked:
            actions.append(
                UserAction(t, user_id, video_id, ActionType.CLICK)
            )
            t += 2.0
            actions.append(UserAction(t, user_id, video_id, ActionType.PLAY))
            t += 5.0
        return actions

    # -- stopping -----------------------------------------------------------

    def _control_arm(self) -> str:
        assert self.stopping is not None
        return (
            self.stopping.control
            if self.stopping.control is not None
            else self._arm_names[0]
        )

    def _check_stopping(
        self,
        stats: Mapping[str, ArmStats],
        running_p: dict[str, float],
        day: int,
    ) -> str | None:
        """Update running p-values; return the winning arm if any crossed."""
        assert self.stopping is not None
        control = self._control_arm()
        control_stats = stats[control]
        crossed: str | None = None
        for name in self._arm_names:
            if name == control:
                continue
            step = mixture_sprt_p_value(
                control_stats.total_clicks,
                control_stats.total_impressions,
                stats[name].total_clicks,
                stats[name].total_impressions,
                self.stopping.tau,
            )
            running_p[name] = min(running_p.get(name, 1.0), step)
        if day + 1 < self.stopping.min_days:
            return None
        for name, p in running_p.items():
            if p <= self.stopping.alpha:
                crossed = name if crossed is None else crossed
        return crossed

    # -- the run loop -------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Simulate the experiment; return per-arm daily CTR series."""
        organic = self.world.generate_actions(days=self.days)
        by_day = group_by_day(organic)

        stats = {name: ArmStats() for name in self._arm_names}
        users = self.world.user_ids()
        running_p: dict[str, float] = {}
        stopped_day: int | None = None
        stopped_arm: str | None = None
        days_run = 0

        for day in range(self.days):
            # 1. Everyone ingests the day's shared organic traffic.
            for action in by_day.get(day, ()):
                for arm in self.arms.values():
                    arm.observe(action)

            # 2. Serve each user's requests.
            day_impressions = {name: 0 for name in self._arm_names}
            day_clicks = {name: 0 for name in self._arm_names}
            for user_id in users:
                for _ in range(self.requests_per_user_per_day):
                    now = (day + 1) * SECONDS_PER_DAY - self._rng.uniform(
                        0, SECONDS_PER_DAY / 2
                    )
                    if self.assignment == "hash":
                        self._serve_hash(
                            user_id, now, day_impressions, day_clicks
                        )
                    else:
                        self._serve_interleaved(
                            user_id, now, day_impressions, day_clicks
                        )

            for name in self._arm_names:
                stats[name].impressions.append(day_impressions[name])
                stats[name].clicks.append(day_clicks[name])

            # 3. Batch arms retrain at end of day.
            end_of_day = (day + 1) * SECONDS_PER_DAY
            for arm in self.arms.values():
                retrain = getattr(arm, "retrain", None)
                if callable(retrain):
                    retrain(end_of_day)

            days_run = day + 1

            # 4. Sequential stopping at the day checkpoint.
            if self.stopping is not None:
                winner = self._check_stopping(stats, running_p, day)
                if winner is not None:
                    stopped_day = day
                    stopped_arm = winner
                    break

        return ExperimentResult(
            arms=stats,
            days=days_run,
            assignment=self.assignment,
            stopped_day=stopped_day,
            stopped_arm=stopped_arm,
            p_values=dict(running_p),
        )

    def _serve_hash(
        self,
        user_id: str,
        now: float,
        day_impressions: dict[str, int],
        day_clicks: dict[str, int],
    ) -> None:
        """One hash-split request — draw-for-draw the legacy harness."""
        arm_name = self.arm_of(user_id)
        arm = self.arms[arm_name]
        shown = arm.recommend_ids(user_id, n=self.top_n, now=now)
        if not shown:
            return
        clicked = self.world.simulate_clicks(
            user_id, shown, self._rng, now=now
        )
        day_impressions[arm_name] += len(shown)
        day_clicks[arm_name] += len(clicked)
        for action in self._feedback_actions(user_id, clicked, now):
            arm.observe(action)

    def _serve_interleaved(
        self,
        user_id: str,
        now: float,
        day_impressions: dict[str, int],
        day_clicks: dict[str, int],
    ) -> None:
        """One team-draft multileaved request across all arms."""
        per_arm = {
            name: list(
                self.arms[name].recommend_ids(user_id, n=self.top_n, now=now)
            )
            for name in self._arm_names
        }
        slots = self._interleave(per_arm)
        if not slots:
            return
        shown = [video_id for video_id, _ in slots]
        credit = dict(slots)
        clicked = self.world.simulate_clicks(
            user_id, shown, self._rng, now=now
        )
        for video_id, arm_name in slots:
            day_impressions[arm_name] += 1
        for video_id in clicked:
            day_clicks[credit[video_id]] += 1
        # Shared feedback: every arm observes the engagement, exactly as
        # all arms observe the full organic site logs.
        for action in self._feedback_actions(user_id, clicked, now):
            for arm in self.arms.values():
                arm.observe(action)
