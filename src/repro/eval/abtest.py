"""Deprecated shim over :mod:`repro.eval.experiment` (paper §6.2).

The simulated live A/B test originally lived here as a single fixed
hash-split loop.  The evaluation plane now runs on
:class:`~repro.eval.experiment.Experiment` — many concurrent arms,
optional team-draft interleaving, and mSPRT sequential stopping — and
this module keeps the historical entry points working:

* :class:`ABTestHarness` is a thin subclass of ``Experiment`` pinned to
  ``assignment="hash"``; its draw sequence (and therefore its output) is
  identical to the legacy implementation;
* :class:`ABTestResult` and :class:`ArmStats` are re-exports of the
  experiment-layer types.  Note ``ArmStats.daily_ctr`` now reports
  ``None`` (not 0.0) on zero-impression days, and ``overall_ctr`` is NaN
  for a never-served arm.

New code should import from :mod:`repro.eval.experiment` directly.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

from ..data.synthetic import SyntheticWorld
from .experiment import ArmStats, Experiment, ExperimentResult

__all__ = ["ABTestHarness", "ABTestResult", "ArmStats"]

#: Historical name for the result type (same object, richer API).
ABTestResult = ExperimentResult


class ABTestHarness(Experiment):
    """Deprecated: use :class:`repro.eval.experiment.Experiment`.

    Runs the ten-day live-evaluation simulation with the legacy stable
    hash split.  Kept so external callers don't break; new features
    (interleaving, sequential stopping) live on ``Experiment``.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        arms: Mapping[str, Any],
        days: int = 10,
        requests_per_user_per_day: int = 1,
        top_n: int = 10,
        seed: int = 99,
    ) -> None:
        warnings.warn(
            "ABTestHarness is deprecated; use "
            "repro.eval.experiment.Experiment (assignment='hash' matches "
            "the legacy behaviour exactly)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            world,
            arms,
            days=days,
            requests_per_user_per_day=requests_per_user_per_day,
            top_n=top_n,
            seed=seed,
            assignment="hash",
        )
