"""The paper's offline evaluation protocol (§6.1).

Collect a week of actions, clean, train on the first six days (online,
single pass — the model under test is a *streaming* learner), then for each
user with positive actions on the seventh day generate a top-N list and
score it with recall@N and the average-rank metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.actions import ActionWeigher, LogPlaytimeWeigher
from ..data.schema import UserAction, Video
from ..data.stream import ENGAGEMENT_ACTIONS
from .metrics import average_rank, recall_curve

#: Minimum action confidence for a test action to count as "liked" in
#: Eq. 13.  With the default weight table this admits real watches
#: (PlayTime above ~30 % view rate) and social actions, but not bare
#: clicks or abandoned plays — "liked" is stronger than "touched".
DEFAULT_LIKED_WEIGHT = 2.0


def liked_videos_by_user(
    test_actions: Sequence[UserAction],
    videos: Mapping[str, Video] | None = None,
    weigher: ActionWeigher | None = None,
    min_weight: float = DEFAULT_LIKED_WEIGHT,
) -> dict[str, set[str]]:
    """The ``i_u`` sets of Eq. 13: videos each user *liked* in the test data.

    An action counts when its confidence weight reaches ``min_weight``;
    actions that cannot be weighted (unknown video duration) fall back to
    weight 1 and therefore do not qualify under the default threshold.
    """
    videos = videos or {}
    weigher = weigher or LogPlaytimeWeigher()
    out: dict[str, set[str]] = {}
    for action in test_actions:
        if action.action not in ENGAGEMENT_ACTIONS:
            continue
        try:
            weight = weigher.weight(action, videos.get(action.video_id))
        except Exception:
            weight = 1.0
        if weight >= min_weight:
            out.setdefault(action.user_id, set()).add(action.video_id)
    return out


@dataclass(frozen=True, slots=True)
class EvalResult:
    """Scores of one model under the offline protocol."""

    recall_at: Mapping[int, float]
    avg_rank: float
    n_test_users: int
    recommendations: Mapping[str, list[str]] = field(default_factory=dict)

    def recall(self, n: int = 10) -> float:
        return self.recall_at.get(n, 0.0)

    def summary(self) -> dict[str, float]:
        return {
            "recall@1": round(self.recall(1), 4),
            "recall@5": round(self.recall(5), 4),
            "recall@10": round(self.recall(10), 4),
            "avg_rank": round(self.avg_rank, 4),
            "test_users": self.n_test_users,
        }


def interest_lists_by_user(
    test_actions: Sequence[UserAction],
    videos: Mapping[str, Video] | None = None,
    weigher: ActionWeigher | None = None,
) -> dict[str, list[str]]:
    """Each test user's "ordered interested video list" (§6.1).

    Videos are ranked by the maximum confidence of the user's test actions
    on them — exactly the ordering Eq. 14's ``rank^t`` is defined over.
    Actions whose weight cannot be computed (PLAYTIME with unknown
    duration) fall back to weight 1.
    """
    videos = videos or {}
    weigher = weigher or LogPlaytimeWeigher()
    confidence: dict[str, dict[str, float]] = {}
    for action in test_actions:
        if action.action not in ENGAGEMENT_ACTIONS:
            continue
        try:
            weight = weigher.weight(action, videos.get(action.video_id))
        except Exception:
            weight = 1.0
        per_user = confidence.setdefault(action.user_id, {})
        per_user[action.video_id] = max(
            per_user.get(action.video_id, 0.0), weight
        )
    return {
        user_id: [
            video_id
            for video_id, _ in sorted(
                weights.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        for user_id, weights in confidence.items()
    }


def evaluate(
    recommender,
    train: Sequence[UserAction],
    test: Sequence[UserAction],
    videos: Mapping[str, Video] | None = None,
    max_n: int = 10,
    observe_train: bool = True,
    now: float | None = None,
    min_liked_weight: float = DEFAULT_LIKED_WEIGHT,
    liked: Mapping[str, set[str]] | None = None,
) -> EvalResult:
    """Run the full offline protocol for one recommender.

    ``recommender`` needs ``observe(action)`` and
    ``recommend_ids(user_id, n=..., now=...)``.  Set
    ``observe_train=False`` when the model was already trained (e.g. when
    comparing several request strategies on one trained model).  ``now``
    defaults to the first test timestamp (recommendations are generated
    "at the start of day seven").  ``min_liked_weight`` controls which test
    actions count as "liked" (see :func:`liked_videos_by_user`); pass
    ``liked`` explicitly to override — e.g. the synthetic world's
    ground-truth :meth:`~repro.data.synthetic.SyntheticWorld.genuinely_liked`
    sets.
    """
    if observe_train:
        for action in train:
            recommender.observe(action)

    if liked is None:
        liked = liked_videos_by_user(
            test, videos=videos, min_weight=min_liked_weight
        )
    if now is None:
        if test:
            now = min(a.timestamp for a in test)
        elif train:
            now = max(a.timestamp for a in train)
        else:
            now = 0.0

    recommendations = {
        user_id: recommender.recommend_ids(user_id, n=max_n, now=now)
        for user_id in sorted(liked)
    }
    interest = interest_lists_by_user(test, videos=videos)
    return EvalResult(
        recall_at=recall_curve(recommendations, liked, max_n=max_n),
        avg_rank=average_rank(recommendations, interest),
        n_test_users=len(liked),
        recommendations=recommendations,
    )
