"""Multi-seed experiment runs and bootstrap confidence intervals.

The variant margins in §6.1.2 are small (~10 % relative); on a
laptop-scale world a single seed can flip orderings.  These helpers run
the offline protocol across several world seeds and quantify the
uncertainty, so EXPERIMENTS.md can report means with spreads instead of
single draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..data import split_by_day
from ..data.synthetic import SyntheticWorld, paper_world_config
from .protocol import EvalResult, evaluate


@dataclass(frozen=True, slots=True)
class SeedSummary:
    """Mean and spread of a metric across seeds."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    def __str__(self) -> str:
        return f"{self.metric}: {self.mean:.4f} ± {self.std:.4f} (n={len(self.values)})"


def run_across_seeds(
    make_recommender: Callable[[SyntheticWorld], object],
    seeds: Sequence[int],
    train_days: int = 6,
    max_n: int = 10,
    world_overrides: Mapping[str, object] | None = None,
) -> dict[int, EvalResult]:
    """Run the offline protocol once per world seed.

    ``make_recommender(world)`` must return a fresh recommender for each
    world.  Evaluation uses the world's ground-truth liked sets.
    """
    results: dict[int, EvalResult] = {}
    for seed in seeds:
        world = SyntheticWorld(
            paper_world_config(seed=seed, **(world_overrides or {}))
        )
        split = split_by_day(world.generate_actions(), train_days=train_days)
        recommender = make_recommender(world)
        results[seed] = evaluate(
            recommender,
            split.train,
            split.test,
            videos=world.videos,
            liked=world.genuinely_liked(split.test),
            max_n=max_n,
        )
    return results


def summarize(
    results: Mapping[int, EvalResult], n: int = 10
) -> dict[str, SeedSummary]:
    """Aggregate recall@n and avg_rank across a multi-seed run."""
    recalls = tuple(r.recall(n) for r in results.values())
    ranks = tuple(r.avg_rank for r in results.values())
    return {
        f"recall@{n}": SeedSummary(f"recall@{n}", recalls),
        "avg_rank": SeedSummary("avg_rank", ranks),
    }


def bootstrap_ci(
    per_user_scores: Sequence[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for a mean of user scores.

    Recall@N is a mean over test users (Eq. 13); resampling users gives a
    CI on the metric without distributional assumptions.
    """
    if not per_user_scores:
        raise ValueError("need at least one per-user score")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    scores = np.asarray(per_user_scores, dtype=float)
    means = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = rng.choice(scores, size=scores.size, replace=True)
        means[i] = sample.mean()
    tail = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, tail)),
        float(np.quantile(means, 1.0 - tail)),
    )


def per_user_recall(
    recommended: Mapping[str, Sequence[str]],
    liked: Mapping[str, set[str]],
    n: int = 10,
) -> list[float]:
    """Per-user hit fractions — the samples recall@N averages (Eq. 13)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    scores = []
    for user_id, videos in liked.items():
        if not videos:
            continue
        top_n = list(recommended.get(user_id, ()))[:n]
        scores.append(
            sum(1 for video_id in top_n if video_id in videos) / n
        )
    return scores
