"""Scriptable adversarial production scenarios (ROADMAP item 1).

The paper validates its real-time methods with a ten-day live A/B test
(§6.2); the original reproduction replayed one benign organic trace.  But
the *payoff* of real-time similarity updates, online MF and admission
control shows up under recency pressure — a video going viral mid-stream,
catalog churn with cold-start items, diurnal traffic waves, preferences
drifting under the model.  This module makes those regimes first-class:

* **typed events** (:class:`FlashCrowd`, :class:`CatalogChurn`,
  :class:`DiurnalWave`, :class:`PreferenceDrift`) compose into a
  :class:`Scenario` timeline;
* :class:`~repro.data.synthetic.SyntheticWorld` consults the scenario for
  its per-day dynamics (popularity, catalog membership, arrival rates,
  preference factors).  A world with no scenario is **byte-identical** to
  the pre-scenario generator — pinned by a golden digest test;
* :func:`run_scenario` drives a full experiment through the scenario —
  quality via :class:`~repro.eval.experiment.Experiment` (CTR per arm) and
  ops via :class:`~repro.serving.RequestRouter` under open-loop offered
  load on a shared :class:`~repro.clock.VirtualClock` (shed rate, accepted
  p99, breaker trips, post-event recovery time) — and returns one
  schema-versioned :class:`ScenarioReport`.

The module deliberately imports only :mod:`repro.clock` and typed schema
pieces at import time; the heavy serving/eval wiring is imported inside
:func:`run_scenario` so the data layer can reference scenarios without an
import cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..clock import SECONDS_PER_DAY
from ..errors import ConfigError

__all__ = [
    "ScenarioEvent",
    "FlashCrowd",
    "CatalogChurn",
    "DiurnalWave",
    "PreferenceDrift",
    "ExtraVideoSpec",
    "Scenario",
    "baseline",
    "flash_crowd",
    "catalog_churn",
    "cold_start",
    "diurnal_wave",
    "preference_drift",
    "SCENARIO_LIBRARY",
    "ScenarioOpsConfig",
    "ScenarioReport",
    "SCENARIO_REPORT_SCHEMA_VERSION",
    "validate_scenario_report",
    "run_scenario",
    "default_arms",
]


# ---------------------------------------------------------------------------
# Typed events
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ExtraVideoSpec:
    """A video the scenario injects into the catalogue mid-stream.

    ``type_index`` is reduced modulo the world's ``n_types``;
    ``available_from_day`` is the first day the video can be impressed.
    """

    video_id: str
    type_index: int
    available_from_day: int


@dataclass(frozen=True, slots=True)
class ScenarioEvent:
    """Base class for timeline events (see concrete subclasses)."""

    def extra_video_specs(self, days: int) -> list[ExtraVideoSpec]:
        return []

    def popularity_multipliers(self, day: int) -> dict[str, float]:
        return {}

    def rate_multiplier(self, day: int) -> float:
        return 1.0

    def retire_count_through(self, day: int) -> int:
        return 0

    def arrival_wave(self, day: int) -> tuple[float, float, float] | None:
        """``(amplitude, period_seconds, phase)`` shaping within-day starts."""
        return None

    def drift_rotation_params(self, day: int) -> tuple[float, int] | None:
        """``(angle_radians, seed)`` when user factors are rotated on ``day``."""
        return None

    def offered_multiplier(self, t: float) -> float:
        """Serving-plane offered-QPS multiplier at absolute time ``t``."""
        return 1.0

    def event_window(self, days: int) -> tuple[float, float] | None:
        """The primary disturbance window in seconds, if any."""
        return None


@dataclass(frozen=True, slots=True)
class FlashCrowd(ScenarioEvent):
    """A video goes viral mid-stream (default: a brand-new one).

    From ``day`` for ``duration_days`` the viral video's popularity is
    multiplied by ``boost`` and overall arrivals by ``rate_spike`` — the
    regime that exercises simtable eviction (a flood of fresh pairs must
    displace heap-weakest entries), ANN drift-gated upserts (the new
    item's factors move fast) and the admission controller (the traffic
    spike must shed, then recover).
    """

    day: int = 3
    duration_days: int = 2
    boost: float = 60.0
    video_id: str | None = None  # None: inject a new video "viral_0"
    type_index: int = 0
    rate_spike: float = 1.5

    def __post_init__(self) -> None:
        if self.day < 0 or self.duration_days < 1:
            raise ConfigError("flash crowd needs day >= 0, duration >= 1")
        if self.boost <= 1.0:
            raise ConfigError("flash crowd boost must exceed 1.0")

    @property
    def viral_video_id(self) -> str:
        return self.video_id if self.video_id is not None else "viral_0"

    def extra_video_specs(self, days: int) -> list[ExtraVideoSpec]:
        if self.video_id is not None:
            return []
        return [ExtraVideoSpec("viral_0", self.type_index, self.day)]

    def popularity_multipliers(self, day: int) -> dict[str, float]:
        if self.day <= day < self.day + self.duration_days:
            return {self.viral_video_id: self.boost}
        return {}

    def rate_multiplier(self, day: int) -> float:
        if self.day <= day < self.day + self.duration_days:
            return self.rate_spike
        return 1.0

    def offered_multiplier(self, t: float) -> float:
        start = self.day * SECONDS_PER_DAY
        end = (self.day + self.duration_days) * SECONDS_PER_DAY
        return self.rate_spike if start <= t < end else 1.0

    def event_window(self, days: int) -> tuple[float, float] | None:
        return (
            self.day * SECONDS_PER_DAY,
            (self.day + self.duration_days) * SECONDS_PER_DAY,
        )


@dataclass(frozen=True, slots=True)
class CatalogChurn(ScenarioEvent):
    """Items enter and leave the catalogue daily (cold-start pressure).

    From ``start_day`` on, ``adds_per_day`` brand-new videos become
    available each day (spread across types) and the ``retires_per_day``
    weakest remaining base videos are withdrawn — the LFG / News-UK
    recency regime where batch-trained arms serve a stale catalogue.
    """

    start_day: int = 1
    adds_per_day: int = 4
    retires_per_day: int = 4

    def __post_init__(self) -> None:
        if self.start_day < 0:
            raise ConfigError("catalog churn start_day must be >= 0")
        if self.adds_per_day < 0 or self.retires_per_day < 0:
            raise ConfigError("catalog churn rates must be >= 0")

    def extra_video_specs(self, days: int) -> list[ExtraVideoSpec]:
        specs = []
        for day in range(self.start_day, days):
            for i in range(self.adds_per_day):
                ordinal = (day - self.start_day) * self.adds_per_day + i
                specs.append(
                    ExtraVideoSpec(f"new_d{day}_{i}", ordinal, day)
                )
        return specs

    def retire_count_through(self, day: int) -> int:
        if day < self.start_day:
            return 0
        return self.retires_per_day * (day - self.start_day + 1)

    def event_window(self, days: int) -> tuple[float, float] | None:
        return (self.start_day * SECONDS_PER_DAY, days * SECONDS_PER_DAY)


@dataclass(frozen=True, slots=True)
class DiurnalWave(ScenarioEvent):
    """Arrival-rate modulation: a sinusoidal within-day traffic wave.

    Session start times follow a density ``1 + amplitude * sin(...)``
    instead of uniform, and the serving plane offers QPS modulated by the
    same wave — peak hours push the admission controller past capacity,
    troughs let it recover.
    """

    amplitude: float = 0.7
    period_seconds: float = SECONDS_PER_DAY
    phase: float = -math.pi / 2.0  # trough at midnight, peak mid-day

    def __post_init__(self) -> None:
        if not 0.0 < self.amplitude <= 1.0:
            raise ConfigError("diurnal amplitude must be in (0, 1]")
        if self.period_seconds <= 0:
            raise ConfigError("diurnal period must be positive")

    def arrival_wave(self, day: int) -> tuple[float, float, float] | None:
        return (self.amplitude, self.period_seconds, self.phase)

    def offered_multiplier(self, t: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period_seconds + self.phase
        )

    def event_window(self, days: int) -> tuple[float, float] | None:
        # The peak half-wave of the middle day: the window where offered
        # load exceeds its mean and the admission controller is stressed.
        mid = days // 2
        quarter = self.period_seconds / 4.0
        peak = mid * SECONDS_PER_DAY + self.period_seconds / 2.0
        return (peak - quarter, peak + quarter)


@dataclass(frozen=True, slots=True)
class PreferenceDrift(ScenarioEvent):
    """User preference vectors rotate mid-stream.

    From ``day`` on, every user's ground-truth factor vector is rotated by
    ``angle_degrees`` in a fixed random plane of the latent space: tastes
    learned from the first days go stale at once, and only arms that keep
    learning online can follow.
    """

    day: int = 3
    angle_degrees: float = 75.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ConfigError("preference drift day must be >= 0")
        if not 0.0 < abs(self.angle_degrees) <= 180.0:
            raise ConfigError("drift angle must be in (0, 180] degrees")

    def drift_rotation_params(self, day: int) -> tuple[float, int] | None:
        if day >= self.day:
            return (math.radians(self.angle_degrees), self.seed)
        return None

    def event_window(self, days: int) -> tuple[float, float] | None:
        start = self.day * SECONDS_PER_DAY
        return (start, start + SECONDS_PER_DAY)


# ---------------------------------------------------------------------------
# The composable timeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, composable timeline of typed world events.

    The synthetic world queries the scenario day by day; every query
    composes over all events (multipliers multiply, catalog changes and
    rotations accumulate).  A scenario with no events is the organic
    baseline — :class:`~repro.data.synthetic.SyntheticWorld` treats it
    exactly like ``scenario=None``.
    """

    name: str
    events: tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigError(
                f"scenario name must be a non-empty slug, got {self.name!r}"
            )

    # -- world-facing queries (see SyntheticWorld._day_state) --------------

    def extra_video_specs(self, days: int) -> list[ExtraVideoSpec]:
        specs: list[ExtraVideoSpec] = []
        seen: set[str] = set()
        for event in self.events:
            for spec in event.extra_video_specs(days):
                if spec.video_id in seen:
                    raise ConfigError(
                        f"duplicate scenario video id {spec.video_id!r}"
                    )
                seen.add(spec.video_id)
                specs.append(spec)
        return specs

    def popularity_multipliers(self, day: int) -> dict[str, float]:
        out: dict[str, float] = {}
        for event in self.events:
            for video_id, mult in event.popularity_multipliers(day).items():
                out[video_id] = out.get(video_id, 1.0) * mult
        return out

    def rate_multiplier(self, day: int) -> float:
        mult = 1.0
        for event in self.events:
            mult *= event.rate_multiplier(day)
        return mult

    def retire_count_through(self, day: int) -> int:
        return sum(event.retire_count_through(day) for event in self.events)

    def arrival_wave(self, day: int) -> tuple[float, float, float] | None:
        for event in self.events:
            wave = event.arrival_wave(day)
            if wave is not None:
                return wave
        return None

    def drift_rotation(self, day: int, dim: int) -> np.ndarray | None:
        """The accumulated rotation applied to user factors on ``day``."""
        rotation: np.ndarray | None = None
        for event in self.events:
            params = event.drift_rotation_params(day)
            if params is None:
                continue
            angle, seed = params
            step = _plane_rotation(dim, angle, seed)
            rotation = step if rotation is None else rotation @ step
        return rotation

    # -- serving-plane queries ---------------------------------------------

    def offered_multiplier(self, t: float) -> float:
        mult = 1.0
        for event in self.events:
            mult *= event.offered_multiplier(t)
        return mult

    def event_window(self, days: int) -> tuple[float, float] | None:
        """The earliest-starting disturbance window across all events."""
        windows = [
            w for e in self.events if (w := e.event_window(days)) is not None
        ]
        return min(windows) if windows else None

    def describe(self) -> str:
        if not self.events:
            return f"{self.name}: organic baseline (no events)"
        parts = ", ".join(type(e).__name__ for e in self.events)
        return f"{self.name}: {parts}"


def _plane_rotation(dim: int, angle: float, seed: int) -> np.ndarray:
    """A rotation by ``angle`` in one random 2-D plane of ``R^dim``.

    Deterministic in ``(dim, angle, seed)`` and independent of any other
    RNG in the system — scenario dynamics must never perturb the organic
    generator's draw sequence.
    """
    if dim < 2:
        return np.eye(dim)
    rng = np.random.default_rng(1_000_003 * seed + dim)
    basis, _ = np.linalg.qr(rng.normal(size=(dim, 2)))
    q1, q2 = basis[:, 0], basis[:, 1]
    identity = np.eye(dim)
    return (
        identity
        + (math.cos(angle) - 1.0) * (np.outer(q1, q1) + np.outer(q2, q2))
        + math.sin(angle) * (np.outer(q1, q2) - np.outer(q2, q1))
    )


# ---------------------------------------------------------------------------
# The scenario library
# ---------------------------------------------------------------------------


def baseline() -> Scenario:
    """The organic no-event world (byte-identical to ``scenario=None``)."""
    return Scenario("baseline")


def flash_crowd(
    day: int = 3,
    duration_days: int = 2,
    boost: float = 60.0,
    rate_spike: float = 1.5,
    video_id: str | None = None,
    type_index: int = 0,
) -> Scenario:
    return Scenario(
        "flash_crowd",
        (
            FlashCrowd(
                day=day,
                duration_days=duration_days,
                boost=boost,
                rate_spike=rate_spike,
                video_id=video_id,
                type_index=type_index,
            ),
        ),
    )


def catalog_churn(
    start_day: int = 1, adds_per_day: int = 4, retires_per_day: int = 4
) -> Scenario:
    return Scenario(
        "catalog_churn",
        (
            CatalogChurn(
                start_day=start_day,
                adds_per_day=adds_per_day,
                retires_per_day=retires_per_day,
            ),
        ),
    )


def cold_start(start_day: int = 1, adds_per_day: int = 6) -> Scenario:
    """Adds-only churn: a stream of cold items with nothing retired."""
    return Scenario(
        "cold_start",
        (
            CatalogChurn(
                start_day=start_day,
                adds_per_day=adds_per_day,
                retires_per_day=0,
            ),
        ),
    )


def diurnal_wave(
    amplitude: float = 0.7,
    period_seconds: float = SECONDS_PER_DAY,
    phase: float = -math.pi / 2.0,
) -> Scenario:
    return Scenario(
        "diurnal_wave",
        (
            DiurnalWave(
                amplitude=amplitude,
                period_seconds=period_seconds,
                phase=phase,
            ),
        ),
    )


def preference_drift(
    day: int = 3, angle_degrees: float = 75.0, seed: int = 7
) -> Scenario:
    return Scenario(
        "preference_drift",
        (PreferenceDrift(day=day, angle_degrees=angle_degrees, seed=seed),),
    )


#: Factory per scenario type — the library the CI smoke job iterates.
SCENARIO_LIBRARY: dict[str, Any] = {
    "flash_crowd": flash_crowd,
    "catalog_churn": catalog_churn,
    "diurnal_wave": diurnal_wave,
    "preference_drift": preference_drift,
}


# ---------------------------------------------------------------------------
# ScenarioReport — one schema for quality + ops
# ---------------------------------------------------------------------------

#: Version stamped into every ScenarioReport document.
SCENARIO_REPORT_SCHEMA_VERSION = 1

_REPORT_TOP_KEYS = {
    "schema_version",
    "scenario",
    "events",
    "days",
    "arms",
    "ctr_ordering_ok",
    "stopped_day",
    "ops",
}
_REPORT_OPS_KEYS = {
    "offered",
    "served",
    "shed",
    "shed_rate",
    "accepted_p99_ms",
    "breaker_trips",
    "recovery_seconds",
    "peak_window_shed_rate",
}


@dataclass(frozen=True)
class ScenarioReport:
    """Quality and ops metrics of one scenario run, in one schema.

    ``arms`` maps arm name to ``{"overall_ctr", "impressions", "clicks",
    "daily_ctr"}`` (``daily_ctr`` entries are ``None`` on zero-impression
    days); ``ops`` carries the serving-plane numbers measured on the
    shared virtual clock.  :meth:`to_doc` produces the JSON document the
    benchmark harness validates and archives.
    """

    scenario: str
    events: tuple[str, ...]
    days: int
    arms: Mapping[str, Mapping[str, Any]]
    ctr_ordering_ok: bool
    ops: Mapping[str, float]
    stopped_day: int | None = None

    def to_doc(self) -> dict[str, Any]:
        doc = {
            "schema_version": SCENARIO_REPORT_SCHEMA_VERSION,
            "scenario": self.scenario,
            "events": list(self.events),
            "days": self.days,
            "arms": {
                name: {
                    "overall_ctr": stats["overall_ctr"],
                    "impressions": stats["impressions"],
                    "clicks": stats["clicks"],
                    "daily_ctr": list(stats["daily_ctr"]),
                }
                for name, stats in self.arms.items()
            },
            "ctr_ordering_ok": self.ctr_ordering_ok,
            "stopped_day": self.stopped_day,
            "ops": dict(self.ops),
        }
        errors = validate_scenario_report(doc)
        if errors:
            raise ValueError(
                f"refusing to emit invalid scenario report "
                f"{self.scenario!r}: " + "; ".join(errors)
            )
        return doc

    def flat_metrics(self) -> dict[str, float]:
        """Flatten into ``BENCH_*`` metric naming (finite numbers only)."""
        out: dict[str, float] = {}
        prefix = self.scenario
        for name, stats in self.arms.items():
            ctr = stats["overall_ctr"]
            if ctr is not None and math.isfinite(ctr):
                out[f"{prefix}_ctr_{name.lower()}"] = float(ctr)
        out[f"{prefix}_ordering_ok"] = 1.0 if self.ctr_ordering_ok else 0.0
        for key in ("shed_rate", "accepted_p99_ms", "recovery_seconds",
                    "breaker_trips", "peak_window_shed_rate"):
            out[f"{prefix}_{key}"] = float(self.ops[key])
        return out


def validate_scenario_report(doc: Any) -> list[str]:
    """Schema check for one ScenarioReport document (stdlib only)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    if doc.get("schema_version") != SCENARIO_REPORT_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCENARIO_REPORT_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if not isinstance(doc.get("scenario"), str) or not doc.get("scenario"):
        errors.append("scenario must be a non-empty string")
    events = doc.get("events")
    if not isinstance(events, list) or not all(
        isinstance(e, str) for e in events
    ):
        errors.append("events must be a list of strings")
    if not isinstance(doc.get("days"), int) or doc.get("days", 0) < 1:
        errors.append("days must be a positive integer")
    arms = doc.get("arms")
    if not isinstance(arms, dict) or not arms:
        errors.append("arms must be a non-empty object")
    else:
        for name, stats in arms.items():
            if not isinstance(stats, dict):
                errors.append(f"arms[{name!r}] must be an object")
                continue
            for key in ("overall_ctr", "impressions", "clicks", "daily_ctr"):
                if key not in stats:
                    errors.append(f"arms[{name!r}] missing {key!r}")
            daily = stats.get("daily_ctr")
            if not isinstance(daily, list):
                errors.append(f"arms[{name!r}]['daily_ctr'] must be a list")
    if not isinstance(doc.get("ctr_ordering_ok"), bool):
        errors.append("ctr_ordering_ok must be a boolean")
    stopped = doc.get("stopped_day")
    if stopped is not None and not isinstance(stopped, int):
        errors.append("stopped_day must be null or an integer")
    ops = doc.get("ops")
    if not isinstance(ops, dict):
        errors.append("ops must be an object")
    else:
        missing = _REPORT_OPS_KEYS - set(ops)
        if missing:
            errors.append(f"ops missing keys: {sorted(missing)}")
        for key, value in ops.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or not math.isfinite(value):
                errors.append(f"ops[{key!r}] must be a finite number")
    unknown = set(doc) - _REPORT_TOP_KEYS
    if unknown:
        errors.append(f"unknown top-level keys: {sorted(unknown)}")
    return errors


# ---------------------------------------------------------------------------
# End-to-end scenario runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioOpsConfig:
    """Serving-plane knobs of :func:`run_scenario`.

    ``base_qps`` is the off-event offered rate; ``capacity_qps`` sizes the
    admission controller's token bucket.  Defaults offer ~80% of capacity
    off-event so an event spike (flash crowd, diurnal peak) pushes the
    router past capacity and sheds become observable, and recovery after
    the event is measurable.  ``window_seconds`` is the shed-rate
    measurement granularity (also the resolution of recovery time).
    """

    base_qps: float = 40.0
    capacity_qps: float = 50.0
    burst: float = 20.0
    window_seconds: float = SECONDS_PER_DAY / 8.0
    requests_per_window: int = 256
    service_time: float = 0.004
    recovery_tolerance: float = 0.02

    def __post_init__(self) -> None:
        if self.base_qps <= 0 or self.capacity_qps <= 0:
            raise ConfigError("qps knobs must be positive")
        if self.window_seconds <= 0 or self.requests_per_window < 1:
            raise ConfigError("window knobs must be positive")


class _SimulatedBackend:
    """Wraps an arm so every request consumes virtual service time.

    The admission controller's token bucket refills on the same virtual
    clock the arrivals advance; charging a deterministic per-request cost
    makes accepted-latency percentiles meaningful in virtual time.
    """

    def __init__(self, inner, clock, service_time: float) -> None:
        self._inner = inner
        self._clock = clock
        self._service_time = service_time

    def recommend_ids(self, user_id, current_video=None, n=10, now=None):
        self._clock.advance(self._service_time)
        return self._inner.recommend_ids(
            user_id, current_video=current_video, n=n, now=now
        )


def default_arms(world, *, production_rmf: bool = True) -> dict[str, Any]:
    """The four arms of the paper's live test (§6.2) on ``world``.

    ``production_rmf`` selects the deployed configuration — the
    CombineModel trained per demographic group with demographic filtering
    — versus the plain :class:`~repro.core.RealtimeRecommender`.
    """
    from ..baselines import (
        AssociationRuleRecommender,
        HotRecommender,
        SimHashCFRecommender,
    )
    from ..clock import VirtualClock
    from ..core import COMBINE_MODEL, GroupedRecommender, RealtimeRecommender
    from ..core.variants import grid_searched_rates
    from ..config import ReproConfig

    eta0, alpha = grid_searched_rates(COMBINE_MODEL)
    rmf_config = ReproConfig().with_overrides(
        online={"eta0": eta0, "alpha": alpha},
        mf={"f": 16, "init_scale": 0.03},
        weights={"click": 0.5},
        recommend={"max_candidates": 20, "demographic_slots": 0.05},
    )
    if production_rmf:
        rmf = GroupedRecommender(
            world.videos,
            world.users,
            config=rmf_config,
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
            enable_demographic=True,
        )
    else:
        rmf = RealtimeRecommender(
            world.videos,
            users=world.users,
            config=rmf_config,
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
        )
    return {
        "Hot": HotRecommender(clock=VirtualClock(0.0), exclude_watched=False),
        "AR": AssociationRuleRecommender(
            min_support=2, min_confidence=0.02, exclude_watched=False
        ),
        "SimHash": SimHashCFRecommender(
            min_similarity=0.55, exclude_watched=False
        ),
        "rMF": rmf,
    }


def _ctr_ordering_ok(overall: Mapping[str, float]) -> bool:
    """The paper's live-test ordering: Hot < AR ≈ SimHash < rMF.

    Checked as: rMF strictly beats Hot, rMF is at least as good as AR and
    SimHash (within a 2% relative tolerance, mirroring the "≈"), and Hot
    is the weakest arm.
    """
    hot = overall.get("Hot")
    rmf = overall.get("rMF")
    if hot is None or rmf is None:
        return False
    mids = [v for k, v in overall.items() if k not in ("Hot", "rMF")]
    if not rmf > hot:
        return False
    if any(not rmf >= mid * 0.98 for mid in mids):
        return False
    return all(hot <= mid for mid in mids)


def run_scenario(
    scenario: Scenario,
    *,
    days: int = 8,
    n_users: int = 120,
    n_videos: int = 160,
    seed: int = 2016,
    experiment_seed: int = 17,
    arms: Mapping[str, Any] | None = None,
    world_overrides: Mapping[str, Any] | None = None,
    ops: ScenarioOpsConfig | None = None,
    assignment: str = "interleave",
    stopping=None,
    obs=None,
) -> ScenarioReport:
    """Run one scenario end-to-end and return its :class:`ScenarioReport`.

    Quality plane: a fresh calibrated world with ``scenario`` drives an
    :class:`~repro.eval.experiment.Experiment` over the standard four arms
    (CTR per arm per day, optional sequential stopping).  Ops plane: the
    trained rMF arm is put behind a :class:`~repro.serving.RequestRouter`
    with admission control and a circuit breaker on a shared
    :class:`~repro.clock.VirtualClock`, and offered open-loop load whose
    QPS follows the scenario's profile, window by window — shed rate,
    accepted p99, breaker trips and post-event recovery time come out of
    that loop.
    """
    from ..clock import VirtualClock
    from ..data.synthetic import SyntheticWorld, paper_world_config
    from ..reliability.overload import AdmissionController, CircuitBreaker
    from ..serving.arrivals import arrival_times, offer
    from ..serving.router import RecRequest, RequestRouter
    from .experiment import Experiment

    ops_cfg = ops or ScenarioOpsConfig()
    overrides = dict(world_overrides or {})
    world = SyntheticWorld(
        paper_world_config(
            n_users=n_users, n_videos=n_videos, days=days, seed=seed,
            **overrides,
        ),
        scenario=scenario,
    )
    if arms is None:
        arms = default_arms(world)
    experiment = Experiment(
        world,
        arms,
        days=days,
        seed=experiment_seed,
        assignment=assignment,
        stopping=stopping,
    )
    result = experiment.run()
    overall = result.overall_ctr()

    # ---- ops plane: offered load over the scenario's QPS profile --------
    clock = VirtualClock(0.0)
    admission = AdmissionController(
        rate=ops_cfg.capacity_qps,
        burst=ops_cfg.burst,
        clock=clock,
    )
    breaker = CircuitBreaker(clock=clock)
    primary = arms.get("rMF") or next(iter(arms.values()))
    fallback = arms.get("Hot")
    router = RequestRouter(
        _SimulatedBackend(primary, clock, ops_cfg.service_time),
        fallback=fallback,
        admission=admission,
        breaker=breaker,
        clock=clock,
        obs=obs,
    )
    user_ids = world.user_ids()
    video_ids = world.video_ids()
    rng = np.random.default_rng(seed * 31 + 7)

    horizon = days * SECONDS_PER_DAY
    n_windows = max(1, int(round(horizon / ops_cfg.window_seconds)))
    window_stats: list[dict[str, float]] = []
    latencies: list[float] = []
    total_offered = total_shed = total_served = 0
    for w in range(n_windows):
        w_start = w * ops_cfg.window_seconds
        w_mid = w_start + ops_cfg.window_seconds / 2.0
        qps = ops_cfg.base_qps * scenario.offered_multiplier(w_mid)
        if clock.now() < w_start:
            clock.advance(w_start - clock.now())
        times = arrival_times(
            clock.now(), ops_cfg.requests_per_window, qps, process="uniform"
        )
        w_shed = w_served = 0
        for now in offer(clock, times):
            user = user_ids[rng.integers(0, len(user_ids))]
            if rng.random() < 0.5:
                video = video_ids[rng.integers(0, len(video_ids))]
                request = RecRequest(user, current_video=video, timestamp=now)
            else:
                request = RecRequest(user, timestamp=now)
            response = router.handle(request)
            if response.shed:
                w_shed += 1
            else:
                w_served += 1
                latencies.append(response.latency_seconds)
        offered = ops_cfg.requests_per_window
        total_offered += offered
        total_shed += w_shed
        total_served += w_served
        window_stats.append(
            {
                "start": w_start,
                "qps": qps,
                "shed_rate": w_shed / offered,
            }
        )

    # Recovery time: after the event window closes, how long until the
    # per-window shed rate returns to the pre-event baseline (+tolerance)?
    window = scenario.event_window(days)
    recovery_seconds = 0.0
    peak_shed = 0.0
    if window is not None:
        event_start, event_end = window
        pre = [
            s["shed_rate"] for s in window_stats if s["start"] < event_start
        ]
        baseline_shed = float(np.mean(pre)) if pre else 0.0
        during = [
            s["shed_rate"]
            for s in window_stats
            if event_start <= s["start"] < event_end
        ]
        peak_shed = max(during, default=0.0)
        threshold = baseline_shed + ops_cfg.recovery_tolerance
        recovered_at = None
        for s in window_stats:
            if s["start"] < event_end:
                continue
            if s["shed_rate"] <= threshold:
                recovered_at = s["start"] + ops_cfg.window_seconds
                break
        if recovered_at is not None:
            recovery_seconds = max(0.0, recovered_at - event_end)
        elif any(s["start"] >= event_end for s in window_stats):
            # Never recovered within the horizon: report the full tail.
            recovery_seconds = horizon - event_end

    lat_ms = np.asarray(latencies) * 1000.0
    ops_metrics = {
        "offered": float(total_offered),
        "served": float(total_served),
        "shed": float(total_shed),
        "shed_rate": total_shed / total_offered if total_offered else 0.0,
        "accepted_p99_ms": float(np.percentile(lat_ms, 99)) if lat_ms.size else 0.0,
        "breaker_trips": float(breaker.opened_count),
        "recovery_seconds": float(recovery_seconds),
        "peak_window_shed_rate": float(peak_shed),
    }

    arms_doc = {
        name: {
            "overall_ctr": stats.overall_ctr
            if stats.total_impressions
            else None,
            "impressions": stats.total_impressions,
            "clicks": stats.total_clicks,
            "daily_ctr": stats.daily_ctr(),
        }
        for name, stats in result.arms.items()
    }
    return ScenarioReport(
        scenario=scenario.name,
        events=tuple(type(e).__name__ for e in scenario.events),
        days=result.days,
        arms=arms_doc,
        ctr_ordering_ok=_ctr_ordering_ok(overall),
        ops=ops_metrics,
        stopped_day=result.stopped_day,
    )
