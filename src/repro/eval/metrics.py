"""Evaluation metrics (paper §6.1): recall@N (Eq. 13) and average
percentile rank (Eq. 14), plus MAE/precision for completeness.

The paper measures top-N quality, not rating accuracy: true ratings do not
exist for implicit feedback, so MAE is inappropriate (§6.1) — it is still
provided here because the batch-MF ablations can use it on synthetic
ground truth.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def recall_at_n(
    recommended: Mapping[str, Sequence[str]],
    liked: Mapping[str, set[str]],
    n: int,
) -> float:
    """Eq. 13: mean over test users of ``|liked ∩ top-N| / N``.

    ``recommended`` maps each test user to their ordered recommendation
    list; ``liked`` maps them to the videos they engaged with in the test
    window.  Users absent from ``liked`` (no positive test actions) are
    excluded, per the equation's ``U_test``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    test_users = [u for u, videos in liked.items() if videos]
    if not test_users:
        return 0.0
    total = 0.0
    for user_id in test_users:
        top_n = list(recommended.get(user_id, ()))[:n]
        hits = sum(1 for video_id in top_n if video_id in liked[user_id])
        total += hits / n
    return total / len(test_users)


def retrieval_recall(
    approx: Sequence[str], exact: Sequence[str], n: int
) -> float:
    """Recall@n of an approximate retrieval against its exact oracle.

    The index-vs-brute-force quality gate: treats the comparison as Eq. 13
    (:func:`recall_at_n`) with a single pseudo-user whose "liked" set is
    the oracle's top-``n``.  Assumes the oracle returned at least ``n``
    results (short oracles deflate the score, by Eq. 13's ``/N``
    convention).
    """
    return recall_at_n(
        {"_query": list(approx)}, {"_query": set(list(exact)[:n])}, n
    )


def recall_curve(
    recommended: Mapping[str, Sequence[str]],
    liked: Mapping[str, set[str]],
    max_n: int = 10,
) -> dict[int, float]:
    """recall@N for every N in ``[1, max_n]`` — one Figure 4 series."""
    return {n: recall_at_n(recommended, liked, n) for n in range(1, max_n + 1)}


def percentile_rank(position: int, length: int) -> float:
    """Percentile ranking of a list position.

    Defined as ``position / length``: the first item ranks 0 %, the last
    ``(L-1)/L``, and *absence from the list* ranks 100 % — strictly worse
    than any listed position, matching Eq. 14's convention that
    ``rank_ui = 1`` for videos not recommended.
    """
    if position < 0 or position >= length:
        raise ValueError(f"position {position} out of range for length {length}")
    return position / length


def average_rank(
    recommended: Mapping[str, Sequence[str]],
    test_ranking: Mapping[str, Sequence[str]],
) -> float:
    """Eq. 14: recommendation-weighted average test percentile rank.

    The sum runs over the ``(u, i)`` pairs of the *test* data:
    ``test_ranking[u]`` is the user's "ordered interested video list"
    (ranked by action confidence, most interesting first) and
    ``rank^t_ui`` is video ``i``'s percentile position in it.  Each pair is
    weighted by ``1 - rank_ui``, where ``rank_ui`` is the video's
    percentile position in the recommendation list — "the relative rating
    predicted by the model"; test videos the model did not recommend have
    ``rank_ui = 1`` and drop out of both sums::

        rank = sum(rank^t_ui * (1 - rank_ui)) / sum(1 - rank_ui)

    Lower is better: it means the videos the model pushed hardest sit near
    the top of what the user actually watched.  When no test video was
    recommended at all the metric is undefined; we return the worst value,
    1.0.
    """
    numerator = 0.0
    denominator = 0.0
    for user_id, test_list in test_ranking.items():
        test_videos = list(test_list)
        if not test_videos:
            continue
        rec_list = list(recommended.get(user_id, ()))
        rec_position = {vid: idx for idx, vid in enumerate(rec_list)}
        for position, video_id in enumerate(test_videos):
            if video_id not in rec_position:
                continue  # rank_ui = 1 => zero weight
            weight = 1.0 - percentile_rank(
                rec_position[video_id], len(rec_list)
            )
            if weight <= 0.0:
                continue
            true_rank = percentile_rank(position, len(test_videos))
            numerator += true_rank * weight
            denominator += weight
    return numerator / denominator if denominator else 1.0


def precision_at_n(
    recommended: Mapping[str, Sequence[str]],
    liked: Mapping[str, set[str]],
    n: int,
) -> float:
    """Fraction of recommended items (up to N) the user actually liked.

    Unlike Eq. 13 this divides by the *actual* list length, so short lists
    are not penalised — a secondary diagnostic, not a paper metric.
    """
    test_users = [u for u, videos in liked.items() if videos]
    if not test_users:
        return 0.0
    total = 0.0
    counted = 0
    for user_id in test_users:
        top_n = list(recommended.get(user_id, ()))[:n]
        if not top_n:
            continue
        hits = sum(1 for video_id in top_n if video_id in liked[user_id])
        total += hits / len(top_n)
        counted += 1
    return total / counted if counted else 0.0


def mean_absolute_error(
    predictions: Sequence[float], truths: Sequence[float]
) -> float:
    """Plain MAE between two aligned sequences."""
    if len(predictions) != len(truths):
        raise ValueError(
            f"length mismatch: {len(predictions)} vs {len(truths)}"
        )
    if not predictions:
        return 0.0
    return sum(abs(p - t) for p, t in zip(predictions, truths)) / len(predictions)
