"""Evaluation: metrics (Eqs. 13-14), offline protocol (§6.1), grid search
(Table 2), the experimentation platform (§6.2), and scriptable
adversarial scenarios (ROADMAP item 1)."""

from .abtest import ABTestHarness, ABTestResult, ArmStats
from .experiment import (
    Experiment,
    ExperimentResult,
    MSPRTStopping,
    mixture_sprt_p_value,
)
from .gridsearch import GridPoint, GridSearchResult, grid_search
from .scenarios import (
    SCENARIO_LIBRARY,
    CatalogChurn,
    DiurnalWave,
    FlashCrowd,
    PreferenceDrift,
    Scenario,
    ScenarioOpsConfig,
    ScenarioReport,
    run_scenario,
    validate_scenario_report,
)
from .multiseed import (
    SeedSummary,
    bootstrap_ci,
    per_user_recall,
    run_across_seeds,
    summarize,
)
from .metrics import (
    average_rank,
    mean_absolute_error,
    percentile_rank,
    precision_at_n,
    recall_at_n,
    retrieval_recall,
    recall_curve,
)
from .protocol import (
    EvalResult,
    evaluate,
    interest_lists_by_user,
    liked_videos_by_user,
)

__all__ = [
    "recall_at_n",
    "retrieval_recall",
    "recall_curve",
    "average_rank",
    "percentile_rank",
    "precision_at_n",
    "mean_absolute_error",
    "EvalResult",
    "evaluate",
    "interest_lists_by_user",
    "liked_videos_by_user",
    "grid_search",
    "GridPoint",
    "GridSearchResult",
    "ABTestHarness",
    "ABTestResult",
    "ArmStats",
    "Experiment",
    "ExperimentResult",
    "MSPRTStopping",
    "mixture_sprt_p_value",
    "Scenario",
    "FlashCrowd",
    "CatalogChurn",
    "DiurnalWave",
    "PreferenceDrift",
    "SCENARIO_LIBRARY",
    "ScenarioOpsConfig",
    "ScenarioReport",
    "run_scenario",
    "validate_scenario_report",
    "run_across_seeds",
    "summarize",
    "SeedSummary",
    "bootstrap_ci",
    "per_user_recall",
]
