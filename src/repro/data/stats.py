"""Dataset statistics — reproduces the measures of Tables 3 and 4.

The paper summarises its cleaned dataset with user/video/action counts
(Table 3) and, for demographic training, per-group counts plus the sparsity
measure ``#actions / (#users * #videos)`` (Table 4, §6.1.1).  We report two
densities: the paper's action-based one (which can exceed 100 % when pairs
repeat — common in our re-watch-heavy world) and the unique-pair one, which
is the classical matrix fill rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .schema import GLOBAL_GROUP, User, UserAction


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Counts and sparsity of one (sub)dataset, as in Tables 3/4."""

    n_users: int
    n_videos: int
    n_actions: int
    n_test_actions: int = 0
    n_pairs: int = 0

    @property
    def sparsity(self) -> float:
        """The paper's density measure ``#actions / (#users x #videos)``.

        (The paper calls it "sparsity" although larger is denser; we keep
        the paper's name and semantics.)
        """
        cells = self.n_users * self.n_videos
        return self.n_actions / cells if cells else 0.0

    @property
    def sparsity_percent(self) -> float:
        return 100.0 * self.sparsity

    @property
    def pair_sparsity(self) -> float:
        """Matrix fill rate: distinct (user, video) pairs / all cells."""
        cells = self.n_users * self.n_videos
        return self.n_pairs / cells if cells else 0.0

    @property
    def pair_sparsity_percent(self) -> float:
        return 100.0 * self.pair_sparsity

    def as_row(self) -> dict[str, float]:
        """Render as a flat dict — one row of Table 3/4."""
        return {
            "users": self.n_users,
            "videos": self.n_videos,
            "actions": self.n_actions,
            "test_actions": self.n_test_actions,
            "sparsity_percent": round(self.sparsity_percent, 4),
            "pair_sparsity_percent": round(self.pair_sparsity_percent, 4),
        }


def dataset_stats(
    train: Sequence[UserAction], test: Sequence[UserAction] = ()
) -> DatasetStats:
    """Compute Table 3-style statistics for a train(+test) stream."""
    users = {a.user_id for a in train}
    videos = {a.video_id for a in train}
    pairs = {(a.user_id, a.video_id) for a in train}
    return DatasetStats(
        n_users=len(users),
        n_videos=len(videos),
        n_actions=len(train),
        n_test_actions=len(test),
        n_pairs=len(pairs),
    )


def group_stats(
    actions: Sequence[UserAction],
    users: Mapping[str, User],
    top_k: int | None = None,
    include_global: bool = False,
) -> dict[str, DatasetStats]:
    """Per-demographic-group statistics (Table 4).

    Actions whose user is unknown or unregistered are attributed to the
    global group, which is excluded by default — it is a fallback bucket,
    not a demographic cluster, and the paper selects "the three largest
    demographic groups".  When ``top_k`` is given, only the ``top_k``
    groups by action count are returned.
    """
    by_group: dict[str, list[UserAction]] = {}
    for action in actions:
        user = users.get(action.user_id)
        group = user.demographic_group if user else GLOBAL_GROUP
        by_group.setdefault(group, []).append(action)

    if not include_global:
        by_group.pop(GLOBAL_GROUP, None)

    stats = {group: dataset_stats(acts) for group, acts in by_group.items()}
    if top_k is not None:
        largest = sorted(
            stats.items(), key=lambda kv: kv[1].n_actions, reverse=True
        )[:top_k]
        stats = dict(largest)
    return stats
