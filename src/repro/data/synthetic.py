"""Synthetic implicit-feedback world with ground-truth preferences.

Stands in for the proprietary Tencent Video logs (see DESIGN.md).  The
generator builds a world whose statistical structure matches what the
paper's methods exploit:

* **low-rank preferences** — users and videos have ground-truth latent
  factors; the probability of clicking/watching grows with their inner
  product, so an MF model can in principle recover them;
* **video types** — each video belongs to one fine-grained type and video
  factors cluster by type, which makes the type-similarity factor of
  Eq. 10 informative;
* **demographic groups** — user factors cluster by (gender, age band)
  group, so demographic training (§5.2.2) sees denser, more coherent
  sub-matrices;
* **the action funnel** — Impress → Click → Play → PlayTime(+ Like/Comment)
  with the conditional probabilities increasing in ground-truth affinity,
  so action *confidence levels* (Table 1) genuinely carry signal;
* **temporal drift** — a rotating set of videos trends on each day, which
  the time-damping factor of Eq. 11 is designed to track.

Because the ground truth is known, the A/B testing harness can simulate
clicks on any recommendation list, and sanity tests can check that learned
rankings correlate with true affinities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..clock import SECONDS_PER_DAY
from ..errors import ConfigError, DataError
from .schema import ActionType, User, UserAction, Video

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (eval -> data)
    from ..eval.scenarios import Scenario


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Knobs of the synthetic world.

    Defaults are sized for unit tests (sub-second generation); benchmarks
    scale ``n_users``/``n_videos`` up.
    """

    n_users: int = 300
    n_videos: int = 240
    n_types: int = 8
    latent_dim: int = 8
    days: int = 7
    seed: int = 2016

    genders: Sequence[str] = ("m", "f")
    age_bands: Sequence[str] = ("teen", "young", "adult", "senior")
    unregistered_fraction: float = 0.25

    #: How strongly user factors cluster around their demographic group
    #: mean, and video factors around their type mean (0 = pure noise,
    #: 1 = identical within cluster).
    group_cohesion: float = 0.6
    type_cohesion: float = 0.6
    #: Softmax temperature of per-user type preferences: higher values
    #: concentrate a user's taste-driven impressions in fewer types.
    type_temperature: float = 3.0

    mean_sessions_per_day: float = 2.0
    impressions_per_session: int = 8
    #: Mixture weight of popularity-driven vs taste-driven impressions.
    popularity_mix: float = 0.45
    #: Zipf exponent of the video popularity distribution.
    popularity_skew: float = 1.1
    #: Fraction of the catalogue that trends (gets a popularity boost) on
    #: any given day, and the multiplicative boost applied.
    trending_fraction: float = 0.05
    trending_boost: float = 8.0

    #: Click model: P(click | impress) = sigmoid(bias + scale * affinity).
    click_bias: float = -1.6
    click_scale: float = 2.8
    play_given_click: float = 0.85

    #: Series/favourite re-watching, the dominant engagement pattern on a
    #: video site: each user has a personal pool of favourite videos
    #: (episodes, shows) sampled from their highest-affinity titles, and
    #: ``rewatch_mix`` of their impressions come from that pool.
    favorites_per_user: int = 15
    rewatch_mix: float = 0.35

    #: Accidental engagement noise (§3.2's "quite noisy" implicit data):
    #: with this probability an impression is clicked *regardless of
    #: affinity* (misleading thumbnail, misclick); such clicks rarely turn
    #: into real watching.
    noise_click_rate: float = 0.08
    #: Beta concentration of the view-rate draw.  Lower values make the
    #: view rate a noisier signal of true affinity — "the fact that a user
    #: watched a video in its entirety is not enough to conclude that he
    #: actually liked it".
    vrate_concentration: float = 2.5
    #: Probability that a *genuine* watch is cut short regardless of
    #: affinity — "a user may watch a favorite video for just a short
    #: period because of time limitation" (§3.2).  The paper's second
    #: noise source: low view rate does not mean low preference.
    time_limited_rate: float = 0.3

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_videos < 1:
            raise ConfigError("world needs at least one user and one video")
        if self.n_types < 1 or self.n_types > self.n_videos:
            raise ConfigError("need 1 <= n_types <= n_videos")
        if not 0 <= self.unregistered_fraction < 1:
            raise ConfigError("unregistered_fraction must be in [0, 1)")
        if not 0 <= self.popularity_mix <= 1:
            raise ConfigError("popularity_mix must be in [0, 1]")
        if not (0 <= self.group_cohesion <= 1 and 0 <= self.type_cohesion <= 1):
            raise ConfigError("cohesion parameters must be in [0, 1]")
        if self.days < 1:
            raise ConfigError("world must span at least one day")


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))


def paper_world_config(
    n_users: int = 300,
    n_videos: int = 400,
    days: int = 7,
    seed: int = 2016,
    **overrides: object,
) -> WorldConfig:
    """The calibrated world used by the paper-reproduction benchmarks.

    Parameters were tuned (see EXPERIMENTS.md) so the synthetic world
    exhibits the regimes the paper's experiments rely on: taste-driven
    exposure with a popularity floor, series re-watching, accidental-click
    noise, deceptive long watches, and time-limited short watches of
    genuine favourites.
    """
    base = dict(
        n_users=n_users,
        n_videos=n_videos,
        n_types=10,
        days=days,
        seed=seed,
        popularity_mix=0.15,
        popularity_skew=0.4,
        trending_boost=2.5,
        click_bias=-2.6,
        click_scale=5.0,
        group_cohesion=0.7,
        type_cohesion=0.6,
        play_given_click=0.75,
        mean_sessions_per_day=3.0,
        noise_click_rate=0.2,
        vrate_concentration=2.0,
        time_limited_rate=0.3,
    )
    base.update(overrides)
    return WorldConfig(**base)  # type: ignore[arg-type]


@dataclass(slots=True)
class _DayState:
    """The world dynamics in force on one simulated day.

    For a scenario-free world every field aliases the base structures, so
    the generator's draw sequence — and therefore its output — is
    byte-identical to the pre-scenario implementation (pinned by the
    golden digest test).  Scenario events swap in per-day variants:
    boosted/renormalised popularity, restricted catalogues, rotated
    preference factors, modulated arrival rates, wave-shaped session
    start times.
    """

    pop: np.ndarray
    videos_of_type: list[np.ndarray]
    type_pop: list[np.ndarray]
    favorites: np.ndarray
    active: np.ndarray | None
    user_factors: np.ndarray
    type_probs: np.ndarray
    rate_multiplier: float
    start_sampler: Callable[[float], float] | None


class SyntheticWorld:
    """A generated catalogue + population with queryable ground truth.

    ``scenario`` (a :class:`~repro.eval.scenarios.Scenario`, duck-typed)
    drives the world's dynamics through a timeline of typed events; with
    no scenario — or an event-free one — the generator is byte-identical
    to the classic organic world.
    """

    def __init__(
        self,
        config: WorldConfig | None = None,
        scenario: "Scenario | None" = None,
    ) -> None:
        self.config = config or WorldConfig()
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        d = cfg.latent_dim

        # Demographic groups: cross product of gender x age band.
        self.group_labels = [
            f"{g}|{a}" for g in cfg.genders for a in cfg.age_bands
        ]
        group_means = self._rng.normal(size=(len(self.group_labels), d))
        group_means /= np.linalg.norm(group_means, axis=1, keepdims=True)

        type_labels = [f"type_{k}" for k in range(cfg.n_types)]
        self.type_labels = type_labels
        type_means = self._rng.normal(size=(cfg.n_types, d))
        type_means /= np.linalg.norm(type_means, axis=1, keepdims=True)
        self._type_means = type_means

        # ---- users -------------------------------------------------------
        self.users: dict[str, User] = {}
        self._user_index: dict[str, int] = {}
        user_groups = self._rng.integers(0, len(self.group_labels), cfg.n_users)
        registered = self._rng.random(cfg.n_users) >= cfg.unregistered_fraction
        gc = cfg.group_cohesion
        noise = self._rng.normal(size=(cfg.n_users, d))
        noise /= np.linalg.norm(noise, axis=1, keepdims=True)
        self.user_factors = (
            math.sqrt(gc) * group_means[user_groups] + math.sqrt(1 - gc) * noise
        )
        #: Per-user activity multiplier (heavy-tailed, mean ~1).
        self._activity = self._rng.lognormal(mean=-0.125, sigma=0.5, size=cfg.n_users)
        for i in range(cfg.n_users):
            gender, age = self.group_labels[user_groups[i]].split("|")
            user = User(
                user_id=f"u{i}",
                registered=bool(registered[i]),
                gender=gender if registered[i] else None,
                age_band=age if registered[i] else None,
            )
            self.users[user.user_id] = user
            self._user_index[user.user_id] = i
        self._true_groups = user_groups

        # ---- videos ------------------------------------------------------
        self.videos: dict[str, Video] = {}
        self._video_index: dict[str, int] = {}
        video_types = self._rng.integers(0, cfg.n_types, cfg.n_videos)
        tc = cfg.type_cohesion
        vnoise = self._rng.normal(size=(cfg.n_videos, d))
        vnoise /= np.linalg.norm(vnoise, axis=1, keepdims=True)
        self.video_factors = (
            math.sqrt(tc) * type_means[video_types] + math.sqrt(1 - tc) * vnoise
        )
        durations = self._rng.lognormal(mean=6.8, sigma=0.6, size=cfg.n_videos)
        for j in range(cfg.n_videos):
            video = Video(
                video_id=f"v{j}",
                kind=type_labels[video_types[j]],
                duration=float(max(60.0, durations[j])),
            )
            self.videos[video.video_id] = video
            self._video_index[video.video_id] = j
        self._video_types = video_types

        # Zipf popularity over a random permutation of the catalogue.
        ranks = self._rng.permutation(cfg.n_videos) + 1
        self._base_popularity = 1.0 / ranks.astype(float) ** cfg.popularity_skew
        self._base_popularity /= self._base_popularity.sum()

        # Per-user type preference distribution (softmax of factor affinity).
        logits = self.user_factors @ type_means.T * cfg.type_temperature
        logits -= logits.max(axis=1, keepdims=True)
        expl = np.exp(logits)
        self._user_type_probs = expl / expl.sum(axis=1, keepdims=True)

        # Per-user favourite pools: sampled from the user's top-affinity
        # videos, weighted toward the very top (series the user follows).
        n_fav = min(cfg.favorites_per_user, cfg.n_videos)
        self._favorites = np.empty((cfg.n_users, n_fav), dtype=int)
        scores_all = self.user_factors @ self.video_factors.T
        pool_size = min(cfg.n_videos, max(n_fav, 3 * n_fav))
        for i in range(cfg.n_users):
            top = np.argsort(-scores_all[i])[:pool_size]
            weights = 1.0 / (np.arange(pool_size) + 1.0)
            weights /= weights.sum()
            self._favorites[i] = self._rng.choice(
                top, size=n_fav, replace=False, p=weights
            )

        # Videos grouped by type, with within-type popularity.
        self._videos_of_type: list[np.ndarray] = []
        self._type_pop: list[np.ndarray] = []
        for k in range(cfg.n_types):
            members = np.flatnonzero(video_types == k)
            self._videos_of_type.append(members)
            if members.size:
                pop = self._base_popularity[members]
                self._type_pop.append(pop / pop.sum())
            else:
                self._type_pop.append(np.empty(0))

        # ---- scenario dynamics ------------------------------------------
        # Everything above is the base world, built with exactly the same
        # RNG consumption as before scenarios existed.  Scenario-injected
        # structure uses dedicated generators so the organic stream of the
        # default world stays byte-identical.
        self.scenario = scenario if scenario is not None and getattr(
            scenario, "events", None
        ) else None
        self._n_base_videos = cfg.n_videos
        #: Unnormalised per-video weight including scenario extras.
        self._raw_popularity = self._base_popularity
        #: First day each video may be impressed (0 for the base catalogue).
        self._available_from = np.zeros(cfg.n_videos, dtype=int)
        #: Base videos in retirement order (weakest base popularity first).
        self._retire_order = np.argsort(
            self._base_popularity, kind="stable"
        )
        self._day_states: dict[int, _DayState] = {}
        self._drift_factors: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        if self.scenario is not None:
            self._apply_scenario(self.scenario)
        self._index_to_id = list(self.videos)

    def _apply_scenario(self, scenario: "Scenario") -> None:
        """Inject scenario extras (new videos) into the catalogue."""
        cfg = self.config
        specs = scenario.extra_video_specs(cfg.days)
        if not specs:
            return
        srng = np.random.default_rng(cfg.seed * 7919 + 101)
        d = cfg.latent_dim
        tc = cfg.type_cohesion
        extra_factors = []
        extra_types = []
        extra_available = []
        # Extras enter at the base catalogue's median popularity: visible
        # once active, but not trivially dominant without an event boost.
        extra_weight = float(np.quantile(self._base_popularity, 0.5))
        for spec in specs:
            if spec.video_id in self.videos:
                raise ConfigError(
                    f"scenario video id {spec.video_id!r} collides with the "
                    "base catalogue"
                )
            k = spec.type_index % cfg.n_types
            noise = srng.normal(size=d)
            noise /= np.linalg.norm(noise)
            vec = math.sqrt(tc) * self._type_means[k] + math.sqrt(1 - tc) * noise
            duration = float(max(60.0, srng.lognormal(mean=6.8, sigma=0.6)))
            video = Video(
                video_id=spec.video_id,
                kind=self.type_labels[k],
                duration=duration,
                publish_time=spec.available_from_day * SECONDS_PER_DAY,
            )
            self._video_index[spec.video_id] = len(self._video_index)
            self.videos[spec.video_id] = video
            extra_factors.append(vec)
            extra_types.append(k)
            extra_available.append(spec.available_from_day)
        self.video_factors = np.vstack([self.video_factors, extra_factors])
        self._video_types = np.concatenate(
            [self._video_types, np.asarray(extra_types, dtype=int)]
        )
        self._raw_popularity = np.concatenate(
            [
                self._base_popularity,
                np.full(len(specs), extra_weight),
            ]
        )
        self._available_from = np.concatenate(
            [
                self._available_from,
                np.asarray(extra_available, dtype=int),
            ]
        )

    # ------------------------------------------------------------------
    # Ground-truth queries
    # ------------------------------------------------------------------

    def _effective_user_factors(self, now: float | None) -> np.ndarray:
        """User factors at ``now`` — rotated when a drift event is active."""
        if self.scenario is None or now is None:
            return self.user_factors
        day = int(now // SECONDS_PER_DAY)
        cached = self._drift_factors.get(day)
        if cached is not None:
            return cached[0]
        rotation = self.scenario.drift_rotation(day, self.config.latent_dim)
        if rotation is None:
            factors = self.user_factors
            type_probs = self._user_type_probs
        else:
            factors = self.user_factors @ rotation.T
            type_probs = self._type_probs_for(factors)
        self._drift_factors[day] = (factors, type_probs)
        return factors

    def _type_probs_for(self, user_factors: np.ndarray) -> np.ndarray:
        """Per-user type preference softmax for a factor matrix."""
        logits = (
            user_factors @ self._type_means.T * self.config.type_temperature
        )
        logits -= logits.max(axis=1, keepdims=True)
        expl = np.exp(logits)
        return expl / expl.sum(axis=1, keepdims=True)

    def affinity(
        self, user_id: str, video_id: str, now: float | None = None
    ) -> float:
        """True latent affinity (inner product of ground-truth factors).

        ``now`` matters only under a preference-drift scenario, where the
        ground truth itself moves mid-stream.
        """
        u = self._user_index[user_id]
        v = self._video_index[video_id]
        factors = self._effective_user_factors(now)
        return float(factors[u] @ self.video_factors[v])

    def click_probability(
        self, user_id: str, video_id: str, now: float | None = None
    ) -> float:
        """P(click | impression) under the generative click model."""
        cfg = self.config
        return _sigmoid(
            cfg.click_bias
            + cfg.click_scale * self.affinity(user_id, video_id, now=now)
        )

    def best_videos(
        self, user_id: str, k: int = 10, now: float | None = None
    ) -> list[str]:
        """Ground-truth top-k videos for a user (for sanity checks)."""
        u = self._user_index[user_id]
        factors = self._effective_user_factors(now)
        scores = self.video_factors @ factors[u]
        order = np.argsort(-scores)[:k]
        return [self._index_to_id[j] for j in order]

    def group_of(self, user_id: str) -> str:
        return self.users[user_id].demographic_group

    # ------------------------------------------------------------------
    # Action stream generation
    # ------------------------------------------------------------------

    def _daily_popularity(self, day: int) -> np.ndarray:
        """Popularity for ``day`` with a rotating trending boost."""
        cfg = self.config
        n_trending = max(1, int(cfg.trending_fraction * cfg.n_videos))
        day_rng = np.random.default_rng(cfg.seed * 1_000_003 + day)
        trending = day_rng.choice(cfg.n_videos, size=n_trending, replace=False)
        pop = self._base_popularity.copy()
        pop[trending] *= cfg.trending_boost
        return pop / pop.sum()

    def _default_day_state(self, day: int) -> _DayState:
        """The classic organic dynamics — every field aliases base state."""
        return _DayState(
            pop=self._daily_popularity(day),
            videos_of_type=self._videos_of_type,
            type_pop=self._type_pop,
            favorites=self._favorites,
            active=None,
            user_factors=self.user_factors,
            type_probs=self._user_type_probs,
            rate_multiplier=1.0,
            start_sampler=None,
        )

    def _scenario_day_state(self, day: int) -> _DayState:
        """Dynamics for ``day`` with every scenario event applied."""
        cfg = self.config
        scenario = self.scenario
        assert scenario is not None
        n_total = self._raw_popularity.size

        # Popularity: rotating trending boost over the base catalogue (as
        # in the organic world), scenario multipliers on top, inactive
        # videos zeroed, renormalised over what remains.
        n_trending = max(1, int(cfg.trending_fraction * cfg.n_videos))
        day_rng = np.random.default_rng(cfg.seed * 1_000_003 + day)
        trending = day_rng.choice(cfg.n_videos, size=n_trending, replace=False)
        pop = self._raw_popularity.copy()
        pop[trending] *= cfg.trending_boost
        for video_id, mult in scenario.popularity_multipliers(day).items():
            idx = self._video_index.get(video_id)
            if idx is None:
                raise ConfigError(
                    f"scenario boosts unknown video {video_id!r}"
                )
            pop[idx] *= mult

        # Catalogue membership: not-yet-published extras and retired base
        # videos are inactive — never impressed, never organically engaged.
        active = self._available_from <= day
        retired = scenario.retire_count_through(day)
        if retired > 0:
            active = active.copy()
            active[self._retire_order[: min(retired, cfg.n_videos)]] = False
        if not active.any():
            raise DataError(
                f"scenario {scenario.name!r} retired the whole catalogue "
                f"by day {day}"
            )
        pop[~active] = 0.0
        total = pop.sum()
        if total <= 0:
            raise DataError(
                f"scenario {scenario.name!r} left no impressable videos "
                f"on day {day}"
            )
        pop /= total

        videos_of_type: list[np.ndarray] = []
        type_pop: list[np.ndarray] = []
        for k in range(cfg.n_types):
            members = np.flatnonzero((self._video_types == k) & active)
            videos_of_type.append(members)
            if members.size:
                weights = pop[members]
                wsum = weights.sum()
                if wsum > 0:
                    type_pop.append(weights / wsum)
                else:
                    type_pop.append(
                        np.full(members.size, 1.0 / members.size)
                    )
            else:
                type_pop.append(np.empty(0))

        self._effective_user_factors(day * SECONDS_PER_DAY)
        factors, type_probs = self._drift_factors.get(
            day, (self.user_factors, self._user_type_probs)
        )

        wave = scenario.arrival_wave(day)
        sampler = self._wave_sampler(wave) if wave is not None else None

        return _DayState(
            pop=pop,
            videos_of_type=videos_of_type,
            type_pop=type_pop,
            favorites=self._favorites,
            active=active if not active.all() else None,
            user_factors=factors,
            type_probs=type_probs,
            rate_multiplier=scenario.rate_multiplier(day),
            start_sampler=sampler,
        )

    @staticmethod
    def _wave_sampler(
        wave: tuple[float, float, float],
    ) -> Callable[[float], float]:
        """Inverse-CDF sampler of within-day session start offsets.

        Density ``max(0.05, 1 + a*sin(2*pi*t/T + phase))`` over the same
        ``[0, SECONDS_PER_DAY - 3600)`` support the uniform sampler uses,
        tabulated on a fixed grid; consumes exactly one uniform draw per
        session, like the organic path.
        """
        amplitude, period, phase = wave
        span = SECONDS_PER_DAY - 3600.0
        grid = np.linspace(0.0, span, 513)
        density = np.maximum(
            0.05, 1.0 + amplitude * np.sin(2.0 * np.pi * grid / period + phase)
        )
        cdf = np.concatenate([[0.0], np.cumsum((density[1:] + density[:-1]))])
        cdf /= cdf[-1]

        def sample(u: float) -> float:
            return float(np.interp(u, cdf, grid))

        return sample

    def _day_state(self, day: int) -> _DayState:
        if self.scenario is None:
            return self._default_day_state(day)
        state = self._day_states.get(day)
        if state is None:
            state = self._scenario_day_state(day)
            self._day_states[day] = state
        return state

    def _sample_impressions(
        self,
        user_idx: int,
        count: int,
        state: _DayState,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``count`` impressed videos for one session."""
        cfg = self.config
        pop = state.pop
        chosen = np.empty(count, dtype=int)
        rolls = rng.random(count)
        favorites = state.favorites[user_idx]
        for slot in range(count):
            roll = rolls[slot]
            if roll < cfg.rewatch_mix and favorites.size:
                # Re-watching: revisit a personal favourite (series, show).
                pick = favorites[rng.integers(0, favorites.size)]
                if state.active is not None and not state.active[pick]:
                    # The favourite left the catalogue — the user falls
                    # back to browsing what is actually on offer.
                    pick = rng.choice(pop.size, p=pop)
                chosen[slot] = pick
            elif roll < cfg.rewatch_mix + cfg.popularity_mix:
                chosen[slot] = rng.choice(pop.size, p=pop)
            else:
                k = rng.choice(cfg.n_types, p=state.type_probs[user_idx])
                members = state.videos_of_type[k]
                if members.size == 0:
                    chosen[slot] = rng.choice(pop.size, p=pop)
                else:
                    chosen[slot] = rng.choice(members, p=state.type_pop[k])
        return chosen

    def generate_actions(self, days: int | None = None) -> list[UserAction]:
        """Generate the full time-ordered action stream.

        Timestamps start at 0.0 (day 0) and span ``days`` (defaults to the
        configured world length).  Deterministic for a fixed config — and
        byte-identical to the pre-scenario generator when no scenario
        event is active.
        """
        cfg = self.config
        span = days if days is not None else cfg.days
        rng = np.random.default_rng(cfg.seed + 1)
        actions: list[UserAction] = []
        for day in range(span):
            state = self._day_state(day)
            day_start = day * SECONDS_PER_DAY
            lam = self._activity * cfg.mean_sessions_per_day
            if state.rate_multiplier != 1.0:
                lam = lam * state.rate_multiplier
            n_sessions = rng.poisson(lam)
            for u in range(cfg.n_users):
                for _ in range(int(n_sessions[u])):
                    offset = rng.uniform(0, SECONDS_PER_DAY - 3600)
                    if state.start_sampler is not None:
                        offset = state.start_sampler(
                            offset / (SECONDS_PER_DAY - 3600.0)
                        )
                    actions.extend(
                        self._generate_session(
                            u, day_start + offset, state, rng
                        )
                    )
        actions.sort()
        return actions

    def _generate_session(
        self,
        user_idx: int,
        start: float,
        state: _DayState,
        rng: np.random.Generator,
    ) -> list[UserAction]:
        """Simulate one session: impressions and the resulting funnel."""
        cfg = self.config
        user_id = f"u{user_idx}"
        impressed = self._sample_impressions(
            user_idx, cfg.impressions_per_session, state, rng
        )
        out: list[UserAction] = []
        t = start
        x_u = state.user_factors[user_idx]
        for v in impressed:
            video_id = self._index_to_id[v]
            out.append(
                UserAction(
                    timestamp=t,
                    user_id=user_id,
                    video_id=video_id,
                    action=ActionType.IMPRESS,
                )
            )
            t += rng.uniform(1.0, 5.0)
            score = float(x_u @ self.video_factors[v])
            noise_click = rng.random() < cfg.noise_click_rate
            if not noise_click:
                p_click = _sigmoid(cfg.click_bias + cfg.click_scale * score)
                if rng.random() >= p_click:
                    continue
            out.append(
                UserAction(
                    timestamp=t,
                    user_id=user_id,
                    video_id=video_id,
                    action=ActionType.CLICK,
                )
            )
            t += rng.uniform(1.0, 3.0)
            # Accidental clicks rarely turn into real watching.
            p_play = 0.5 * cfg.play_given_click if noise_click else cfg.play_given_click
            if rng.random() >= p_play:
                continue
            out.append(
                UserAction(
                    timestamp=t,
                    user_id=user_id,
                    video_id=video_id,
                    action=ActionType.PLAY,
                )
            )
            # View rate: Beta with mean increasing in affinity; accidental
            # plays are mostly abandoned immediately — but some run long
            # anyway (left playing, fell asleep), producing deceptively
            # high weights: watching in its entirety is not liking.
            if noise_click:
                mean_vrate = 0.55 if rng.random() < 0.3 else 0.06
            elif rng.random() < cfg.time_limited_rate:
                mean_vrate = 0.15  # cut short by time, not by dislike
            else:
                mean_vrate = min(
                    0.95, max(0.05, 0.2 + 0.7 * _sigmoid(2.0 * score))
                )
            concentration = cfg.vrate_concentration
            vrate = float(
                rng.beta(
                    mean_vrate * concentration,
                    (1 - mean_vrate) * concentration,
                )
            )
            duration = self.videos[video_id].duration
            view_time = max(1.0, vrate * duration)
            t += view_time
            out.append(
                UserAction(
                    timestamp=t,
                    user_id=user_id,
                    video_id=video_id,
                    action=ActionType.PLAYTIME,
                    view_time=view_time,
                )
            )
            # Strong engagement occasionally produces social actions.
            if vrate > 0.7:
                roll = rng.random()
                if roll < 0.08:
                    t += rng.uniform(1.0, 10.0)
                    out.append(
                        UserAction(
                            timestamp=t,
                            user_id=user_id,
                            video_id=video_id,
                            action=ActionType.LIKE,
                        )
                    )
                elif roll < 0.12:
                    t += rng.uniform(5.0, 30.0)
                    out.append(
                        UserAction(
                            timestamp=t,
                            user_id=user_id,
                            video_id=video_id,
                            action=ActionType.COMMENT,
                        )
                    )
            t += rng.uniform(1.0, 10.0)
        return out

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def user_ids(self) -> list[str]:
        return list(self.users)

    def video_ids(self) -> list[str]:
        return list(self.videos)

    def genuinely_liked(
        self,
        test_actions: Iterable["UserAction"],
        affinity_quantile: float = 0.75,
    ) -> dict[str, set[str]]:
        """Ground-truth "liked" sets for the offline protocol.

        A video counts as liked when the user *engaged* with it in the test
        window (click or stronger) **and** its true affinity is in the top
        ``1 - affinity_quantile`` of the user's affinities — i.e. the
        engagement was taste-driven, not an accidental click or a
        popularity-exposure artefact.  Real deployments cannot compute
        this (no ground truth); the synthetic world can, which removes the
        label noise that observed-weight thresholds inherit.
        """
        from .stream import ENGAGEMENT_ACTIONS

        engaged: dict[str, set[str]] = {}
        for action in test_actions:
            if action.action in ENGAGEMENT_ACTIONS:
                engaged.setdefault(action.user_id, set()).add(action.video_id)
        liked: dict[str, set[str]] = {}
        for user_id, videos in engaged.items():
            u = self._user_index[user_id]
            scores = self.video_factors @ self.user_factors[u]
            threshold = float(np.quantile(scores, affinity_quantile))
            chosen = {
                video_id
                for video_id in videos
                if scores[self._video_index[video_id]] >= threshold
            }
            if chosen:
                liked[user_id] = chosen
        return liked

    def simulate_clicks(
        self,
        user_id: str,
        recommended: Iterable[str],
        rng: np.random.Generator,
        now: float | None = None,
    ) -> list[str]:
        """Simulate which of ``recommended`` the user would click.

        Used by the experimentation harness: each shown video is clicked
        independently with its ground-truth click probability.  ``now``
        lets scenario runs evaluate against drift-rotated preferences.
        """
        clicked = []
        for video_id in recommended:
            if video_id not in self._video_index:
                continue
            if rng.random() < self.click_probability(user_id, video_id, now):
                clicked.append(video_id)
        return clicked
