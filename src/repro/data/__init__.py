"""Data substrate: schemas, synthetic world, MovieLens I/O, splits, stats."""

from .movielens import (
    DEFAULT_DURATION,
    actions_to_log,
    load_ratings_file,
    parse_items,
    parse_ratings,
    write_actions,
)
from .schema import GLOBAL_GROUP, ActionType, User, UserAction, Video
from .stats import DatasetStats, dataset_stats, group_stats
from .stream import (
    ENGAGEMENT_ACTIONS,
    TrainTestSplit,
    day_of,
    engaged_videos_by_user,
    filter_active,
    replay,
    sort_stream,
    split_by_day,
)
from .synthetic import SyntheticWorld, WorldConfig

__all__ = [
    "ActionType",
    "User",
    "UserAction",
    "Video",
    "GLOBAL_GROUP",
    "SyntheticWorld",
    "WorldConfig",
    "TrainTestSplit",
    "ENGAGEMENT_ACTIONS",
    "sort_stream",
    "filter_active",
    "split_by_day",
    "day_of",
    "replay",
    "engaged_videos_by_user",
    "DatasetStats",
    "dataset_stats",
    "group_stats",
    "parse_ratings",
    "load_ratings_file",
    "parse_items",
    "write_actions",
    "actions_to_log",
    "DEFAULT_DURATION",
]
