"""MovieLens-format I/O.

The repro band for this paper expects "numpy + MovieLens-style data": this
module reads the classic ``u.data`` tab-separated rating format
(``user \\t item \\t rating \\t timestamp``) and converts explicit star
ratings into the implicit action funnel the system consumes, plus an
optional ``u.item``-style file for video types.  It can also export a
synthetic world to the same format, so external tools can consume our
streams.

Rating-to-action mapping (documented substitution; see DESIGN.md):

====== =========================================================
rating emitted actions
====== =========================================================
5      IMPRESS, CLICK, PLAY, PLAYTIME (vrate 0.95), LIKE
4      IMPRESS, CLICK, PLAY, PLAYTIME (vrate 0.75)
3      IMPRESS, CLICK, PLAY, PLAYTIME (vrate 0.45)
2      IMPRESS, CLICK, PLAY  (started, abandoned early)
1      IMPRESS, CLICK        (clicked away)
====== =========================================================

Every rating also implies the item was displayed, hence the IMPRESS.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Mapping, TextIO

from ..errors import DataError
from .schema import ActionType, UserAction, Video

#: Default duration (seconds) assumed for MovieLens items, which carry none.
DEFAULT_DURATION = 6000.0

_RATING_VRATE = {5: 0.95, 4: 0.75, 3: 0.45}


def _actions_for_rating(
    user_id: str, video_id: str, rating: int, timestamp: float, duration: float
) -> list[UserAction]:
    if not 1 <= rating <= 5:
        raise DataError(f"rating out of range [1, 5]: {rating}")
    actions = [
        UserAction(timestamp, user_id, video_id, ActionType.IMPRESS),
        UserAction(timestamp + 1, user_id, video_id, ActionType.CLICK),
    ]
    if rating >= 2:
        actions.append(
            UserAction(timestamp + 3, user_id, video_id, ActionType.PLAY)
        )
    if rating >= 3:
        view_time = _RATING_VRATE[min(rating, 5)] * duration
        actions.append(
            UserAction(
                timestamp + 3 + view_time,
                user_id,
                video_id,
                ActionType.PLAYTIME,
                view_time=view_time,
            )
        )
    if rating == 5:
        actions.append(
            UserAction(
                timestamp + 4 + _RATING_VRATE[5] * duration,
                user_id,
                video_id,
                ActionType.LIKE,
            )
        )
    return actions


def parse_ratings(
    source: TextIO | Iterable[str],
    durations: Mapping[str, float] | None = None,
) -> list[UserAction]:
    """Parse ``u.data``-format lines into a sorted implicit action stream.

    ``durations`` optionally maps item ids to video lengths in seconds;
    items not present use :data:`DEFAULT_DURATION`.
    """
    durations = durations or {}
    actions: list[UserAction] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise DataError(
                f"line {lineno}: expected 4 tab-separated fields, "
                f"got {len(parts)}: {line!r}"
            )
        raw_user, raw_item, raw_rating, raw_ts = parts
        try:
            rating = int(raw_rating)
            timestamp = float(raw_ts)
        except ValueError as exc:
            raise DataError(f"line {lineno}: non-numeric field: {line!r}") from exc
        user_id = f"u{raw_user}"
        video_id = f"v{raw_item}"
        duration = durations.get(video_id, DEFAULT_DURATION)
        actions.extend(
            _actions_for_rating(user_id, video_id, rating, timestamp, duration)
        )
    actions.sort()
    return actions


def load_ratings_file(
    path: str | Path, durations: Mapping[str, float] | None = None
) -> list[UserAction]:
    """Read a ``u.data``-format file from disk (see :func:`parse_ratings`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_ratings(handle, durations=durations)


def parse_items(source: TextIO | Iterable[str]) -> dict[str, Video]:
    """Parse a simplified ``u.item``-style file: ``item_id|type|duration``.

    Duration is optional (seconds); missing durations use
    :data:`DEFAULT_DURATION`.
    """
    videos: dict[str, Video] = {}
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) not in (2, 3):
            raise DataError(
                f"line {lineno}: expected 'id|type[|duration]': {line!r}"
            )
        video_id = f"v{parts[0]}"
        kind = parts[1]
        duration = DEFAULT_DURATION
        if len(parts) == 3:
            try:
                duration = float(parts[2])
            except ValueError as exc:
                raise DataError(
                    f"line {lineno}: bad duration {parts[2]!r}"
                ) from exc
        videos[video_id] = Video(video_id=video_id, kind=kind, duration=duration)
    return videos


def write_actions(actions: Iterable[UserAction], sink: TextIO) -> int:
    """Write actions in the raw-log format the ActionSpout parses.

    Returns the number of lines written.
    """
    count = 0
    for action in actions:
        sink.write(action.to_log_line() + "\n")
        count += 1
    return count


def actions_to_log(actions: Iterable[UserAction]) -> str:
    """Render an action stream as one raw-log string."""
    buffer = io.StringIO()
    write_actions(actions, buffer)
    return buffer.getvalue()
