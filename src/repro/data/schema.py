"""Entities and action records shared across the whole system.

The paper's input is a stream of ``<user, video, action>`` tuples carrying
an action type and, for PlayTime, the viewed duration (§3.2, §5.1).  Videos
have a fine-grained type used by the type-similarity factor (§4.2.2); users
carry demographic properties (gender, age, education) used to cluster them
into demographic groups (§5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import DataError


class ActionType(enum.Enum):
    """User behaviour types of Table 1 (plus the stronger social actions
    the paper mentions in §3.2: comment/like/share)."""

    IMPRESS = "impress"
    CLICK = "click"
    PLAY = "play"
    PLAYTIME = "playtime"
    COMMENT = "comment"
    LIKE = "like"
    SHARE = "share"

    @classmethod
    def parse(cls, token: str) -> "ActionType":
        try:
            return cls(token.strip().lower())
        except ValueError as exc:
            raise DataError(f"unknown action type: {token!r}") from exc


@dataclass(frozen=True, slots=True)
class Video:
    """A catalogue item.

    ``kind`` is the fine-grained type/category the type-similarity factor
    compares; ``duration`` is the full play length in seconds, the
    denominator of the view rate in Eq. 6.
    """

    video_id: str
    kind: str
    duration: float
    publish_time: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DataError(
                f"video {self.video_id!r}: duration must be positive"
            )


@dataclass(frozen=True, slots=True)
class User:
    """A site visitor, registered or not.

    Unregistered users (a large share of traffic, per the introduction)
    carry no demographic attributes; the demographic optimizations fall
    back to the global group for them (§5.2.1).
    """

    user_id: str
    registered: bool = True
    gender: str | None = None
    age_band: str | None = None
    education: str | None = None

    @property
    def demographic_group(self) -> str:
        """The demographic cluster label for this user.

        The paper clusters users "according to their properties such as
        gender, age and education" into dozens of groups; we use the
        cross-product of the known attributes.  Users with no attributes
        (unregistered) map to the ``"global"`` group.
        """
        if not self.registered:
            return GLOBAL_GROUP
        parts = [p for p in (self.gender, self.age_band, self.education) if p]
        return "|".join(parts) if parts else GLOBAL_GROUP


#: Group label for users whose demographic attributes are unknown.
GLOBAL_GROUP = "global"


@dataclass(frozen=True, slots=True, order=True)
class UserAction:
    """One implicit-feedback event.

    Orderable by ``timestamp`` first so a list of actions sorts into replay
    order.  ``view_time`` is only meaningful for PLAYTIME actions and is the
    number of seconds actually watched.
    """

    timestamp: float
    user_id: str = field(compare=False)
    video_id: str = field(compare=False)
    action: ActionType = field(compare=False)
    view_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.action is ActionType.PLAYTIME and self.view_time <= 0:
            raise DataError(
                "PLAYTIME actions must carry a positive view_time "
                f"(user={self.user_id!r}, video={self.video_id!r})"
            )
        if self.view_time < 0:
            raise DataError("view_time cannot be negative")

    # -- log-line (de)serialisation, used by the ActionSpout ---------------

    def to_log_line(self) -> str:
        """Render as the tab-separated raw-log format the spout parses."""
        return "\t".join(
            (
                f"{self.timestamp:.3f}",
                self.user_id,
                self.video_id,
                self.action.value,
                f"{self.view_time:.3f}",
            )
        )

    @classmethod
    def from_log_line(cls, line: str) -> "UserAction":
        """Parse a raw log line; raise :class:`DataError` on malformed input."""
        parts = line.rstrip("\n").split("\t")
        if len(parts) != 5:
            raise DataError(f"malformed action log line: {line!r}")
        ts, user_id, video_id, action_token, view_time = parts
        if not user_id or not video_id:
            raise DataError(f"empty user or video id in line: {line!r}")
        try:
            timestamp = float(ts)
            viewed = float(view_time)
        except ValueError as exc:
            raise DataError(f"non-numeric field in line: {line!r}") from exc
        return cls(
            timestamp=timestamp,
            user_id=user_id,
            video_id=video_id,
            action=ActionType.parse(action_token),
            view_time=viewed,
        )
