"""Action-stream utilities: cleaning, day splits, replay iteration.

The paper's offline protocol (§6.1) collects one week of data, keeps "users
who have more than 50 actions and videos with more than 50 related actions",
trains on the first six days and tests on the last.  These helpers implement
exactly that pipeline over any ``list[UserAction]``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..clock import SECONDS_PER_DAY
from ..errors import DataError
from .schema import ActionType, UserAction

#: Action types that indicate positive engagement (w > 0); impressions are
#: excluded — they are displays, not evidence (§3.2).
ENGAGEMENT_ACTIONS = frozenset(
    {
        ActionType.CLICK,
        ActionType.PLAY,
        ActionType.PLAYTIME,
        ActionType.COMMENT,
        ActionType.LIKE,
        ActionType.SHARE,
    }
)


def sort_stream(actions: Iterable[UserAction]) -> list[UserAction]:
    """Return the actions in replay (timestamp) order."""
    return sorted(actions)


def filter_active(
    actions: Sequence[UserAction],
    min_user_actions: int = 50,
    min_video_actions: int = 50,
    max_rounds: int = 10,
) -> list[UserAction]:
    """Apply the paper's cleaning rule.

    Iterates to a fixed point (removing a user can push a video below its
    threshold and vice versa), capped at ``max_rounds`` rounds.  Counts all
    action types, matching the paper's "more than 50 actions" phrasing.
    """
    kept = list(actions)
    for _ in range(max_rounds):
        user_counts = Counter(a.user_id for a in kept)
        video_counts = Counter(a.video_id for a in kept)
        filtered = [
            a
            for a in kept
            if user_counts[a.user_id] >= min_user_actions
            and video_counts[a.video_id] >= min_video_actions
        ]
        if len(filtered) == len(kept):
            break
        kept = filtered
    return kept


def day_of(action: UserAction) -> int:
    """The zero-based day index of an action's timestamp."""
    return int(action.timestamp // SECONDS_PER_DAY)


def group_by_day(
    actions: Iterable[UserAction],
) -> dict[int, list[UserAction]]:
    """Bucket actions by zero-based day index, preserving input order.

    The experiment harness replays one day of shared organic traffic at a
    time; this is the canonical day-bucketing used by both the legacy
    A/B harness and :class:`~repro.eval.experiment.Experiment`.
    """
    by_day: dict[int, list[UserAction]] = {}
    for action in actions:
        by_day.setdefault(day_of(action), []).append(action)
    return by_day


@dataclass(frozen=True, slots=True)
class TrainTestSplit:
    """A chronological train/test partition of an action stream."""

    train: list[UserAction]
    test: list[UserAction]

    @property
    def test_engagements(self) -> list[UserAction]:
        """Positive test actions — the ones recall@N counts as 'liked'."""
        return [a for a in self.test if a.action in ENGAGEMENT_ACTIONS]


def split_by_day(
    actions: Sequence[UserAction], train_days: int = 6
) -> TrainTestSplit:
    """Split chronologically: days ``[0, train_days)`` train, the rest test.

    The input need not be sorted; the output partitions are sorted.
    """
    if train_days < 1:
        raise DataError(f"train_days must be >= 1, got {train_days}")
    train: list[UserAction] = []
    test: list[UserAction] = []
    for action in actions:
        (train if day_of(action) < train_days else test).append(action)
    train.sort()
    test.sort()
    return TrainTestSplit(train=train, test=test)


def replay(actions: Sequence[UserAction]) -> Iterator[UserAction]:
    """Iterate actions in strict time order, validating monotonicity."""
    last = float("-inf")
    for action in sorted(actions):
        if action.timestamp < last:  # pragma: no cover - sorted() prevents it
            raise DataError("actions out of order after sort; corrupt stream")
        last = action.timestamp
        yield action


def engaged_videos_by_user(
    actions: Iterable[UserAction],
) -> dict[str, set[str]]:
    """Map each user to the set of videos they positively engaged with."""
    out: dict[str, set[str]] = {}
    for action in actions:
        if action.action in ENGAGEMENT_ACTIONS:
            out.setdefault(action.user_id, set()).add(action.video_id)
    return out
