"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is out of its documented range."""


class KVStoreError(ReproError):
    """Base class for key-value store failures."""


class KeyNotFound(KVStoreError):
    """A strict read was issued for a key that is not present."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class CASConflict(KVStoreError):
    """A compare-and-set failed because the stored version moved on."""

    def __init__(self, key: object, expected: int, actual: int) -> None:
        super().__init__(
            f"CAS conflict on {key!r}: expected version {expected}, found {actual}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


class TransientKVError(KVStoreError):
    """A shard failed transiently (timeout, connection blip); retryable."""


class DurableStoreError(KVStoreError):
    """The durable log-structured store hit an unrecoverable disk problem."""


class CorruptSegmentError(DurableStoreError):
    """A sealed segment record failed its checksum (real corruption, not a
    crash artifact — torn tails in the active segment are truncated, never
    raised)."""

    def __init__(self, segment: str, offset: int, reason: str) -> None:
        super().__init__(
            f"corrupt record in segment {segment} at offset {offset}: {reason}"
        )
        self.segment = segment
        self.offset = offset
        self.reason = reason


class ReliabilityError(ReproError):
    """Base class for checkpoint / write-ahead-log / recovery failures."""


class CheckpointError(ReliabilityError):
    """A checkpoint could not be written, validated, or restored."""


class StaleCheckpointError(CheckpointError):
    """An incremental checkpoint references segment files that no longer
    exist (compaction ran after it was taken).  Recovery falls back to a
    full WAL replay — the log still holds every acked action."""


class WALError(ReliabilityError):
    """The write-ahead log is unreadable beyond normal torn-tail truncation."""


class InjectedFault(ReproError):
    """A deliberately injected failure from the fault-injection harness."""


class OverloadError(ReproError):
    """Base class for overload-protection failures (breakers, deadlines)."""


class CircuitOpenError(OverloadError):
    """A call was rejected fast because its circuit breaker is open."""

    def __init__(self, name: str) -> None:
        super().__init__(f"circuit breaker {name!r} is open")
        self.name = name


class DeadlineExceededError(OverloadError):
    """A request's deadline budget ran out before it could be served."""


class TopologyError(ReproError):
    """The stream topology is mis-wired (unknown component, cycle, ...)."""


class ComponentError(TopologyError):
    """A spout or bolt raised while processing; wraps the original error."""

    def __init__(self, component: str, original: BaseException) -> None:
        super().__init__(f"component {component!r} failed: {original!r}")
        self.component = component
        self.original = original


class DataError(ReproError):
    """Malformed input data (action log line, MovieLens row, ...)."""


class ModelError(ReproError):
    """A model was used before being trained or with inconsistent shapes."""
