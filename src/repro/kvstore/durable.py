"""Log-structured durable :class:`KVStore` backend.

The paper's storage tier (§5.1) is a *remote* memory store that outlives any
one worker; this repo's stores so far were pure in-memory, so dataset size
was RAM-bound and a crash meant losing everything since the last full
checkpoint.  :class:`DurableKVStore` is the persistent tier under the cache
hierarchy: every write is appended to a checksummed segment file on disk,
an in-memory index maps each key to its newest record, and reads seek
straight to the record — the classic bitcask layout.  Compose it under a
:class:`~repro.kvstore.cache.ReadThroughCache` for the hot-set-in-memory /
full-state-on-disk split.

On-disk layout (all files under one root directory)::

    seg-000000000001.log     # sealed (immutable, fsynced at rotation)
    seg-000000000002.log     # sealed
    seg-000000000003.log     # active (append-only)
    compact-tmp-*.log        # partial compaction — discarded on open

Record format (binary, little-endian)::

    u32 crc32    over everything that follows (length, flags, payload)
    u32 length   payload byte count
    u8  flags    bit 0: tombstone
    payload      pickle of (key, version, expires_at, value)

Durability semantics, by construction:

* **Torn tails truncate, never crash.**  A crash mid-append leaves a
  partial record at the end of the *active* (newest) segment.  On open the
  scan detects it via the checksum (or a short read) and truncates the file
  at the last good record, counting the anomaly in the metrics registry
  (``durable_kv_torn_tail_truncations_total``).  Because every record
  before the tear re-verifies its checksum, a surviving read can only ever
  return exactly what was written — wrong values are structurally
  impossible.
* **Sealed segments are immutable.**  They are fsynced (file *and*
  directory) at rotation, so a checksum failure in a sealed segment is
  real corruption, not a crash artifact — it raises
  :class:`~repro.errors.CorruptSegmentError` instead of being truncated.
* **Acked writes survive ``SIGKILL``.**  With ``fsync="always"`` a
  :meth:`put` does not return before its record is on disk; the
  crash-injection suite kills the process mid-write and proves no acked
  write is ever lost.
* **Compaction is atomic.**  Live records are rewritten into a
  ``compact-tmp-*`` file which is fsynced and then atomically renamed to a
  segment id *higher* than every source segment; a crash at any point
  either leaves the tmp file (discarded on open) or leaves stale source
  segments whose records are overridden by the compacted segment in scan
  order.  Tombstones are retained through compaction so a crash between
  the rename and the source unlinks can never resurrect a deleted key.

Fsync policy (``fsync=``):

* ``"always"`` — fsync after every write batch (a ``put`` is a batch of
  one; ``mput`` pays one fsync for the whole batch).  Survives power loss.
* ``"interval"`` — fsync when more than ``fsync_interval_s`` has passed
  since the last one.  Survives process crashes; bounds power-loss damage.
* ``"never"`` — flush to the OS only.  Survives process crashes.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Callable, Iterable, Iterator

from ..clock import Clock, SystemClock
from ..errors import (
    CASConflict,
    CorruptSegmentError,
    DurableStoreError,
    KeyNotFound,
)
from .store import EntrySnapshot, Key, KVStore

__all__ = [
    "DurableKVStore",
    "CompactionReport",
    "FSYNC_POLICIES",
    "unwrap_durable",
    "drop_caches",
]

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"
_COMPACT_TMP_PREFIX = "compact-tmp-"

_CRC = struct.Struct("<I")
_LENFLAGS = struct.Struct("<IB")
_HEADER_SIZE = _CRC.size + _LENFLAGS.size  # 9 bytes

_FLAG_TOMBSTONE = 0x01

FSYNC_POLICIES = ("always", "interval", "never")

_MISSING = object()


def _segment_name(segment_id: int) -> str:
    return f"{_SEGMENT_PREFIX}{segment_id:012d}{_SEGMENT_SUFFIX}"


def _segment_id(path_or_name: Path | str) -> int:
    name = path_or_name.name if isinstance(path_or_name, Path) else path_or_name
    return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


def _is_segment_name(name: str) -> bool:
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return False
    stem = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return stem.isdigit()


def _encode_record(
    key: Key,
    version: int,
    expires_at: float | None,
    value: Any,
    tombstone: bool = False,
) -> bytes:
    payload = pickle.dumps(
        (key, version, expires_at, None if tombstone else value),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    meta = _LENFLAGS.pack(len(payload), _FLAG_TOMBSTONE if tombstone else 0)
    crc = zlib.crc32(meta + payload) & 0xFFFFFFFF
    return _CRC.pack(crc) + meta + payload


@dataclass(slots=True)
class _IndexEntry:
    """Where a key's newest live record sits on disk."""

    segment_id: int
    offset: int
    length: int
    version: int
    expires_at: float | None


@dataclass(frozen=True, slots=True)
class CompactionReport:
    """What one :meth:`DurableKVStore.compact` call did."""

    segments_merged: int
    bytes_before: int
    bytes_after: int
    live_records: int
    tombstones_kept: int

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after


class _Scan:
    """One decoded record during a segment scan."""

    __slots__ = ("offset", "length", "tombstone", "key", "version", "expires_at")

    def __init__(self, offset, length, tombstone, key, version, expires_at):
        self.offset = offset
        self.length = length
        self.tombstone = tombstone
        self.key = key
        self.version = version
        self.expires_at = expires_at


def _scan_segment(data: bytes) -> Iterator[_Scan]:
    """Yield one :class:`_Scan` per record until the data ends or fails.

    On failure, raises :class:`_ScanFailure` carrying the byte offset of
    the bad record and a reason — the caller decides between torn-tail
    truncation (active segment) and :class:`CorruptSegmentError` (sealed).
    """
    pos = 0
    size = len(data)
    while pos < size:
        if pos + _HEADER_SIZE > size:
            raise _ScanFailure(pos, "short header")
        (crc,) = _CRC.unpack_from(data, pos)
        length, flags = _LENFLAGS.unpack_from(data, pos + _CRC.size)
        end = pos + _HEADER_SIZE + length
        if end > size:
            raise _ScanFailure(pos, "short payload")
        if zlib.crc32(data[pos + _CRC.size : end]) & 0xFFFFFFFF != crc:
            raise _ScanFailure(pos, "checksum mismatch")
        try:
            key, version, expires_at, _value = pickle.loads(
                data[pos + _HEADER_SIZE : end]
            )
        except Exception:
            raise _ScanFailure(pos, "undecodable payload") from None
        yield _Scan(
            pos, end - pos, bool(flags & _FLAG_TOMBSTONE), key, version, expires_at
        )
        pos = end


class _ScanFailure(Exception):
    """Internal: a segment scan hit a bad record at ``offset``."""

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(reason)
        self.offset = offset
        self.reason = reason


class _Metrics:
    """The store's instruments, or no-ops when no registry is wired."""

    def __init__(self, registry) -> None:
        if registry is None:
            self.enabled = False
            return
        self.enabled = True
        self.torn_tails = registry.counter(
            "durable_kv_torn_tail_truncations_total",
            "Torn active-segment tails truncated on open",
        )
        self.truncated_bytes = registry.counter(
            "durable_kv_truncated_bytes_total",
            "Bytes dropped by torn-tail truncation",
        )
        self.partial_compactions = registry.counter(
            "durable_kv_partial_compactions_discarded_total",
            "compact-tmp files from crashed compactions discarded on open",
        )
        self.records_written = registry.counter(
            "durable_kv_records_written_total",
            "Records appended (puts, deletes, restores, compaction rewrites)",
        )
        self.reads = registry.counter(
            "durable_kv_reads_total", "Record reads served from disk"
        )
        self.fsyncs = registry.counter(
            "durable_kv_fsyncs_total", "fsync calls on segment files"
        )
        self.compactions = registry.counter(
            "durable_kv_compactions_total", "Completed compactions"
        )
        self.reclaimed = registry.counter(
            "durable_kv_compaction_reclaimed_bytes_total",
            "Bytes reclaimed by compaction",
        )
        self.segments = registry.gauge(
            "durable_kv_segments", "Segment files currently on disk"
        )
        self.live_keys = registry.gauge(
            "durable_kv_live_keys", "Keys with a live record"
        )
        self.dead_bytes = registry.gauge(
            "durable_kv_dead_bytes", "Bytes owned by superseded/deleted records"
        )

    def __getattr__(self, name: str):  # registry is None: every op no-ops
        return _NoopInstrument()


class _NoopInstrument:
    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass


class DurableKVStore(KVStore):
    """Append-only, checksummed, compacting, disk-backed key-value store.

    Thread-safe (one :class:`threading.RLock` over index and log).  Values
    are pickled per record, so reads return a *fresh* object every time —
    callers that mutate values in place must :meth:`put` them back, same
    as every other store in this package.

    ``registry`` (a :class:`~repro.obs.MetricsRegistry`) makes every
    anomaly — torn tails, discarded partial compactions — and every
    compaction observable; pass ``obs.registry`` in production wiring.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        compact_min_bytes: int = 1024 * 1024,
        compact_min_dead_ratio: float = 0.5,
        auto_compact: bool = True,
        clock: Clock | None = None,
        registry=None,
    ) -> None:
        if segment_max_bytes < 64:
            raise ValueError(
                f"segment_max_bytes must be >= 64, got {segment_max_bytes}"
            )
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval_s < 0:
            raise ValueError(
                f"fsync_interval_s must be >= 0, got {fsync_interval_s}"
            )
        if not 0.0 < compact_min_dead_ratio <= 1.0:
            raise ValueError(
                "compact_min_dead_ratio must be in (0, 1], "
                f"got {compact_min_dead_ratio}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_policy = fsync
        self.fsync_interval_s = fsync_interval_s
        self.compact_min_bytes = compact_min_bytes
        self.compact_min_dead_ratio = compact_min_dead_ratio
        self.auto_compact = auto_compact
        self._clock = clock or SystemClock()
        self._metrics = _Metrics(registry)
        self._lock = threading.RLock()

        self._index: dict[Key, _IndexEntry] = {}
        #: keys whose newest record is a tombstone still on disk — carried
        #: through compaction so stale segments can never resurrect them.
        self._tombstones: dict[Key, int] = {}
        self._segment_bytes: dict[int, int] = {}
        self._dead_bytes = 0
        self._active_id: int | None = None
        self._active_handle: IO[bytes] | None = None
        self._read_handles: dict[int, IO[bytes]] = {}
        self._last_fsync = self._clock.now()
        self._closed = False
        self._load()

    # ------------------------------------------------------------------
    # Opening: discard partial compactions, scan segments, rebuild index
    # ------------------------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        return sorted(
            (
                path
                for path in self.root.iterdir()
                if path.is_file() and _is_segment_name(path.name)
            ),
            key=_segment_id,
        )

    def _load(self) -> None:
        # A crash mid-compaction leaves a tmp file: the atomic-rename
        # protocol means it was never part of the store — roll it back.
        for stray in self.root.glob(f"{_COMPACT_TMP_PREFIX}*"):
            stray.unlink()
            self._metrics.partial_compactions.inc()

        self._index.clear()
        self._tombstones.clear()
        self._segment_bytes.clear()
        self._dead_bytes = 0
        paths = self._segment_paths()
        now = self._clock.now()
        for position, path in enumerate(paths):
            newest = position == len(paths) - 1
            self._scan_into_index(path, newest=newest, now=now)
        self._update_gauges()

    def _scan_into_index(self, path: Path, newest: bool, now: float) -> None:
        segment_id = _segment_id(path)
        data = path.read_bytes()
        good_end = 0
        try:
            for record in _scan_segment(data):
                self._apply_scan(segment_id, record, now)
                good_end = record.offset + record.length
        except _ScanFailure as failure:
            if not newest:
                raise CorruptSegmentError(
                    path.name, failure.offset, failure.reason
                ) from None
            # Torn tail of the active segment: truncate at the last good
            # record and count the anomaly.  Everything before re-verified
            # its checksum, so no wrong value can survive this.
            dropped = len(data) - good_end
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            self._metrics.torn_tails.inc()
            self._metrics.truncated_bytes.inc(dropped)
        self._segment_bytes[segment_id] = good_end if newest else len(data)

    def _apply_scan(self, segment_id: int, record: _Scan, now: float) -> None:
        previous = self._index.pop(record.key, None)
        if previous is not None:
            self._dead_bytes += previous.length
        if record.tombstone:
            self._tombstones[record.key] = record.version
            return
        self._tombstones.pop(record.key, None)
        if record.expires_at is not None and now >= record.expires_at:
            self._dead_bytes += record.length
            return
        self._index[record.key] = _IndexEntry(
            segment_id,
            record.offset,
            record.length,
            record.version,
            record.expires_at,
        )

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _seal_active(self) -> None:
        """Fsync and close the active segment; its file becomes immutable."""
        if self._active_handle is None:
            return
        self._active_handle.flush()
        os.fsync(self._active_handle.fileno())
        self._metrics.fsyncs.inc()
        self._active_handle.close()
        self._active_handle = None
        self._active_id = None
        self._fsync_dir()

    def _ensure_active(self, incoming: int) -> int:
        """Return the active segment id, rotating/compacting as needed."""
        if self._active_handle is not None:
            if (
                self._segment_bytes[self._active_id] + incoming
                > self.segment_max_bytes
                and self._segment_bytes[self._active_id] > 0
            ):
                self._seal_active()
                if self.auto_compact and self._should_compact():
                    self._compact_locked()
        if self._active_handle is None:
            next_id = max(self._segment_bytes, default=0) + 1
            path = self.root / _segment_name(next_id)
            self._active_handle = open(path, "ab")
            self._active_id = next_id
            self._segment_bytes.setdefault(next_id, 0)
            self._fsync_dir()
            self._update_gauges()
        return self._active_id

    def _append(self, blob: bytes) -> tuple[int, int]:
        """Write one encoded record; return ``(segment_id, offset)``.

        The caller batches :meth:`_sync` separately so ``mput`` pays one
        fsync for the whole batch.
        """
        segment_id = self._ensure_active(len(blob))
        offset = self._segment_bytes[segment_id]
        self._active_handle.write(blob)
        self._segment_bytes[segment_id] = offset + len(blob)
        self._metrics.records_written.inc()
        return segment_id, offset

    def _sync(self) -> None:
        """Flush the active segment per the configured fsync policy."""
        if self._active_handle is None:
            return
        self._active_handle.flush()
        if self.fsync_policy == "always":
            os.fsync(self._active_handle.fileno())
            self._metrics.fsyncs.inc()
        elif self.fsync_policy == "interval":
            now = self._clock.now()
            if now - self._last_fsync >= self.fsync_interval_s:
                os.fsync(self._active_handle.fileno())
                self._metrics.fsyncs.inc()
                self._last_fsync = now

    def sync(self) -> None:
        """Force everything buffered onto disk, regardless of policy."""
        with self._lock:
            if self._active_handle is not None:
                self._active_handle.flush()
                os.fsync(self._active_handle.fileno())
                self._metrics.fsyncs.inc()
                self._last_fsync = self._clock.now()

    def _write_entry(
        self,
        key: Key,
        value: Any,
        version: int,
        expires_at: float | None,
    ) -> None:
        """Append a live record and move the index to it.  Lock held."""
        blob = _encode_record(key, version, expires_at, value)
        previous = self._index.get(key)
        if previous is not None:
            self._dead_bytes += previous.length
        segment_id, offset = self._append(blob)
        self._index[key] = _IndexEntry(
            segment_id, offset, len(blob), version, expires_at
        )
        self._tombstones.pop(key, None)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _read_handle(self, segment_id: int) -> IO[bytes]:
        handle = self._read_handles.get(segment_id)
        if handle is None:
            handle = open(self.root / _segment_name(segment_id), "rb")
            self._read_handles[segment_id] = handle
        return handle

    def _read_value(self, key: Key, entry: _IndexEntry) -> Any:
        """Seek to a record, re-verify its checksum, return its value."""
        if entry.segment_id == self._active_id and self._active_handle:
            self._active_handle.flush()
        handle = self._read_handle(entry.segment_id)
        handle.seek(entry.offset)
        data = handle.read(entry.length)
        segment = _segment_name(entry.segment_id)
        if len(data) != entry.length:
            raise CorruptSegmentError(segment, entry.offset, "short read")
        (crc,) = _CRC.unpack_from(data, 0)
        if zlib.crc32(data[_CRC.size :]) & 0xFFFFFFFF != crc:
            raise CorruptSegmentError(
                segment, entry.offset, "checksum mismatch"
            )
        try:
            record_key, _, _, value = pickle.loads(data[_HEADER_SIZE:])
        except Exception:
            raise CorruptSegmentError(
                segment, entry.offset, "undecodable payload"
            ) from None
        if record_key != key:
            raise CorruptSegmentError(
                segment, entry.offset, f"index points at record for {record_key!r}"
            )
        self._metrics.reads.inc()
        return value

    def _live_entry(self, key: Key) -> _IndexEntry | None:
        """The index entry for ``key``, dropping it if expired.  Lock held."""
        entry = self._index.get(key)
        if entry is None:
            return None
        if entry.expires_at is not None and self._clock.now() >= entry.expires_at:
            del self._index[key]
            self._dead_bytes += entry.length
            return None
        return entry

    def _expiry(self, ttl: float | None) -> float | None:
        if ttl is None:
            return None
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        return self._clock.now() + ttl

    # ------------------------------------------------------------------
    # KVStore API
    # ------------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        with self._lock:
            entry = self._live_entry(key)
            return default if entry is None else self._read_value(key, entry)

    def get_strict(self, key: Key) -> Any:
        with self._lock:
            entry = self._live_entry(key)
            if entry is None:
                raise KeyNotFound(key)
            return self._read_value(key, entry)

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        with self._lock:
            entry = self._live_entry(key)
            version = 1 if entry is None else entry.version + 1
            self._write_entry(key, value, version, self._expiry(ttl))
            self._sync()
            return version

    def delete(self, key: Key) -> bool:
        with self._lock:
            entry = self._live_entry(key)
            if entry is None:
                return False
            blob = _encode_record(key, entry.version, None, None, tombstone=True)
            self._append(blob)
            self._sync()
            del self._index[key]
            self._dead_bytes += entry.length
            self._tombstones[key] = entry.version
            return True

    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        with self._lock:
            entry = self._live_entry(key)
            current = default if entry is None else self._read_value(key, entry)
            new_value = fn(current)
            version = 1 if entry is None else entry.version + 1
            expires_at = None if entry is None else entry.expires_at
            self._write_entry(key, new_value, version, expires_at)
            self._sync()
            return new_value

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        with self._lock:
            entry = self._live_entry(key)
            actual = 0 if entry is None else entry.version
            if actual != expected_version:
                raise CASConflict(key, expected_version, actual)
            version = actual + 1
            expires_at = None if entry is None else entry.expires_at
            self._write_entry(key, value, version, expires_at)
            self._sync()
            return version

    def version(self, key: Key) -> int:
        with self._lock:
            entry = self._live_entry(key)
            return 0 if entry is None else entry.version

    def mget(self, keys: Iterable[Key], default: Any = None) -> list[Any]:
        """Batch get under one lock acquisition."""
        with self._lock:
            out = []
            for key in keys:
                entry = self._live_entry(key)
                out.append(
                    default if entry is None else self._read_value(key, entry)
                )
            return out

    def mput(
        self,
        items: Iterable[tuple[Key, Any]],
        ttl: float | None = None,
    ) -> list[int]:
        """Batch put: one lock, one group-commit fsync for the batch."""
        with self._lock:
            versions = []
            expires_at = self._expiry(ttl)
            for key, value in items:
                entry = self._live_entry(key)
                version = 1 if entry is None else entry.version + 1
                self._write_entry(key, value, version, expires_at)
                versions.append(version)
            self._sync()
            return versions

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return self._live_entry(key) is not None

    def __len__(self) -> int:
        with self._lock:
            self.sweep()
            return len(self._index)

    def keys(self) -> Iterator[Key]:
        with self._lock:
            now = self._clock.now()
            snapshot = [
                key
                for key, entry in self._index.items()
                if entry.expires_at is None or now < entry.expires_at
            ]
        return iter(snapshot)

    def sweep(self) -> int:
        """Drop expired entries from the index; return how many."""
        with self._lock:
            now = self._clock.now()
            dead = [
                key
                for key, entry in self._index.items()
                if entry.expires_at is not None and now >= entry.expires_at
            ]
            for key in dead:
                self._dead_bytes += self._index.pop(key).length
            if dead:
                self._update_gauges()
            return len(dead)

    def clear(self) -> None:
        """Remove every entry *and* every segment file (fresh store)."""
        with self._lock:
            self._close_handles()
            for path in self._segment_paths():
                path.unlink()
            self._fsync_dir()
            self._index.clear()
            self._tombstones.clear()
            self._segment_bytes.clear()
            self._dead_bytes = 0
            self._update_gauges()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def snapshot_entries(self) -> list[EntrySnapshot]:
        """Exact capture (reads every live value from disk)."""
        with self._lock:
            now = self._clock.now()
            return [
                EntrySnapshot(
                    key,
                    self._read_value(key, entry),
                    entry.version,
                    entry.expires_at,
                )
                for key, entry in list(self._index.items())
                if entry.expires_at is None or now < entry.expires_at
            ]

    def restore_entries(self, entries: Iterable[EntrySnapshot]) -> int:
        """Exact restore: reinstates versions and absolute expiries."""
        count = 0
        with self._lock:
            for entry in entries:
                self._write_entry(
                    entry.key, entry.value, entry.version, entry.expires_at
                )
                count += 1
            self._sync()
        return count

    # ------------------------------------------------------------------
    # Segments: sealing, incremental-checkpoint handshake
    # ------------------------------------------------------------------

    def seal_active(self) -> None:
        """Seal the active segment so the on-disk set is fully immutable.

        Incremental checkpoints call this first: a checkpoint references
        only sealed (fsynced, never-again-written) segment files.
        """
        with self._lock:
            self._seal_active()
            self._update_gauges()

    def sealed_segments(self) -> list[tuple[str, int]]:
        """``(name, bytes)`` for every sealed segment, oldest first.

        Only meaningful right after :meth:`seal_active`; an active segment
        is excluded.
        """
        with self._lock:
            return [
                (_segment_name(segment_id), size)
                for segment_id, size in sorted(self._segment_bytes.items())
                if segment_id != self._active_id
            ]

    def restore_to_segments(self, names: Iterable[str]) -> int:
        """Roll the store back to exactly the named segment set.

        Segments *not* named (writes after the referencing checkpoint,
        possibly including a partially applied action) are deleted;
        the index is rebuilt by rescanning what remains.  Raises
        :class:`~repro.errors.DurableStoreError` if a named segment is
        missing — e.g. compaction ran after the checkpoint was taken —
        in which case the store is left untouched and the caller falls
        back to a full WAL replay.  Returns the number of live keys.
        """
        wanted = set(names)
        for name in wanted:
            if not _is_segment_name(name):
                raise DurableStoreError(f"not a segment name: {name!r}")
        with self._lock:
            on_disk = {path.name: path for path in self._segment_paths()}
            missing = sorted(wanted - set(on_disk))
            if missing:
                raise DurableStoreError(
                    f"checkpointed segments missing from {self.root}: {missing}"
                )
            self._close_handles()
            for name, path in sorted(on_disk.items()):
                if name not in wanted:
                    path.unlink()
            self._fsync_dir()
            self._load()
            return len(self._index)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _should_compact(self) -> bool:
        total = sum(self._segment_bytes.values())
        return (
            total >= self.compact_min_bytes
            and self._dead_bytes / total >= self.compact_min_dead_ratio
        )

    def compact(self) -> CompactionReport:
        """Rewrite live records into one fresh segment; drop the garbage.

        Safe to call from any thread at any time (it runs under the store
        lock); also triggered automatically at segment rotation when the
        dead-byte ratio crosses ``compact_min_dead_ratio``.  Note that
        compaction deletes the segment files earlier incremental
        checkpoints reference — take a fresh checkpoint after compacting
        (the :class:`~repro.reliability.replay.RecoveryManager` recovery
        path falls back to a full WAL replay if it ever meets a stale
        one).
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> CompactionReport:
        self.sweep()
        self._seal_active()
        source_ids = sorted(self._segment_bytes)
        bytes_before = sum(self._segment_bytes.values())
        if not source_ids:
            return CompactionReport(0, 0, 0, 0, len(self._tombstones))

        new_id = source_ids[-1] + 1
        tmp = self.root / f"{_COMPACT_TMP_PREFIX}{new_id:012d}{_SEGMENT_SUFFIX}"
        new_index: dict[Key, _IndexEntry] = {}
        offset = 0
        with open(tmp, "wb") as out:
            for key, entry in self._index.items():
                value = self._read_value(key, entry)
                blob = _encode_record(key, entry.version, entry.expires_at, value)
                out.write(blob)
                new_index[key] = _IndexEntry(
                    new_id, offset, len(blob), entry.version, entry.expires_at
                )
                offset += len(blob)
            # Tombstones survive compaction: if a crash strands a stale
            # source segment next to the compacted one, the tombstone in
            # the (higher-id) compacted segment still wins the scan and
            # the deleted key stays deleted.
            for key, version in self._tombstones.items():
                blob = _encode_record(key, version, None, None, tombstone=True)
                out.write(blob)
                offset += len(blob)
            out.flush()
            os.fsync(out.fileno())
            self._metrics.fsyncs.inc()

        os.rename(tmp, self.root / _segment_name(new_id))
        self._fsync_dir()
        self._close_handles()
        for segment_id in source_ids:
            (self.root / _segment_name(segment_id)).unlink()
        self._fsync_dir()

        self._index = new_index
        self._segment_bytes = {new_id: offset}
        self._dead_bytes = 0
        self._metrics.records_written.inc(len(new_index) + len(self._tombstones))
        self._metrics.compactions.inc()
        self._metrics.reclaimed.inc(max(0, bytes_before - offset))
        self._update_gauges()
        return CompactionReport(
            segments_merged=len(source_ids),
            bytes_before=bytes_before,
            bytes_after=offset,
            live_records=len(new_index),
            tombstones_kept=len(self._tombstones),
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Plain-data view of the log: segments, bytes, dead ratio."""
        with self._lock:
            total = sum(self._segment_bytes.values())
            return {
                "segments": len(self._segment_bytes),
                "live_keys": len(self._index),
                "tombstones": len(self._tombstones),
                "total_bytes": total,
                "dead_bytes": self._dead_bytes,
                "dead_ratio": (self._dead_bytes / total) if total else 0.0,
            }

    def _update_gauges(self) -> None:
        if not self._metrics.enabled:
            return
        self._metrics.segments.set(len(self._segment_bytes))
        self._metrics.live_keys.set(len(self._index))
        self._metrics.dead_bytes.set(self._dead_bytes)

    def _close_handles(self) -> None:
        for handle in self._read_handles.values():
            handle.close()
        self._read_handles.clear()
        if self._active_handle is not None:
            self._active_handle.flush()
            self._active_handle.close()
            self._active_handle = None
            self._active_id = None

    def close(self) -> None:
        """Flush, fsync, and release every file handle."""
        with self._lock:
            if self._closed:
                return
            if self._active_handle is not None:
                self._active_handle.flush()
                os.fsync(self._active_handle.fileno())
                self._metrics.fsyncs.inc()
            self._close_handles()
            self._closed = True

    def __enter__(self) -> "DurableKVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Tier helpers: find the durable layer / drop caches above it
# ----------------------------------------------------------------------

_WRAPPER_ATTRS = ("inner", "_backing")


def unwrap_durable(store: Any) -> DurableKVStore | None:
    """Walk a wrapper chain (cache, breaker, instrumentation, namespace)
    down to the :class:`DurableKVStore` at the bottom, or ``None``."""
    seen = set()
    current = store
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, DurableKVStore):
            return current
        for attr in _WRAPPER_ATTRS:
            inner = getattr(current, attr, None)
            if inner is not None:
                current = inner
                break
        else:
            return None
    return None


def drop_caches(store: Any) -> None:
    """Invalidate every caching layer above the backing store.

    Called after the backing tier's state changed underneath the wrappers
    (segment-level checkpoint restore); any layer exposing ``drop_cache()``
    is asked to forget what it holds.
    """
    seen = set()
    current = store
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        dropper = getattr(current, "drop_cache", None)
        if callable(dropper):
            dropper()
        advanced = False
        for attr in _WRAPPER_ATTRS:
            inner = getattr(current, attr, None)
            if inner is not None:
                current = inner
                advanced = True
                break
        if not advanced:
            return
