"""In-memory key-value storage substrate.

Stands in for the paper's "distributed memory-based key-value storage"
(§5.1).  See :mod:`repro.kvstore.store` for the interface,
:mod:`repro.kvstore.sharded` for the sharded variant, and
:mod:`repro.kvstore.cache` for the per-worker cache/combiner optimizations.
"""

from .cache import ReadThroughCache, WriteCombiner
from .namespace import Namespace
from .sharded import ShardedKVStore
from .store import EntrySnapshot, InMemoryKVStore, Key, KVStore

# Imported last: .breaker pulls in repro.reliability, which itself imports
# the names bound above from this package.
from .breaker import BreakerKVStore  # noqa: E402

__all__ = [
    "KVStore",
    "Key",
    "EntrySnapshot",
    "InMemoryKVStore",
    "ShardedKVStore",
    "Namespace",
    "ReadThroughCache",
    "WriteCombiner",
    "BreakerKVStore",
]
