"""Key-value storage substrate: in-memory tiers plus a durable log.

Stands in for the paper's "distributed memory-based key-value storage"
(§5.1).  See :mod:`repro.kvstore.store` for the interface,
:mod:`repro.kvstore.sharded` for the sharded variant,
:mod:`repro.kvstore.cache` for the per-worker cache/combiner
optimizations, and :mod:`repro.kvstore.durable` for the log-structured
persistent tier that sits under the cache hierarchy.
"""

from .cache import ReadThroughCache, WriteCombiner
from .durable import (
    CompactionReport,
    DurableKVStore,
    FSYNC_POLICIES,
    drop_caches,
    unwrap_durable,
)
from .namespace import Namespace
from .sharded import ShardedKVStore
from .store import EntrySnapshot, InMemoryKVStore, Key, KVStore

# Imported last: .breaker pulls in repro.reliability, which itself imports
# the names bound above from this package.
from .breaker import BreakerKVStore  # noqa: E402

__all__ = [
    "KVStore",
    "Key",
    "EntrySnapshot",
    "InMemoryKVStore",
    "ShardedKVStore",
    "DurableKVStore",
    "CompactionReport",
    "FSYNC_POLICIES",
    "unwrap_durable",
    "drop_caches",
    "Namespace",
    "ReadThroughCache",
    "WriteCombiner",
    "BreakerKVStore",
]
