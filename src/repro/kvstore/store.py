"""Key-value store interface and the single-shard in-memory implementation.

The paper stores all mutable state — user vectors ``x_u``, video vectors
``y_i``, user histories, and similar-video tables — in "a distributed
memory-based key-value storage" (§5.1) so that any worker can address any
vector by key without touching unrelated state.  :class:`KVStore` is that
interface; :class:`InMemoryKVStore` is one shard of it.

Values are stored by reference; callers that mutate values in place (numpy
vectors) must write them back with :meth:`put` so versioning and TTL stay
coherent.  Every entry carries a monotonically increasing version used by
:meth:`compare_and_set`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator

from ..clock import Clock, SystemClock
from ..errors import CASConflict, KeyNotFound

Key = Hashable

_MISSING = object()


@dataclass(slots=True)
class _Entry:
    value: Any
    version: int
    expires_at: float | None


@dataclass(frozen=True, slots=True)
class EntrySnapshot:
    """One live entry captured with its full metadata.

    ``expires_at`` is an absolute timestamp (same clock domain as the
    store's), so a snapshot restored under the same clock keeps the exact
    remaining TTL.
    """

    key: Key
    value: Any
    version: int
    expires_at: float | None


class KVStore(ABC):
    """Abstract key-value store with versioned writes and atomic updates."""

    @abstractmethod
    def get(self, key: Key, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` when absent/expired."""

    @abstractmethod
    def get_strict(self, key: Key) -> Any:
        """Return the value for ``key``; raise :class:`KeyNotFound` if absent."""

    @abstractmethod
    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        """Store ``value`` under ``key``; return the new version number.

        ``ttl`` is a relative lifetime in seconds; ``None`` means no expiry.
        """

    @abstractmethod
    def delete(self, key: Key) -> bool:
        """Remove ``key``; return ``True`` if it was present."""

    @abstractmethod
    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Atomically replace ``key``'s value with ``fn(current_or_default)``.

        Returns the new value.  The callable runs under the store's lock, so
        it must be fast and must not call back into the same store.
        """

    @abstractmethod
    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        """Write ``value`` only if the stored version equals ``expected_version``.

        Version 0 means "key must be absent".  Returns the new version;
        raises :class:`CASConflict` on mismatch.
        """

    @abstractmethod
    def version(self, key: Key) -> int:
        """Return the current version of ``key`` (0 when absent)."""

    @abstractmethod
    def __contains__(self, key: Key) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def keys(self) -> Iterator[Key]:
        """Iterate over live (non-expired) keys; snapshot semantics."""

    def items(self) -> Iterator[tuple[Key, Any]]:
        """Iterate ``(key, value)`` pairs over a snapshot of live keys."""
        for key in self.keys():
            value = self.get(key, _MISSING)
            if value is not _MISSING:
                yield key, value

    def setdefault(self, key: Key, factory: Callable[[], Any]) -> Any:
        """Return ``key``'s value, inserting ``factory()`` first if absent."""
        sentinel = _MISSING

        def _init(current: Any) -> Any:
            return factory() if current is sentinel else current

        return self.update(key, _init, default=sentinel)

    # -- batch operations --------------------------------------------------
    #
    # Contract (all implementations and wrappers):
    #   * ``mget`` returns one value per input key, in input order; keys
    #     that are absent or expired yield ``default``.  Duplicate keys are
    #     allowed and each occurrence is resolved independently.
    #   * ``mput`` writes every ``(key, value)`` pair and returns the new
    #     version numbers in input order.  A duplicate key is written twice,
    #     in order (last write wins, two version bumps).
    #   * Neither operation is atomic across keys unless a concrete store
    #     says otherwise (``InMemoryKVStore`` holds its lock for the whole
    #     batch; ``ShardedKVStore`` is atomic per shard only).

    def mget(self, keys: Iterable[Key], default: Any = None) -> list[Any]:
        """Batch :meth:`get`: one result per key, in input order.

        The base implementation loops over :meth:`get` so third-party
        stores keep working; concrete stores override it with a single
        locked pass.
        """
        return [self.get(key, default) for key in keys]

    def mput(
        self,
        items: Iterable[tuple[Key, Any]],
        ttl: float | None = None,
    ) -> list[int]:
        """Batch :meth:`put`: returns the new versions in input order.

        ``ttl`` applies uniformly to every written entry.  The base
        implementation loops over :meth:`put`.
        """
        return [self.put(key, value, ttl=ttl) for key, value in items]

    # -- checkpoint support ------------------------------------------------

    def snapshot_entries(self) -> list[EntrySnapshot]:
        """Capture every live entry with version and expiry metadata.

        The base implementation goes through :meth:`items` and therefore
        loses versions and TTLs (they restore as fresh version-1 immortal
        entries); concrete stores override it with an exact capture.
        """
        return [
            EntrySnapshot(key, value, 1, None) for key, value in self.items()
        ]

    def restore_entries(self, entries: Iterable[EntrySnapshot]) -> int:
        """Load snapshot entries into this store; return how many.

        The base implementation writes through :meth:`put`, so restored
        entries get new versions; exact stores override it to reinstate
        versions and absolute expiries.
        """
        count = 0
        for entry in entries:
            self.put(entry.key, entry.value)
            count += 1
        return count


class InMemoryKVStore(KVStore):
    """A thread-safe, versioned, TTL-aware dict-backed store (one shard).

    Expiry is lazy: entries are purged when read or via :meth:`sweep`.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or SystemClock()
        self._data: dict[Key, _Entry] = {}
        self._lock = threading.RLock()

    # -- internal helpers -------------------------------------------------

    def _live_entry(self, key: Key) -> _Entry | None:
        """Return the entry for ``key``, purging it if expired.  Lock held."""
        entry = self._data.get(key)
        if entry is None:
            return None
        if entry.expires_at is not None and self._clock.now() >= entry.expires_at:
            del self._data[key]
            return None
        return entry

    def _expiry(self, ttl: float | None) -> float | None:
        if ttl is None:
            return None
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        return self._clock.now() + ttl

    # -- KVStore API -------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        with self._lock:
            entry = self._live_entry(key)
            return default if entry is None else entry.value

    def get_strict(self, key: Key) -> Any:
        with self._lock:
            entry = self._live_entry(key)
            if entry is None:
                raise KeyNotFound(key)
            return entry.value

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        with self._lock:
            entry = self._live_entry(key)
            version = 1 if entry is None else entry.version + 1
            self._data[key] = _Entry(value, version, self._expiry(ttl))
            return version

    def delete(self, key: Key) -> bool:
        with self._lock:
            return self._data.pop(key, None) is not None

    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        with self._lock:
            entry = self._live_entry(key)
            current = default if entry is None else entry.value
            new_value = fn(current)
            version = 1 if entry is None else entry.version + 1
            expires_at = None if entry is None else entry.expires_at
            self._data[key] = _Entry(new_value, version, expires_at)
            return new_value

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        with self._lock:
            entry = self._live_entry(key)
            actual = 0 if entry is None else entry.version
            if actual != expected_version:
                raise CASConflict(key, expected_version, actual)
            version = actual + 1
            expires_at = None if entry is None else entry.expires_at
            self._data[key] = _Entry(value, version, expires_at)
            return version

    def version(self, key: Key) -> int:
        with self._lock:
            entry = self._live_entry(key)
            return 0 if entry is None else entry.version

    def mget(self, keys: Iterable[Key], default: Any = None) -> list[Any]:
        """Batch get under one lock acquisition (atomic snapshot)."""
        with self._lock:
            out = []
            for key in keys:
                entry = self._live_entry(key)
                out.append(default if entry is None else entry.value)
            return out

    def mput(
        self,
        items: Iterable[tuple[Key, Any]],
        ttl: float | None = None,
    ) -> list[int]:
        """Batch put under one lock acquisition (atomic batch)."""
        with self._lock:
            versions = []
            for key, value in items:
                entry = self._live_entry(key)
                version = 1 if entry is None else entry.version + 1
                self._data[key] = _Entry(value, version, self._expiry(ttl))
                versions.append(version)
            return versions

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return self._live_entry(key) is not None

    def __len__(self) -> int:
        with self._lock:
            self.sweep()
            return len(self._data)

    def keys(self) -> Iterator[Key]:
        with self._lock:
            now = self._clock.now()
            snapshot = [
                key
                for key, entry in self._data.items()
                if entry.expires_at is None or now < entry.expires_at
            ]
        return iter(snapshot)

    def sweep(self) -> int:
        """Eagerly purge expired entries; return how many were removed."""
        with self._lock:
            now = self._clock.now()
            dead = [
                key
                for key, entry in self._data.items()
                if entry.expires_at is not None and now >= entry.expires_at
            ]
            for key in dead:
                del self._data[key]
            return len(dead)

    def clear(self) -> None:
        """Remove every entry (used between benchmark rounds)."""
        with self._lock:
            self._data.clear()

    # -- checkpoint support ------------------------------------------------

    def snapshot_entries(self) -> list[EntrySnapshot]:
        """Exact capture: live entries with their versions and expiries."""
        with self._lock:
            now = self._clock.now()
            return [
                EntrySnapshot(key, entry.value, entry.version, entry.expires_at)
                for key, entry in self._data.items()
                if entry.expires_at is None or now < entry.expires_at
            ]

    def restore_entries(self, entries: Iterable[EntrySnapshot]) -> int:
        """Exact restore: reinstate versions and absolute expiries."""
        count = 0
        with self._lock:
            for entry in entries:
                self._data[entry.key] = _Entry(
                    entry.value, entry.version, entry.expires_at
                )
                count += 1
        return count
