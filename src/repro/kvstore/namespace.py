"""Namespaced views over a shared key-value store.

The Figure 2 topology keeps several logical tables in one physical KV store:
user vectors, video vectors, user histories, and similar-video lists.  A
:class:`Namespace` wraps a backing store and prefixes every key with a label
so the tables cannot collide, while still sharing the backing shards.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .store import Key, KVStore


class Namespace(KVStore):
    """A view of ``backing`` whose keys are transparently prefixed.

    Keys are wrapped as ``(prefix, key)`` tuples, so any hashable key stays
    usable and iteration can recover the original keys exactly.
    """

    def __init__(self, backing: KVStore, prefix: str) -> None:
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self._backing = backing
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def _wrap(self, key: Key) -> tuple[str, Key]:
        return (self._prefix, key)

    # -- delegation ---------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        return self._backing.get(self._wrap(key), default)

    def get_strict(self, key: Key) -> Any:
        return self._backing.get_strict(self._wrap(key))

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        return self._backing.put(self._wrap(key), value, ttl=ttl)

    def delete(self, key: Key) -> bool:
        return self._backing.delete(self._wrap(key))

    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        return self._backing.update(self._wrap(key), fn, default=default)

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        return self._backing.compare_and_set(self._wrap(key), value, expected_version)

    def version(self, key: Key) -> int:
        return self._backing.version(self._wrap(key))

    def mget(self, keys, default: Any = None) -> list[Any]:
        """Batch get: wraps every key, then delegates one batch call so a
        batch-capable backing store sees the whole batch at once."""
        return self._backing.mget(
            [self._wrap(key) for key in keys], default
        )

    def mput(self, items, ttl: float | None = None) -> list[int]:
        """Batch put with prefixed keys, delegated as one batch call."""
        return self._backing.mput(
            [(self._wrap(key), value) for key, value in items], ttl=ttl
        )

    def __contains__(self, key: Key) -> bool:
        return self._wrap(key) in self._backing

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[Key]:
        for key in self._backing.keys():
            if (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] == self._prefix
            ):
                yield key[1]
