"""Caching and write-combining decorators for KV stores.

§5.1 of the paper notes that because fields grouping sends all queries for
the same key to the same worker, that worker can apply "the combiner
technique and the cache technique" to cut KV-store traffic.  These two
classes are those techniques:

* :class:`ReadThroughCache` keeps the hottest keys in a local LRU so repeated
  reads of the same vector skip the shared store.
* :class:`WriteCombiner` buffers associative updates (counter increments,
  list merges) locally and flushes them in batches.

Both are *per-worker* objects: correctness under fields grouping comes from
the guarantee that no other worker touches the same keys, which is exactly
the invariant the topology tests assert.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterable, Iterator

from ..errors import KeyNotFound
from .store import EntrySnapshot, Key, KVStore

_MISSING = object()


class ReadThroughCache(KVStore):
    """An LRU read cache in front of a :class:`KVStore` — itself a store.

    Reads fill the cache; writes go through to the backing store *and*
    update the cache (write-through), so a worker always reads its own
    writes.  :meth:`invalidate` drops a key, e.g. when an external writer is
    known to have touched it.

    As a full :class:`KVStore`, the cache can be handed to any component
    that expects a store — the tiering pattern is a ``ReadThroughCache``
    over a :class:`~repro.kvstore.durable.DurableKVStore`: hot set in
    memory, full state on disk.  Versioning, iteration, and checkpoint
    capture always delegate to the backing store (the cache holds values
    only, never metadata).  TTL'd writes pass through but are *not*
    cached, because the cache does not track expiry.
    """

    def __init__(self, backing: KVStore, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._backing = backing
        self._capacity = capacity
        self._cache: OrderedDict[Key, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def backing(self) -> KVStore:
        return self._backing

    def get(self, key: Key, default: Any = None) -> Any:
        if key in self._cache:
            self._cache.move_to_end(key)
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        value = self._backing.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._insert(key, value)
        return value

    def get_strict(self, key: Key) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyNotFound(key)
        return value

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        version = self._backing.put(key, value, ttl=ttl)
        if ttl is None:
            self._insert(key, value)
        else:
            self._cache.pop(key, None)
        return version

    def delete(self, key: Key) -> bool:
        self._cache.pop(key, None)
        return self._backing.delete(key)

    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        new_value = self._backing.update(key, fn, default=default)
        self._insert(key, new_value)
        return new_value

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        version = self._backing.compare_and_set(key, value, expected_version)
        self._insert(key, value)
        return version

    def version(self, key: Key) -> int:
        return self._backing.version(key)

    def __contains__(self, key: Key) -> bool:
        return key in self._cache or key in self._backing

    def __len__(self) -> int:
        return len(self._backing)

    def keys(self) -> Iterator[Key]:
        return self._backing.keys()

    def mget(self, keys, default: Any = None) -> list[Any]:
        """Batch get: cache hits are served locally; all misses go to the
        backing store in a single :meth:`KVStore.mget` call and fill the
        cache.  Results follow input order (the ``mget`` contract)."""
        keys = list(keys)
        out: list[Any] = [default] * len(keys)
        miss_positions: list[int] = []
        for position, key in enumerate(keys):
            if key in self._cache:
                self._cache.move_to_end(key)
                self.hits += 1
                out[position] = self._cache[key]
            else:
                self.misses += 1
                miss_positions.append(position)
        if miss_positions:
            fetched = self._backing.mget(
                [keys[p] for p in miss_positions], _MISSING
            )
            for position, value in zip(miss_positions, fetched):
                if value is _MISSING:
                    continue
                self._insert(keys[position], value)
                out[position] = value
        return out

    def mput(
        self,
        items: Iterable[tuple[Key, Any]],
        ttl: float | None = None,
    ) -> list[int]:
        """Batch write-through: one backing ``mput``, then cache fill.
        Returns the backing store's new versions, in input order."""
        items = list(items)
        versions = self._backing.mput(items, ttl=ttl)
        for key, value in items:
            if ttl is None:
                self._insert(key, value)
            else:
                self._cache.pop(key, None)
        return versions

    def invalidate(self, key: Key) -> None:
        self._cache.pop(key, None)

    def clear(self) -> None:
        """Forget every cached value (the backing store is untouched)."""
        self._cache.clear()

    #: Protocol hook: tier-aware restores (:func:`repro.kvstore.durable
    #: .drop_caches`) call ``drop_cache()`` on every layer after mutating
    #: the backing store underneath it.
    drop_cache = clear

    # -- checkpoint support (always delegated: the backing store is the
    # -- source of truth; the cache holds no metadata) ---------------------

    def snapshot_entries(self) -> list[EntrySnapshot]:
        return self._backing.snapshot_entries()

    def restore_entries(self, entries: Iterable[EntrySnapshot]) -> int:
        self._cache.clear()
        return self._backing.restore_entries(entries)

    def _insert(self, key: Key, value: Any) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def cache_size(self) -> int:
        """How many values are currently cached (``len()`` reports the
        backing store, per the :class:`KVStore` contract)."""
        return len(self._cache)


class WriteCombiner:
    """Buffers associative updates and flushes them to the store in batches.

    ``combine(pending, increment)`` must be associative so that combining
    locally before writing is equivalent to writing each increment through
    ``apply(current, increment)``.  For plain counters both are ``+``.

    Flushing happens automatically every ``flush_every`` buffered updates,
    or explicitly via :meth:`flush`.
    """

    def __init__(
        self,
        backing: KVStore,
        combine: Callable[[Any, Any], Any],
        apply: Callable[[Any, Any], Any] | None = None,
        initial: Callable[[], Any] | None = None,
        flush_every: int = 64,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._backing = backing
        self._combine = combine
        self._apply = apply or combine
        self._initial = initial
        self._flush_every = flush_every
        self._pending: dict[Key, Any] = {}
        self._buffered = 0
        self.flushes = 0

    def add(self, key: Key, increment: Any) -> None:
        """Buffer ``increment`` for ``key``; may trigger an automatic flush."""
        if key in self._pending:
            self._pending[key] = self._combine(self._pending[key], increment)
        else:
            self._pending[key] = increment
        self._buffered += 1
        if self._buffered >= self._flush_every:
            self.flush()

    def flush(self) -> int:
        """Write all buffered updates through; return how many keys flushed."""
        flushed = len(self._pending)
        for key, delta in self._pending.items():

            def _merge(current: Any, d: Any = delta) -> Any:
                if current is _MISSING:
                    if self._initial is None:
                        return d
                    return self._apply(self._initial(), d)
                return self._apply(current, d)

            self._backing.update(key, _merge, default=_MISSING)
        self._pending.clear()
        self._buffered = 0
        if flushed:
            self.flushes += 1
        return flushed

    @property
    def pending_keys(self) -> int:
        return len(self._pending)
