"""Circuit-breaker protection for KV shards.

The paper's storage tier is a remote, distributed memory store (§5.1) — a
shard that starts timing out turns every read into a multi-millisecond
stall, and under peak load (0.1 M req/s, §6.2) those stalls alone sink the
serving tier.  :class:`BreakerKVStore` wraps any
:class:`~repro.kvstore.KVStore` with a
:class:`~repro.reliability.overload.CircuitBreaker`: after
``failure_threshold`` consecutive shard faults the breaker opens and every
subsequent operation raises :class:`~repro.errors.CircuitOpenError`
*immediately*, so the request router fails over to its fallback
recommender in microseconds instead of timing out per request.  Once the
reset timeout passes, half-open probe operations test the shard and close
the breaker on recovery.

Logical outcomes (:class:`~repro.errors.KeyNotFound`,
:class:`~repro.errors.CASConflict`) prove the shard is healthy and count
as successes; only infrastructure faults (e.g.
:class:`~repro.errors.TransientKVError` from a flaky shard) trip the
breaker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import CASConflict, CircuitOpenError, KeyNotFound
from .store import Key, KVStore

if TYPE_CHECKING:  # imported lazily to avoid a kvstore <-> reliability cycle
    from ..reliability.overload import CircuitBreaker


class BreakerKVStore(KVStore):
    """Wraps a store so shard faults trip a circuit breaker.

    Read-only metadata (``version``, ``__contains__``, ``__len__``,
    ``keys``, snapshots) bypasses the breaker — those never hit a slow
    remote path in this substrate and recovery/checkpoint code must keep
    working while the breaker is open.
    """

    def __init__(self, inner: KVStore, breaker: "CircuitBreaker") -> None:
        self.inner = inner
        self.breaker = breaker

    def _guarded(self, fn: Callable[[], Any]) -> Any:
        if not self.breaker.allow():
            raise CircuitOpenError(self.breaker.name)
        try:
            result = fn()
        except (KeyNotFound, CASConflict):
            # The shard answered; the *request* lost. Not a fault.
            self.breaker.record_success()
            raise
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    # -- KVStore API (breaker check, then delegate) ------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        return self._guarded(lambda: self.inner.get(key, default))

    def get_strict(self, key: Key) -> Any:
        return self._guarded(lambda: self.inner.get_strict(key))

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        return self._guarded(lambda: self.inner.put(key, value, ttl=ttl))

    def delete(self, key: Key) -> bool:
        return self._guarded(lambda: self.inner.delete(key))

    def update(
        self, key: Key, fn: Callable[[Any], Any], default: Any = None
    ) -> Any:
        return self._guarded(lambda: self.inner.update(key, fn, default=default))

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        return self._guarded(
            lambda: self.inner.compare_and_set(key, value, expected_version)
        )

    def mget(self, keys, default: Any = None) -> list[Any]:
        """Batch get behind one breaker admission: the whole batch counts
        as a single operation (one allow check, one success/failure)."""
        return self._guarded(lambda: self.inner.mget(keys, default))

    def mput(self, items, ttl: float | None = None) -> list[int]:
        """Batch put behind one breaker admission."""
        return self._guarded(lambda: self.inner.mput(items, ttl=ttl))

    def version(self, key: Key) -> int:
        return self.inner.version(key)

    def __contains__(self, key: Key) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> Iterator[Key]:
        return self.inner.keys()

    def snapshot_entries(self):
        return self.inner.snapshot_entries()

    def restore_entries(self, entries):
        return self.inner.restore_entries(entries)
