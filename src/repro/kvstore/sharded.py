"""Sharded key-value store — the "distributed" store of the paper, in-process.

Keys are routed to shards by :func:`repro.hashing.stable_bucket`, so a given
key always lives on the same shard (and therefore behind the same lock).
This mirrors the property the paper leans on in §5.1: a vector ``x_u`` or
``y_i`` can be read and written "by its corresponding key ... without
influencing other vectors", letting computation scale across workers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..clock import Clock
from ..hashing import stable_bucket
from .store import EntrySnapshot, InMemoryKVStore, Key, KVStore


class ShardedKVStore(KVStore):
    """A :class:`KVStore` composed of ``n_shards`` independent shards.

    Each shard is an :class:`InMemoryKVStore` with its own lock, so writes to
    keys on different shards never contend.  All single-key operations are
    delegated to the owning shard; whole-store iteration walks shards in
    order.
    """

    def __init__(self, n_shards: int = 16, clock: Clock | None = None) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._shards = [InMemoryKVStore(clock=clock) for _ in range(n_shards)]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_index(self, key: Key) -> int:
        """Return the index of the shard that owns ``key`` (stable)."""
        return stable_bucket(key, len(self._shards))

    def shard_for(self, key: Key) -> InMemoryKVStore:
        """Return the shard object that owns ``key``."""
        return self._shards[self.shard_index(key)]

    # -- delegation ---------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        return self.shard_for(key).get(key, default)

    def get_strict(self, key: Key) -> Any:
        return self.shard_for(key).get_strict(key)

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        return self.shard_for(key).put(key, value, ttl=ttl)

    def delete(self, key: Key) -> bool:
        return self.shard_for(key).delete(key)

    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        return self.shard_for(key).update(key, fn, default=default)

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        return self.shard_for(key).compare_and_set(key, value, expected_version)

    def version(self, key: Key) -> int:
        return self.shard_for(key).version(key)

    def mget(self, keys: Iterable[Key], default: Any = None) -> list[Any]:
        """Batch get: keys are grouped per shard, one :meth:`mget` per
        shard, and results are reassembled in input order."""
        keys = list(keys)
        groups: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.shard_index(key), []).append(position)
        out: list[Any] = [default] * len(keys)
        for shard_idx, positions in groups.items():
            values = self._shards[shard_idx].mget(
                [keys[p] for p in positions], default
            )
            for position, value in zip(positions, values):
                out[position] = value
        return out

    def mput(
        self,
        items: Iterable[tuple[Key, Any]],
        ttl: float | None = None,
    ) -> list[int]:
        """Batch put: one :meth:`mput` per owning shard, versions returned
        in input order."""
        items = list(items)
        groups: dict[int, list[int]] = {}
        for position, (key, _) in enumerate(items):
            groups.setdefault(self.shard_index(key), []).append(position)
        versions: list[int] = [0] * len(items)
        for shard_idx, positions in groups.items():
            shard_versions = self._shards[shard_idx].mput(
                [items[p] for p in positions], ttl=ttl
            )
            for position, version in zip(positions, shard_versions):
                versions[position] = version
        return versions

    def __contains__(self, key: Key) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def keys(self) -> Iterator[Key]:
        for shard in self._shards:
            yield from shard.keys()

    def sweep(self) -> int:
        """Purge expired entries on every shard; return the total removed."""
        return sum(shard.sweep() for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def shard_sizes(self) -> list[int]:
        """Per-shard entry counts — handy for checking key spread in tests."""
        return [len(shard) for shard in self._shards]

    # -- checkpoint support ------------------------------------------------

    def snapshot_entries(self) -> list[EntrySnapshot]:
        """Exact capture across all shards (shard by shard, not atomic
        across shards — checkpoint callers quiesce writers first)."""
        entries: list[EntrySnapshot] = []
        for shard in self._shards:
            entries.extend(shard.snapshot_entries())
        return entries

    def restore_entries(self, entries: Iterable[EntrySnapshot]) -> int:
        """Exact restore; each entry is routed to its owning shard, so a
        snapshot taken at one shard count restores correctly at another."""
        count = 0
        for entry in entries:
            self.shard_for(entry.key).restore_entries([entry])
            count += 1
        return count
