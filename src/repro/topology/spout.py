"""The action spout of Figure 2.

"The spout gets data from Tencent Video, parses the raw message, filters
the unqualified data tuples, and transforms data tuples to the next bolts"
(§5.1).  Our spout accepts either raw tab-separated log lines or already
constructed :class:`~repro.data.schema.UserAction` objects, counts and
drops malformed input, and emits tuples with explicit ``user`` / ``video``
fields so downstream groupings can route on them.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

from ..data.schema import UserAction
from ..errors import DataError
from ..storm import Spout, StreamTuple


class SharedSource:
    """A thread-safe iterator shared by all workers of a parallel spout.

    Each item is consumed exactly once across workers, so running the spout
    with parallelism > 1 does not replay the stream.
    """

    def __init__(self, source: Iterable) -> None:
        self._iter = iter(source)
        self._lock = threading.Lock()

    def __iter__(self) -> "SharedSource":
        return self

    def __next__(self):
        with self._lock:
            return next(self._iter)

#: Stream/fields layout of the spout's output tuples.
ACTION_FIELDS = ("user", "video", "action")


def action_tuple(action: UserAction) -> StreamTuple:
    """Wrap a :class:`UserAction` as the spout's output tuple."""
    return StreamTuple(
        {
            "user": action.user_id,
            "video": action.video_id,
            "action": action,
        }
    )


class ActionSpout(Spout):
    """Parses and emits user actions from an in-memory or file source.

    With ``parse=False`` the spout forwards every source item untouched as
    a ``{"raw": item}`` tuple — the mode used when a
    :class:`~repro.topology.bolts.SanitizeBolt` sits downstream, so that
    malformed lines reach the dead-letter queue instead of being silently
    dropped here.
    """

    def __init__(
        self, source: Iterable[str | UserAction], parse: bool = True
    ) -> None:
        self._source = source
        self._iter: Iterator[str | UserAction] | None = None
        self.parse = parse
        self.emitted = 0
        self.filtered = 0

    def open(self, ctx) -> None:
        self._iter = iter(self._source)

    def next_tuple(self) -> StreamTuple | None:
        assert self._iter is not None, "spout used before open()"
        for item in self._iter:
            if not self.parse:
                self.emitted += 1
                return StreamTuple({"raw": item})
            if isinstance(item, UserAction):
                action = item
            else:
                try:
                    action = UserAction.from_log_line(item)
                except DataError:
                    self.filtered += 1
                    continue
            self.emitted += 1
            return action_tuple(action)
        return None
