"""Wiring of the Figure 2 topology plus a serving view over its state.

:func:`build_recommendation_topology` assembles the spout and six bolts with
the groupings of the paper's figure:

* spout ``-> UserHistory``, ``ComputeMF``, ``GetItemPairs``: fields grouping
  by ``user`` (the figure's ``:user`` edge) so one worker owns each user's
  processing;
* ``ComputeMF -> MFStorage``: fields grouping by ``(kind, key)`` — the
  re-partitioning that makes vector updates single-writer;
* ``GetItemPairs -> ItemPairSim``: fields grouping by ``pair`` (queries for
  the same pair land on the same worker, enabling the cache/combiner
  optimizations of §5.1);
* ``ItemPairSim -> ResultStorage``: fields grouping by ``video`` (the
  figure's ``<video1#video2,sim>:video1`` edge).

All bolt workers share one KV store; because every piece of state lives
there, a :class:`~repro.core.recommender.RealtimeRecommender` constructed
over the same store acts as the serving layer for whatever the topology has
learned so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from ..clock import Clock, SystemClock
from ..config import ReproConfig
from ..core.actions import LogPlaytimeWeigher
from ..core.history import UserHistoryStore
from ..core.mf import MFModel
from ..core.recommender import RealtimeRecommender
from ..core.simtable import SimilarVideoTable
from ..core.variants import COMBINE_MODEL, ModelVariant
from ..data.schema import User, UserAction, Video
from ..kvstore import KVStore, ShardedKVStore
from ..reliability.deadletter import DeadLetterStore
from ..storm import Topology, TopologyBuilder
from .bolts import (
    SANITIZED_STREAM,
    ComputeMFBolt,
    GetItemPairsBolt,
    ItemPairSimBolt,
    MFStorageBolt,
    ResultStorageBolt,
    SanitizeBolt,
    UserHistoryBolt,
)
from .spout import ActionSpout, SharedSource

if TYPE_CHECKING:
    from ..obs import Observability

#: Component names, matching Figure 2 (plus the optional ingest-hygiene
#: stage in front of the three processing lines).
SPOUT = "spout"
SANITIZE = "sanitize"
USER_HISTORY = "user_history"
COMPUTE_MF = "compute_mf"
MF_STORAGE = "mf_storage"
GET_ITEM_PAIRS = "get_item_pairs"
ITEM_PAIR_SIM = "item_pair_sim"
RESULT_STORAGE = "result_storage"

DEFAULT_PARALLELISM: Mapping[str, int] = {
    SPOUT: 1,
    USER_HISTORY: 2,
    COMPUTE_MF: 2,
    MF_STORAGE: 2,
    GET_ITEM_PAIRS: 2,
    ITEM_PAIR_SIM: 2,
    RESULT_STORAGE: 2,
}


@dataclass(frozen=True, slots=True)
class BatchingConfig:
    """Opt-in micro-batching for the model-updating line (DESIGN.md
    "Model storage backends & batching").

    ``compute_mf`` / ``mf_storage`` bound how many tuples each worker
    buffers before flushing; ``1`` (the default) is strict per-tuple
    processing, byte-identical to the unbatched topology.  Buffers flush
    when full and again at end-of-stream via :meth:`Bolt.flush`, so no
    tuple is held past the run.  Trade-off: fewer store round-trips per
    tuple versus update latency of up to one batch and loss of a worker's
    unflushed buffer if it crashes mid-batch (WAL replay still covers the
    actions themselves).
    """

    compute_mf: int = 1
    mf_storage: int = 1

    def __post_init__(self) -> None:
        if self.compute_mf < 1:
            raise ValueError(
                f"compute_mf batch size must be >= 1, got {self.compute_mf}"
            )
        if self.mf_storage < 1:
            raise ValueError(
                f"mf_storage batch size must be >= 1, got {self.mf_storage}"
            )


@dataclass(frozen=True, slots=True)
class IngestConfig:
    """Configuration of the :class:`~repro.topology.bolts.SanitizeBolt`
    ingest-hygiene stage.

    ``parallelism`` defaults to 1 so the dedup window and watermark are a
    single consistent view of the stream; raise it only if approximate
    (per-worker) dedup is acceptable.
    """

    dedup_window_seconds: float = 3600.0
    max_lateness_seconds: float = 86_400.0
    dedup_max_keys: int = 65_536
    parallelism: int = 1


@dataclass
class RecommendationSystem:
    """Handles to the shared state behind a running topology."""

    store: KVStore
    videos: Mapping[str, Video]
    users: Mapping[str, User] = field(default_factory=dict)
    config: ReproConfig = field(default_factory=ReproConfig)
    variant: ModelVariant = COMBINE_MODEL
    clock: Clock = field(default_factory=SystemClock)
    dead_letters: DeadLetterStore | None = None
    obs: "Observability | None" = None

    def __post_init__(self) -> None:
        self.model = MFModel(self.config.mf, store=self.store)
        self.history = UserHistoryStore(store=self.store)
        self.table = SimilarVideoTable(
            self.videos,
            self.model,
            config=self.config.similarity,
            clock=self.clock,
            store=self.store,
        )
        self.weigher = LogPlaytimeWeigher(self.config.weights)

    def serving_recommender(
        self, enable_demographic: bool = False
    ) -> RealtimeRecommender:
        """A request-serving view over the topology's learned state.

        Shares the KV store, so everything the topology has processed is
        immediately visible.  Use its :meth:`recommend` only — feeding
        actions through both the topology and the recommender would train
        twice.
        """
        return RealtimeRecommender(
            self.videos,
            users=self.users,
            config=self.config,
            variant=self.variant,
            clock=self.clock,
            store=self.store,
            enable_demographic=enable_demographic,
            obs=self.obs,
        )


def build_recommendation_topology(
    source: Iterable[str | UserAction],
    videos: Mapping[str, Video],
    users: Mapping[str, User] | None = None,
    config: ReproConfig | None = None,
    variant: ModelVariant = COMBINE_MODEL,
    clock: Clock | None = None,
    store: KVStore | None = None,
    parallelism: Mapping[str, int] | None = None,
    ingest: IngestConfig | None = None,
    dead_letters: DeadLetterStore | None = None,
    obs: "Observability | None" = None,
    batching: BatchingConfig | None = None,
) -> tuple[Topology, RecommendationSystem]:
    """Assemble the paper's topology over a shared KV store.

    Returns the built topology (run it with a
    :class:`~repro.storm.LocalExecutor` or
    :class:`~repro.storm.ThreadedExecutor`) and the
    :class:`RecommendationSystem` handles for inspecting state and serving
    requests.

    With ``ingest`` set, a :class:`~repro.topology.bolts.SanitizeBolt`
    stage is inserted between the spout and the three processing lines:
    the spout forwards raw input untouched, and the sanitizer parses it,
    drops duplicates/late/malformed tuples into the system's
    :class:`~repro.reliability.deadletter.DeadLetterStore`
    (``system.dead_letters``; pass ``dead_letters`` to share one), and
    emits only clean actions downstream.
    """
    backing = store if store is not None else ShardedKVStore()
    if obs is not None:
        # One instrumented store feeds both the topology bolts and the
        # serving recommender built over the same state.
        backing = obs.instrument_store(backing)
    system = RecommendationSystem(
        store=backing,
        videos=videos,
        users=users or {},
        config=config or ReproConfig(),
        variant=variant,
        clock=clock or SystemClock(),
        # NB: an empty DeadLetterStore is falsy (it has __len__), so this
        # must be an identity check, not `dead_letters or DeadLetterStore()`.
        dead_letters=(
            (dead_letters if dead_letters is not None else DeadLetterStore())
            if ingest is not None
            else None
        ),
        obs=obs,
    )
    workers = dict(DEFAULT_PARALLELISM)
    workers.update(parallelism or {})
    batches = batching or BatchingConfig()

    builder = TopologyBuilder()
    shared_source = SharedSource(source)
    builder.set_spout(
        SPOUT,
        lambda: ActionSpout(shared_source, parse=ingest is None),
        parallelism=workers[SPOUT],
    )
    if ingest is not None:
        dlq = system.dead_letters
        builder.set_bolt(
            SANITIZE,
            lambda: SanitizeBolt(
                dlq,
                dedup_window_seconds=ingest.dedup_window_seconds,
                max_lateness_seconds=ingest.max_lateness_seconds,
                dedup_max_keys=ingest.dedup_max_keys,
            ),
            parallelism=workers.get(SANITIZE, ingest.parallelism),
        ).shuffle_grouping(SPOUT)
        action_source, action_stream = SANITIZE, SANITIZED_STREAM
    else:
        action_source, action_stream = SPOUT, "default"
    builder.set_bolt(
        USER_HISTORY,
        lambda: UserHistoryBolt(system.history),
        parallelism=workers[USER_HISTORY],
    ).fields_grouping(action_source, ["user"], stream=action_stream)
    builder.set_bolt(
        COMPUTE_MF,
        lambda: ComputeMFBolt(
            system.model,
            system.videos,
            weigher=system.weigher,
            variant=system.variant,
            online=system.config.online,
            tracer=obs.tracer if obs is not None else None,
            batch_size=batches.compute_mf,
        ),
        parallelism=workers[COMPUTE_MF],
    ).fields_grouping(action_source, ["user"], stream=action_stream)
    mf_storage = builder.set_bolt(
        MF_STORAGE,
        lambda: MFStorageBolt(system.model, batch_size=batches.mf_storage),
        parallelism=workers[MF_STORAGE],
    )
    mf_storage.fields_grouping(COMPUTE_MF, ["kind", "key"], stream="user_vec")
    mf_storage.fields_grouping(COMPUTE_MF, ["kind", "key"], stream="video_vec")
    builder.set_bolt(
        GET_ITEM_PAIRS,
        lambda: GetItemPairsBolt(system.history),
        parallelism=workers[GET_ITEM_PAIRS],
    ).fields_grouping(action_source, ["user"], stream=action_stream)
    builder.set_bolt(
        ITEM_PAIR_SIM,
        lambda: ItemPairSimBolt(system.table),
        parallelism=workers[ITEM_PAIR_SIM],
    ).fields_grouping(GET_ITEM_PAIRS, ["pair"], stream="pairs")
    builder.set_bolt(
        RESULT_STORAGE,
        lambda: ResultStorageBolt(system.table),
        parallelism=workers[RESULT_STORAGE],
    ).fields_grouping(ITEM_PAIR_SIM, ["video"], stream="sims")

    return builder.build(), system
