"""The six bolts of the Figure 2 topology (paper §5.1).

Three processing lines fan out from the spout:

1. ``ComputeMF -> MFStorage`` — model updating.  ``ComputeMF`` reads the
   current vectors, computes the single-step SGD update (Algorithm 1) and
   emits the *new* vectors re-partitioned by their storage key;
   ``MFStorage`` — the only writer of MF parameters — persists them.  The
   fields grouping between the two guarantees a single worker per key, so
   vector updates are atomic without locks.
2. ``UserHistory`` — records each user's behaviour history.
3. ``GetItemPairs -> ItemPairSim -> ResultStorage`` — similar-video table
   maintenance: pair the acted-on video with the user's recent history,
   score each pair (Eq. 12's raw fusion), store the per-video top-K lists.

Every bolt instance is one worker's private object; all shared state lives
in the KV store, exactly as in the production design.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

from ..config import OnlineConfig
from ..core.actions import ActionWeigher, LogPlaytimeWeigher
from ..core.feedback import extract_feedback
from ..core.history import UserHistoryStore
from ..core.mf import MFModel
from ..core.simtable import SimilarVideoTable, generate_pairs
from ..core.variants import COMBINE_MODEL, ModelVariant
from ..data.schema import UserAction, Video
from ..data.stream import ENGAGEMENT_ACTIONS
from ..errors import DataError
from ..reliability.deadletter import (
    REASON_DUPLICATE,
    REASON_LATE,
    REASON_MALFORMED,
    DeadLetterStore,
)
from ..storm import Bolt, Collector, StreamTuple

if TYPE_CHECKING:
    from ..obs import Tracer

#: Stream names used between the bolts.
USER_VEC_STREAM = "user_vec"
VIDEO_VEC_STREAM = "video_vec"
PAIR_STREAM = "pairs"
SIM_STREAM = "sims"
SANITIZED_STREAM = "actions"


class SanitizeBolt(Bolt):
    """Ingest hygiene at the head of the topology (§5.1's "filters the
    unqualified data tuples", made observable).

    Consumes raw spout tuples (``{"raw": <log line | UserAction>}``) and
    emits clean, canonical action tuples on :data:`SANITIZED_STREAM`.
    Three defect classes are intercepted and routed to the
    :class:`~repro.reliability.deadletter.DeadLetterStore` with exact
    reason codes instead of reaching (and skewing) the model:

    * **malformed** — unparseable log lines (``DataError``);
    * **duplicate** — an identical ``(user, video, action, timestamp,
      view_time)`` event inside the bounded dedup window — e.g. an
      at-least-once redelivery upstream — which would otherwise apply the
      same SGD step twice;
    * **late** — events older than ``max_lateness_seconds`` behind the
      watermark (the maximum event time seen), whose damping factor
      ``2^(-dt/xi)`` would be computed against long-stale state.

    Deterministic: the watermark and the dedup window advance on *event*
    time only, never wall time.  The dedup window is bounded both in time
    (``dedup_window_seconds``) and in entries (``dedup_max_keys``, FIFO
    eviction), so memory cannot grow with the stream.
    """

    def __init__(
        self,
        dead_letters: DeadLetterStore,
        dedup_window_seconds: float = 3600.0,
        max_lateness_seconds: float = 86_400.0,
        dedup_max_keys: int = 65_536,
    ) -> None:
        if dedup_window_seconds < 0:
            raise ValueError("dedup_window_seconds must be >= 0")
        if max_lateness_seconds < 0:
            raise ValueError("max_lateness_seconds must be >= 0")
        if dedup_max_keys < 1:
            raise ValueError("dedup_max_keys must be >= 1")
        self.dead_letters = dead_letters
        self.dedup_window_seconds = dedup_window_seconds
        self.max_lateness_seconds = max_lateness_seconds
        self.dedup_max_keys = dedup_max_keys
        self.watermark = float("-inf")
        self.accepted = 0
        self.rejected = 0
        self._seen: OrderedDict[tuple, float] = OrderedDict()

    def _reject(self, reason: str, payload, detail: str) -> None:
        self.rejected += 1
        self.dead_letters.add(reason, payload, detail)

    def _evict(self) -> None:
        horizon = self.watermark - self.dedup_window_seconds
        while self._seen:
            _, ts = next(iter(self._seen.items()))
            if ts >= horizon and len(self._seen) <= self.dedup_max_keys:
                break
            self._seen.popitem(last=False)

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        raw = tup["raw"] if "raw" in tup else tup["action"]
        if isinstance(raw, UserAction):
            action = raw
        else:
            try:
                action = UserAction.from_log_line(raw)
            except DataError as exc:
                self._reject(REASON_MALFORMED, raw, str(exc))
                return

        if (
            self.watermark != float("-inf")
            and action.timestamp < self.watermark - self.max_lateness_seconds
        ):
            self._reject(
                REASON_LATE,
                action,
                f"timestamp {action.timestamp:.3f} is "
                f"{self.watermark - action.timestamp:.3f}s behind the "
                f"watermark (max lateness {self.max_lateness_seconds:.0f}s)",
            )
            return

        key = (
            action.user_id,
            action.video_id,
            action.action.value,
            action.timestamp,
            action.view_time,
        )
        if key in self._seen:
            self._reject(
                REASON_DUPLICATE,
                action,
                "identical event already seen inside the dedup window",
            )
            return

        self.watermark = max(self.watermark, action.timestamp)
        self._seen[key] = action.timestamp
        self._evict()
        self.accepted += 1
        collector.emit(
            {
                "user": action.user_id,
                "video": action.video_id,
                "action": action,
            },
            stream=SANITIZED_STREAM,
        )


class ComputeMFBolt(Bolt):
    """Computes Algorithm 1's new parameters and emits them keyed for
    storage.  Never writes vectors itself (``persist_init=False``).

    ``batch_size > 1`` turns on opt-in micro-batching: actions buffer in
    the worker and are trained through one
    :class:`~repro.core.mf.MFBatchSession` per flush (one batched read,
    one ``mu`` fold), with the new vectors emitted at flush time.  The SGD
    arithmetic replays sequentially through the overlay, so the emitted
    parameters match the unbatched path; what changes is write latency
    (downstream sees updates per flush, not per tuple) and crash exposure
    (a restarted worker loses its buffered, not-yet-flushed actions — the
    WAL/replay path still covers them).  The default ``batch_size=1`` is
    exactly the original per-tuple behaviour.
    """

    def __init__(
        self,
        model: MFModel,
        videos: Mapping[str, Video],
        weigher: ActionWeigher | None = None,
        variant: ModelVariant = COMBINE_MODEL,
        online: OnlineConfig | None = None,
        tracer: "Tracer | None" = None,
        batch_size: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.videos = videos
        self.weigher = weigher or LogPlaytimeWeigher()
        self.variant = variant
        self.online = online or OnlineConfig()
        self.tracer = tracer
        self.batch_size = batch_size
        self._pending: list[UserAction] = []

    def _eta(self, feedback) -> float:
        if self.variant.adjustable:
            eta = self.online.eta0 + self.online.alpha * feedback.confidence
        else:
            eta = self.online.eta0
        return min(eta, self.online.max_eta)

    def _emit_update(self, update, collector: Collector) -> None:
        collector.emit(
            {
                "kind": "user",
                "key": update.user_id,
                "vector": update.x_u,
                "bias": update.b_u,
            },
            stream=USER_VEC_STREAM,
        )
        collector.emit(
            {
                "kind": "video",
                "key": update.video_id,
                "vector": update.y_i,
                "bias": update.b_i,
            },
            stream=VIDEO_VEC_STREAM,
        )

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        action: UserAction = tup["action"]
        if self.batch_size > 1:
            self._pending.append(action)
            if len(self._pending) >= self.batch_size:
                self._run_batch(collector)
            return
        try:
            feedback = extract_feedback(
                action,
                self.weigher,
                self.variant.rating_mode,
                self.videos.get(action.video_id),
            )
        except DataError:
            return  # unqualified tuple: PLAYTIME without known duration
        self.model.observe_rating(feedback.rating)
        if not feedback.is_positive:
            return
        if self.tracer is not None and self.tracer.current_span() is not None:
            with self.tracer.span("trainer.update"):
                self._update(action, feedback, collector)
        else:
            self._update(action, feedback, collector)

    def flush(self, collector: Collector) -> None:
        if self.batch_size > 1:
            self._run_batch(collector)

    def _run_batch(self, collector: Collector) -> None:
        if not self._pending:
            return
        actions, self._pending = self._pending, []
        feedbacks = []
        for action in actions:
            try:
                feedback = extract_feedback(
                    action,
                    self.weigher,
                    self.variant.rating_mode,
                    self.videos.get(action.video_id),
                )
            except DataError:
                feedback = None  # unqualified tuple, same as scalar path
            feedbacks.append(feedback)
        session = self.model.batch_session(
            (
                action.user_id
                for action, feedback in zip(actions, feedbacks)
                if feedback is not None and feedback.is_positive
            ),
            (
                action.video_id
                for action, feedback in zip(actions, feedbacks)
                if feedback is not None and feedback.is_positive
            ),
        )
        for action, feedback in zip(actions, feedbacks):
            if feedback is None:
                continue
            session.observe_rating(feedback.rating)
            if not feedback.is_positive:
                continue
            update = session.sgd_step(
                action.user_id,
                action.video_id,
                feedback.rating,
                self._eta(feedback),
            )
            self._emit_update(update, collector)
        # Only the mu fold is committed here: MFStorage stays the single
        # writer of parameters, fed by the emissions above.
        session.commit(params=False)

    def _update(self, action, feedback, collector: Collector) -> None:
        update = self.model.compute_update(
            action.user_id,
            action.video_id,
            feedback.rating,
            self._eta(feedback),
            persist_init=False,
        )
        self._emit_update(update, collector)


class MFStorageBolt(Bolt):
    """The single writer of MF parameters (per fields-grouped key).

    With ``batch_size > 1`` incoming parameter tuples buffer and land in
    one :meth:`~repro.core.mf.MFModel.put_params_many` per flush — one
    batched store write per kind instead of one put per tuple.  Ordering
    within the buffer is preserved (later tuples win, as sequential puts
    would), and fields grouping still guarantees this worker is the only
    writer of its keys.  Default ``batch_size=1`` writes per tuple.
    """

    def __init__(self, model: MFModel, batch_size: int = 1) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = batch_size
        self.writes = 0
        self._pending: list[tuple[str, str, object, float]] = []

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        if self.batch_size > 1:
            self._pending.append(
                (tup["kind"], tup["key"], tup["vector"], tup["bias"])
            )
            if len(self._pending) >= self.batch_size:
                self._run_batch()
            return
        if tup["kind"] == "user":
            self.model.put_user(tup["key"], tup["vector"], tup["bias"])
        else:
            self.model.put_video(tup["key"], tup["vector"], tup["bias"])
        self.writes += 1

    def flush(self, collector: Collector) -> None:
        if self.batch_size > 1:
            self._run_batch()

    def _run_batch(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.model.put_params_many(batch)
        self.writes += len(batch)


class UserHistoryBolt(Bolt):
    """Records user behaviour histories in the KV store."""

    def __init__(self, history: UserHistoryStore) -> None:
        self.history = history

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        self.history.record(tup["action"])


class GetItemPairsBolt(Bolt):
    """Generates ``<video1#video2>`` pair tuples from user histories.

    Pairs the acted-on video with the user's *other* recent videos; the
    user's own history bolt runs on the same fields-grouped worker set, so
    by Figure 2's wiring the history this bolt reads is that user's.
    """

    def __init__(
        self, history: UserHistoryStore, max_pairs: int = 20
    ) -> None:
        self.history = history
        self.max_pairs = max_pairs

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        action: UserAction = tup["action"]
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        recent = self.history.recent(action.user_id)
        for video_i, video_j in generate_pairs(
            action.video_id, recent, limit=self.max_pairs
        ):
            key = f"{min(video_i, video_j)}#{max(video_i, video_j)}"
            collector.emit(
                {
                    "pair": key,
                    "video_i": video_i,
                    "video_j": video_j,
                    "ts": action.timestamp,
                },
                stream=PAIR_STREAM,
            )


class ItemPairSimBolt(Bolt):
    """Scores pair tuples with Eq. 12's raw fusion and emits directed
    ``<video, other, sim>`` tuples keyed by the video whose list changes."""

    def __init__(self, table: SimilarVideoTable) -> None:
        self.table = table

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        raw = self.table.score_pair(tup["video_i"], tup["video_j"])
        if raw is None:
            return
        for video, other in (
            (tup["video_i"], tup["video_j"]),
            (tup["video_j"], tup["video_i"]),
        ):
            collector.emit(
                {
                    "video": video,
                    "other": other,
                    "sim": raw,
                    "ts": tup["ts"],
                },
                stream=SIM_STREAM,
            )


class ResultStorageBolt(Bolt):
    """Maintains the per-video top-K similar lists (single writer per
    video key, again via fields grouping)."""

    def __init__(self, table: SimilarVideoTable) -> None:
        self.table = table
        self.writes = 0

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        self.table.insert_scored(
            tup["video"], tup["other"], tup["sim"], tup["ts"]
        )
        self.writes += 1
