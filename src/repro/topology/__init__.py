"""The paper's Figure 2 recommendation topology on the Storm substrate."""

from .bolts import (
    PAIR_STREAM,
    SIM_STREAM,
    USER_VEC_STREAM,
    VIDEO_VEC_STREAM,
    ComputeMFBolt,
    GetItemPairsBolt,
    ItemPairSimBolt,
    MFStorageBolt,
    ResultStorageBolt,
    UserHistoryBolt,
)
from .pipeline import (
    COMPUTE_MF,
    DEFAULT_PARALLELISM,
    GET_ITEM_PAIRS,
    ITEM_PAIR_SIM,
    MF_STORAGE,
    RESULT_STORAGE,
    SPOUT,
    USER_HISTORY,
    RecommendationSystem,
    build_recommendation_topology,
)
from .spout import ActionSpout, SharedSource, action_tuple

__all__ = [
    "ActionSpout",
    "SharedSource",
    "action_tuple",
    "ComputeMFBolt",
    "MFStorageBolt",
    "UserHistoryBolt",
    "GetItemPairsBolt",
    "ItemPairSimBolt",
    "ResultStorageBolt",
    "USER_VEC_STREAM",
    "VIDEO_VEC_STREAM",
    "PAIR_STREAM",
    "SIM_STREAM",
    "build_recommendation_topology",
    "RecommendationSystem",
    "DEFAULT_PARALLELISM",
    "SPOUT",
    "USER_HISTORY",
    "COMPUTE_MF",
    "MF_STORAGE",
    "GET_ITEM_PAIRS",
    "ITEM_PAIR_SIM",
    "RESULT_STORAGE",
]
