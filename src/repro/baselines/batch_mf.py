"""Offline batch-trained MF — the "traditional" mode the paper improves on.

§3.1's conventional training: accumulate ratings, retrain with multi-pass
SGD at regular intervals (the paper's critique: "most of the recommendation
models are offline and the model training is carried out at regular time
intervals", so they miss users' instant interests).  Included as the direct
ablation partner of the online trainer: same MF core, different cadence.

Serving mirrors the real-time system's candidate strategy, but the
similar-video tables are rebuilt only at retrain time from the batch
vectors — recommendations cannot reflect anything that happened since.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from ..config import ActionWeightConfig, MFConfig
from ..core.actions import LogPlaytimeWeigher
from ..core.history import UserHistoryStore
from ..core.mf import MFModel
from ..data.schema import UserAction, Video
from ..data.stream import ENGAGEMENT_ACTIONS


class BatchMFRecommender:
    """MF retrained from scratch at fixed intervals; stale in between."""

    def __init__(
        self,
        videos: Mapping[str, Video] | None = None,
        mf_config: MFConfig | None = None,
        weights: ActionWeightConfig | None = None,
        epochs: int = 8,
        eta: float = 0.02,
        exclude_watched: bool = True,
    ) -> None:
        self.videos = videos or {}
        self.mf_config = mf_config or MFConfig()
        self.weigher = LogPlaytimeWeigher(weights)
        self.epochs = epochs
        self.eta = eta
        self.exclude_watched = exclude_watched
        self.history = UserHistoryStore()
        self.model = MFModel(self.mf_config)
        # (user, video) -> max confidence seen; ratings are binary per Eq. 7.
        self._confidence: dict[tuple[str, str], float] = {}
        self.trained_at: float | None = None

    def observe(self, action: UserAction) -> None:
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        video = self.videos.get(action.video_id)
        try:
            weight = self.weigher.weight(action, video)
        except Exception:
            return
        if weight <= 0:
            return
        key = (action.user_id, action.video_id)
        self._confidence[key] = max(self._confidence.get(key, 0.0), weight)
        self.history.record(action)

    def retrain(self, now: float) -> None:
        """Full batch SGD over all accumulated (binary) ratings."""
        if not self._confidence:
            return
        ratings = [
            (user_id, video_id, 1.0)
            for (user_id, video_id) in self._confidence
        ]
        self.model = MFModel(self.mf_config)
        self.model.fit_batch(ratings, epochs=self.epochs, eta=self.eta)
        self.trained_at = now

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        top_n = n if n is not None else 10
        if self.trained_at is None or self.model.user_vector(user_id) is None:
            return []
        exclude: set[str] = set()
        if self.exclude_watched:
            exclude = self.history.watched(user_id)
        if current_video is not None:
            exclude.add(current_video)
        candidates = [
            video_id
            for video_id in self.model.known_videos()
            if video_id not in exclude
        ]
        if not candidates:
            return []
        scores = self.model.predict_many(user_id, candidates)
        ranked = sorted(
            zip(candidates, scores), key=lambda kv: (-kv[1], kv[0])
        )
        return [video_id for video_id, _ in ranked[:top_n]]

    def ratings_by_user(self) -> dict[str, list[str]]:
        """The accumulated positive interactions per user (for tests)."""
        out: dict[str, list[str]] = defaultdict(list)
        for user_id, video_id in self._confidence:
            out[user_id].append(video_id)
        return dict(out)
