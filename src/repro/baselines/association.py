"""The *AR* baseline (paper §6.2): association-rule recommendation, daily
batch training.

Mines pairwise rules ``i -> j`` from per-user engagement baskets: a basket
is the set of videos one user engaged with inside one session window.  A
rule's score is its confidence ``P(j | i)``; recommendation aggregates the
confidences of rules firing from the user's recent videos, weighted by rule
support, ranking the consequents.  Like the production comparator the model
"is trained in batch mode for every day": :meth:`retrain` rebuilds the rule
set from all actions accumulated so far.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import combinations

from ..core.history import UserHistoryStore
from ..data.schema import UserAction
from ..data.stream import ENGAGEMENT_ACTIONS


class AssociationRuleRecommender:
    """Pairwise association rules over session baskets."""

    def __init__(
        self,
        min_support: int = 2,
        min_confidence: float = 0.05,
        session_gap: float = 1800.0,
        max_rules_per_video: int = 50,
        exclude_watched: bool = True,
    ) -> None:
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        if not 0 <= min_confidence <= 1:
            raise ValueError("min_confidence must be in [0, 1]")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.session_gap = session_gap
        self.max_rules_per_video = max_rules_per_video
        self.exclude_watched = exclude_watched
        self.history = UserHistoryStore()
        self._log: list[UserAction] = []
        # antecedent -> list of (consequent, confidence * support weight)
        self._rules: dict[str, list[tuple[str, float]]] = {}
        self.trained_at: float | None = None

    # ------------------------------------------------------------------
    # Ingestion: batch models just accumulate the log
    # ------------------------------------------------------------------

    def observe(self, action: UserAction) -> None:
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        self._log.append(action)
        self.history.record(action)

    # ------------------------------------------------------------------
    # Batch training
    # ------------------------------------------------------------------

    def _baskets(self) -> list[set[str]]:
        """Sessionise the accumulated log into engagement baskets."""
        by_user: dict[str, list[UserAction]] = defaultdict(list)
        for action in self._log:
            by_user[action.user_id].append(action)
        baskets: list[set[str]] = []
        for actions in by_user.values():
            actions.sort(key=lambda a: a.timestamp)
            current: set[str] = set()
            last_ts: float | None = None
            for action in actions:
                if last_ts is not None and action.timestamp - last_ts > self.session_gap:
                    if len(current) >= 2:
                        baskets.append(current)
                    current = set()
                current.add(action.video_id)
                last_ts = action.timestamp
            if len(current) >= 2:
                baskets.append(current)
        return baskets

    def retrain(self, now: float) -> None:
        """Mine the rule set from scratch over all accumulated actions."""
        baskets = self._baskets()
        item_count: Counter[str] = Counter()
        pair_count: Counter[tuple[str, str]] = Counter()
        for basket in baskets:
            for video in basket:
                item_count[video] += 1
            for i, j in combinations(sorted(basket), 2):
                pair_count[(i, j)] += 1

        rules: dict[str, list[tuple[str, float]]] = defaultdict(list)
        for (i, j), count in pair_count.items():
            if count < self.min_support:
                continue
            conf_ij = count / item_count[i]
            conf_ji = count / item_count[j]
            if conf_ij >= self.min_confidence:
                rules[i].append((j, conf_ij))
            if conf_ji >= self.min_confidence:
                rules[j].append((i, conf_ji))
        for antecedent in rules:
            rules[antecedent].sort(key=lambda pair: (-pair[1], pair[0]))
            del rules[antecedent][self.max_rules_per_video :]
        self._rules = dict(rules)
        self.trained_at = now

    @property
    def n_rules(self) -> int:
        return sum(len(v) for v in self._rules.values())

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        top_n = n if n is not None else 10
        seeds = (
            [current_video]
            if current_video is not None
            else self.history.recent(user_id, 5)
        )
        exclude: set[str] = set(seeds)
        if self.exclude_watched:
            exclude |= self.history.watched(user_id)
        scores: dict[str, float] = defaultdict(float)
        for seed in seeds:
            for consequent, confidence in self._rules.get(seed, ()):
                if consequent not in exclude:
                    scores[consequent] += confidence
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [video_id for video_id, _ in ranked[:top_n]]
