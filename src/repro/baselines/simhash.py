"""The *SimHash* baseline (paper §6.2): user-based CF with SimHash
bucketing, trained offline at regular intervals.

Each user's profile is the weighted set of videos they engaged with.  A
64-bit SimHash signature (Charikar's technique, the paper's ref [4])
summarises the profile; locality-sensitive banding over the signature
buckets similar users together so neighbour search never scans the whole
user base.  Recommendation scores a video by the summed signature
similarity of the neighbours who watched it.
"""

from __future__ import annotations

import hashlib
from collections import Counter, defaultdict

from ..core.history import UserHistoryStore
from ..data.schema import UserAction
from ..data.stream import ENGAGEMENT_ACTIONS

SIGNATURE_BITS = 64


def token_hash(token: str) -> int:
    """Stable 64-bit hash of a video id."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def simhash(weighted_tokens: dict[str, float]) -> int:
    """Charikar SimHash of a weighted token set (64 bits).

    Similar sets produce signatures with small Hamming distance.
    """
    if not weighted_tokens:
        return 0
    acc = [0.0] * SIGNATURE_BITS
    for token, weight in weighted_tokens.items():
        bits = token_hash(token)
        for position in range(SIGNATURE_BITS):
            if bits & (1 << position):
                acc[position] += weight
            else:
                acc[position] -= weight
    signature = 0
    for position, value in enumerate(acc):
        if value > 0:
            signature |= 1 << position
    return signature


def hamming_similarity(a: int, b: int) -> float:
    """``1 - hamming_distance/64`` — the SimHash similarity estimate."""
    return 1.0 - bin(a ^ b).count("1") / SIGNATURE_BITS


class SimHashCFRecommender:
    """User-based CF over SimHash LSH buckets, batch retrained."""

    def __init__(
        self,
        bands: int = 8,
        max_neighbors: int = 50,
        min_similarity: float = 0.55,
        exclude_watched: bool = True,
    ) -> None:
        if SIGNATURE_BITS % bands != 0:
            raise ValueError(
                f"bands must divide {SIGNATURE_BITS}, got {bands}"
            )
        self.bands = bands
        self.band_bits = SIGNATURE_BITS // bands
        self.max_neighbors = max_neighbors
        self.min_similarity = min_similarity
        self.exclude_watched = exclude_watched
        self.history = UserHistoryStore()
        self._profiles: dict[str, Counter[str]] = defaultdict(Counter)
        self._signatures: dict[str, int] = {}
        self._buckets: dict[tuple[int, int], set[str]] = {}
        self.trained_at: float | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def observe(self, action: UserAction) -> None:
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        self._profiles[action.user_id][action.video_id] += 1
        self.history.record(action)

    # ------------------------------------------------------------------
    # Batch training
    # ------------------------------------------------------------------

    def _band_keys(self, signature: int) -> list[tuple[int, int]]:
        mask = (1 << self.band_bits) - 1
        return [
            (band, (signature >> (band * self.band_bits)) & mask)
            for band in range(self.bands)
        ]

    def retrain(self, now: float) -> None:
        """Recompute every user's signature and rebuild the LSH buckets."""
        self._signatures = {
            user_id: simhash(dict(profile))
            for user_id, profile in self._profiles.items()
        }
        buckets: dict[tuple[int, int], set[str]] = defaultdict(set)
        for user_id, signature in self._signatures.items():
            for key in self._band_keys(signature):
                buckets[key].add(user_id)
        self._buckets = dict(buckets)
        self.trained_at = now

    def neighbors(self, user_id: str) -> list[tuple[str, float]]:
        """Bucket-mates of ``user_id`` ranked by signature similarity."""
        signature = self._signatures.get(user_id)
        if signature is None:
            return []
        candidates: set[str] = set()
        for key in self._band_keys(signature):
            candidates |= self._buckets.get(key, set())
        candidates.discard(user_id)
        scored = [
            (other, hamming_similarity(signature, self._signatures[other]))
            for other in candidates
        ]
        scored = [
            (other, sim) for other, sim in scored if sim >= self.min_similarity
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[: self.max_neighbors]

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        top_n = n if n is not None else 10
        exclude: set[str] = set()
        if self.exclude_watched:
            exclude = set(self._profiles.get(user_id, ()))
        if current_video is not None:
            exclude.add(current_video)
        scores: dict[str, float] = defaultdict(float)
        for neighbor, similarity in self.neighbors(user_id):
            for video_id, count in self._profiles[neighbor].items():
                if video_id not in exclude:
                    scores[video_id] += similarity * count
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [video_id for video_id, _ in ranked[:top_n]]
