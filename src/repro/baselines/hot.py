"""The *Hot* baseline (paper §6.2): most-popular videos, in real time.

"A simple but powerful method, where the computation is in real-time."
Popularity decays exponentially so the list tracks what is hot *now*; the
user's own watched videos are excluded from their list.
"""

from __future__ import annotations

from ..clock import SECONDS_PER_DAY, Clock, SystemClock
from ..core.demographic import HotVideoTracker
from ..core.history import UserHistoryStore
from ..data.schema import UserAction
from ..data.stream import ENGAGEMENT_ACTIONS

_GLOBAL = "__all__"


class HotRecommender:
    """Real-time decayed global popularity."""

    def __init__(
        self,
        half_life: float = SECONDS_PER_DAY,
        max_tracked: int = 1000,
        clock: Clock | None = None,
        exclude_watched: bool = True,
    ) -> None:
        self.clock = clock or SystemClock()
        self.tracker = HotVideoTracker(
            half_life=half_life, max_tracked=max_tracked, clock=self.clock
        )
        self.history = UserHistoryStore()
        self.exclude_watched = exclude_watched

    def observe(self, action: UserAction) -> None:
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        self.tracker.record(
            _GLOBAL, action.video_id, weight=1.0, now=action.timestamp
        )
        self.history.record(action)

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        top_n = n if n is not None else 10
        timestamp = self.clock.now() if now is None else now
        exclude: set[str] = set()
        if self.exclude_watched:
            exclude = self.history.watched(user_id)
        if current_video is not None:
            exclude.add(current_video)
        # Over-fetch to survive the exclusion filter.
        ranked = self.tracker.hot(_GLOBAL, top_n + len(exclude), now=timestamp)
        picks = [vid for vid, _ in ranked if vid not in exclude]
        return picks[:top_n]
