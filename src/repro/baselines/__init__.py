"""Baseline recommenders the paper compares against (§6.2, related work).

* :class:`HotRecommender` — real-time decayed popularity ("Hot");
* :class:`AssociationRuleRecommender` — daily-batch association rules ("AR");
* :class:`SimHashCFRecommender` — offline user-based CF with SimHash
  bucketing ("SimHash");
* :class:`ItemCFRecommender` — incremental item-based CF with
  confidence-as-rating (ref [17]);
* :class:`BatchMFRecommender` — interval-retrained offline MF (the
  traditional mode of §3.1).
"""

from .association import AssociationRuleRecommender
from .base import BatchRetrainable, Recommender
from .batch_mf import BatchMFRecommender
from .hot import HotRecommender
from .itemcf import ItemCFRecommender
from .simhash import (
    SIGNATURE_BITS,
    SimHashCFRecommender,
    hamming_similarity,
    simhash,
    token_hash,
)

__all__ = [
    "Recommender",
    "BatchRetrainable",
    "HotRecommender",
    "AssociationRuleRecommender",
    "SimHashCFRecommender",
    "ItemCFRecommender",
    "BatchMFRecommender",
    "simhash",
    "token_hash",
    "hamming_similarity",
    "SIGNATURE_BITS",
]
