"""Common interface for all recommenders compared in the experiments.

The A/B harness and the offline protocol drive every method — the paper's
``rMF`` and the production comparators of §6.2 — through this minimal
duck-typed surface, mirroring how live traffic is diverted to arms that
differ only in the backing model.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..data.schema import UserAction


@runtime_checkable
class Recommender(Protocol):
    """Anything that can ingest actions and serve top-N lists."""

    def observe(self, action: UserAction) -> None:
        """Ingest one user action (may be a no-op for batch models)."""
        ...  # pragma: no cover - protocol body

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Serve a top-``n`` recommendation list of video ids."""
        ...  # pragma: no cover - protocol body


class BatchRetrainable(Protocol):
    """Batch models additionally retrain at fixed intervals (§6.2:
    "trained in batch mode for every day")."""

    def retrain(self, now: float) -> None:
        """Rebuild the model from all actions observed so far."""
        ...  # pragma: no cover - protocol body
