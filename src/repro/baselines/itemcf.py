"""Incremental item-based CF with confidence-as-rating (paper ref [17]).

The practical item-based CF the paper cites as prior work — and the model
in which "treating the weights of user actions as ratings ... works well"
(§3.2) — serves both as an experimental comparator and as the positive
control for the ConfModel discussion: the same rating scheme that hurts MF
is fine here.

Item-item cosine similarity is maintained *incrementally*: each new rating
``r_ui`` updates ``dot(i, j)`` for every ``j`` the user rated before, plus
item norms, so similarities are exact at all times without batch passes.
Recommendation aggregates ``sim(i, j) * r_uj`` over the user's rated items.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..config import ActionWeightConfig
from ..core.actions import LogPlaytimeWeigher
from ..data.schema import UserAction, Video
from ..data.stream import ENGAGEMENT_ACTIONS
from typing import Mapping


class ItemCFRecommender:
    """Incrementally updated item-based CF over confidence ratings."""

    def __init__(
        self,
        videos: Mapping[str, Video] | None = None,
        weights: ActionWeightConfig | None = None,
        max_user_items: int = 100,
        neighbors: int = 30,
        exclude_watched: bool = True,
    ) -> None:
        self.videos = videos or {}
        self.weigher = LogPlaytimeWeigher(weights)
        self.max_user_items = max_user_items
        self.neighbors = neighbors
        self.exclude_watched = exclude_watched
        # user -> {video: accumulated rating}
        self._ratings: dict[str, dict[str, float]] = defaultdict(dict)
        # unordered pair (min, max) -> dot product accumulator
        self._dots: dict[tuple[str, str], float] = defaultdict(float)
        # video -> squared norm accumulator
        self._norms: dict[str, float] = defaultdict(float)
        # adjacency index: video -> co-rated partner videos
        self._adj: dict[str, set[str]] = defaultdict(set)

    def observe(self, action: UserAction) -> None:
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        video = self.videos.get(action.video_id)
        try:
            weight = self.weigher.weight(action, video)
        except Exception:  # unknown duration for PLAYTIME: skip, like the spout
            return
        if weight <= 0:
            return
        self._add_rating(action.user_id, action.video_id, weight)

    def _add_rating(self, user_id: str, video_id: str, delta: float) -> None:
        """Fold ``delta`` into ``r(user, video)`` and the affected sims.

        With ``r' = r + delta``: ``dot(i, j) += delta * r_uj`` for each
        other rated item ``j``, and ``norm(i) += r'^2 - r^2``.
        """
        ratings = self._ratings[user_id]
        old = ratings.get(video_id, 0.0)
        new = old + delta
        if video_id not in ratings and len(ratings) >= self.max_user_items:
            return  # cap profile growth; heavy users would dominate
        ratings[video_id] = new
        self._norms[video_id] += new * new - old * old
        for other_id, other_rating in ratings.items():
            if other_id == video_id:
                continue
            pair = (
                (video_id, other_id)
                if video_id < other_id
                else (other_id, video_id)
            )
            self._dots[pair] += delta * other_rating
            self._adj[video_id].add(other_id)
            self._adj[other_id].add(video_id)

    def similarity(self, video_i: str, video_j: str) -> float:
        """Current cosine similarity between two videos."""
        if video_i == video_j:
            return 1.0
        pair = (video_i, video_j) if video_i < video_j else (video_j, video_i)
        dot = self._dots.get(pair, 0.0)
        if dot == 0.0:
            return 0.0
        denominator = math.sqrt(
            self._norms.get(video_i, 0.0) * self._norms.get(video_j, 0.0)
        )
        return dot / denominator if denominator else 0.0

    def similar_videos(self, video_id: str, k: int) -> list[tuple[str, float]]:
        """Top-``k`` most similar videos by current cosine similarity."""
        scored: list[tuple[str, float]] = []
        own_norm = self._norms.get(video_id, 0.0)
        for other in self._adj.get(video_id, ()):
            pair = (video_id, other) if video_id < other else (other, video_id)
            dot = self._dots.get(pair, 0.0)
            if dot <= 0.0:
                continue
            denominator = math.sqrt(own_norm * self._norms.get(other, 0.0))
            if denominator:
                scored.append((other, dot / denominator))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        top_n = n if n is not None else 10
        ratings = self._ratings.get(user_id, {})
        seeds = (
            {current_video: 1.0} if current_video is not None else ratings
        )
        exclude: set[str] = set(seeds)
        if self.exclude_watched:
            exclude |= set(ratings)
        scores: dict[str, float] = defaultdict(float)
        for seed, rating in seeds.items():
            for other, sim in self.similar_videos(seed, self.neighbors):
                if other not in exclude:
                    scores[other] += sim * rating
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [video_id for video_id, _ in ranked[:top_n]]
