"""Clock abstraction used throughout the library.

The paper's similarity computation depends on wall-clock time through the
damping factor ``d = 2^(-dt/xi)`` (Eq. 11), and the evaluation protocol
replays one week of historical actions.  To make both deterministic and fast
we route every time lookup through a :class:`Clock` so that tests and
benchmarks can drive a :class:`VirtualClock` over a simulated week in
microseconds of real time, while production code may use
:class:`SystemClock`.

All timestamps in the library are POSIX seconds as ``float``.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

#: Seconds in one day; the paper's data spans seven of them.
SECONDS_PER_DAY: float = 86_400.0


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` method usable as a time source."""

    def now(self) -> float:
        """Return the current time as POSIX seconds."""
        ...  # pragma: no cover - protocol body


class SystemClock:
    """Wall-clock time from :func:`time.time`."""

    def now(self) -> float:
        return time.time()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SystemClock()"


class VirtualClock:
    """A manually advanced clock for simulation and tests.

    The clock never moves on its own; callers advance it explicitly with
    :meth:`advance` or pin it with :meth:`set`.  Attempting to move time
    backwards raises ``ValueError`` — the simulators in :mod:`repro.data`
    rely on monotonically non-decreasing timestamps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative seconds: {seconds}")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        """Pin the clock to ``timestamp`` (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now})"
