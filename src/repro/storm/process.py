"""Process-parallel topology execution — real cores, not GIL slices.

:class:`ProcessExecutor` runs every bolt worker in its own OS process,
which is what the paper's Storm deployment actually does: true parallel
SGD across workers, with fields grouping guaranteeing that each key's
state still has exactly one writer — now one writer *process*.  Model
state that must be shared (the factor block) lives in a
:class:`~repro.core.shm_arena.SharedFactorArena`, so workers update the
same parameters through mapped memory instead of message passing.

Architecture:

* **Spouts stay in the parent.**  The parent polls spout workers
  round-robin (exactly :class:`~repro.storm.executor.LocalExecutor`'s
  source order) and routes each emission into the target worker's
  ``multiprocessing.Queue``.  One queue per bolt worker keeps per-key
  FIFO: a fields-grouped key maps to one worker, and every producer's
  puts into that worker's queue arrive in order.
* **Bolt workers are child processes.**  Each child runs a
  :class:`_ChildRuntime` — the same `_process_one`/`_flush_one` machinery
  (supervised restarts, failure accounting) as the in-process executors —
  over exactly one bolt instance, pulling from its inbox and routing its
  emissions into downstream workers' queues directly.
* **Termination is counted, not guessed.**  A shared in-flight counter is
  incremented before every enqueue and decremented after the delivery
  (and all of its downstream enqueues) completes; spout exhaustion plus
  ``inflight == 0`` means the stream has fully drained.  End-of-stream
  ``flush`` then proceeds one bolt component at a time in declaration
  order — the parent sends a flush control to every worker of a
  component, waits for their acks *and* for the resulting cascade to
  drain, and only then moves to the next component, reproducing
  ``_flush_all``'s topological ordering across processes.
* **Results come home as data.**  At shutdown each child sends one report:
  its :class:`~repro.storm.metrics.TopologyMetrics` snapshot
  (merged into the parent's, so ``metrics.snapshot()`` describes the whole
  run), the delta of every counter in the inherited
  :class:`~repro.obs.MetricsRegistry` (replayed into the parent's registry,
  so application-level counters match the in-process executors exactly),
  and the ``state_snapshot()`` of any bolt that defines one (surfaced as
  ``executor.bolt_states``, since a results dict closed over by a factory
  cannot cross a process boundary).

Deliberate limitations, documented rather than half-supported: requires a
``fork`` start method (factories need not pickle; Linux/macOS), trace
spans do not cross process boundaries (``obs`` still merges metrics), and
``ShuffleGrouping``'s round-robin state is per-producer-process, so only
fields/global/all-grouped topologies are *deterministically* equivalent
across executors — the same caveat the threaded executor has with thread
interleaving, made explicit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import TYPE_CHECKING

from ..errors import ComponentError
from .executor import _Delivery, _ExecutorBase, _POLL_INTERVAL
from .topology import Spout, Topology

if TYPE_CHECKING:
    from ..obs import Observability
    from ..obs.registry import MetricsRegistry
    from ..reliability.supervisor import Supervisor
    from .metrics import TopologyMetrics

__all__ = ["ProcessExecutor"]

_FLUSH = "__flush__"
_STOP = "__stop__"
_JOIN_TIMEOUT = 10.0


def _counter_state(registry: "MetricsRegistry") -> dict:
    """Every counter leaf in ``registry`` as plain comparable data.

    ``{name: (help, labelnames, {labels_tuple: value})}`` — enough to both
    diff against a baseline and re-create the series in another process.
    """
    from ..obs.registry import Counter

    state: dict = {}
    for name in registry.names():
        instrument = registry.get(name)
        if not isinstance(instrument, Counter):
            continue
        series = {}
        for labels, leaf in instrument._series():
            key = tuple(sorted(labels.items()))
            series[key] = leaf.value
        state[name] = (instrument.help, tuple(instrument.labelnames), series)
    return state


def _counter_deltas(baseline: dict, final: dict) -> dict:
    """What the worker added on top of its forked baseline."""
    deltas: dict = {}
    for name, (help_text, labelnames, series) in final.items():
        base_series = baseline.get(name, (None, None, {}))[2]
        changed = {}
        for key, value in series.items():
            delta = value - base_series.get(key, 0.0)
            if delta > 0:
                changed[key] = delta
        if changed:
            deltas[name] = (help_text, labelnames, changed)
    return deltas


def _replay_deltas(registry: "MetricsRegistry", deltas: dict) -> None:
    """Fold a worker's counter deltas into the parent registry."""
    for name, (help_text, labelnames, series) in deltas.items():
        counter = registry.counter(name, help_text, labelnames=labelnames)
        for key, delta in series.items():
            leaf = counter.labels(**dict(key)) if labelnames else counter
            leaf.inc(delta)


class _ChildRuntime(_ExecutorBase):
    """One bolt worker's execution loop inside a child process.

    Reuses the base machinery — supervised restart-and-retry in
    `_process_one`, flush routing in `_flush_one` — over a single bolt
    instance.  Metrics are recorded into a private, registry-less
    :class:`TopologyMetrics` and shipped home as the final report; the
    inherited ``obs.registry`` (if any) is diffed against its fork-time
    baseline so application counters incremented by bolt code travel too.
    """

    def __init__(
        self,
        topology: Topology,
        name: str,
        worker: int,
        fail_fast: bool,
        supervisor: "Supervisor | None",
        queues: dict,
        inflight,
        stop,
        reports,
        registry: "MetricsRegistry | None",
    ) -> None:
        super().__init__(topology, fail_fast=fail_fast, supervisor=supervisor)
        self._name = name
        self._worker = worker
        self._queues = queues
        self._inbox = queues[(name, worker)]
        self._inflight = inflight
        self._stop = stop
        self._reports = reports
        self._registry = registry

    def _instantiate(self) -> None:
        """Create only this worker's bolt (the whole point of sharding)."""
        if self._opened:
            return
        from .topology import ComponentContext

        spec = self.topology.components[self._name]
        bolt = spec.factory()
        bolt.prepare(
            ComponentContext(self._name, self._worker, spec.parallelism)
        )
        self._bolt_workers[(self._name, self._worker)] = bolt
        self._opened = True

    def _enqueue(self, delivery: _Delivery) -> None:
        with self._inflight.get_lock():
            self._inflight.value += 1
        q = self._queues[(delivery.target, delivery.worker)]
        while True:
            try:
                q.put(delivery, timeout=_POLL_INTERVAL)
                break
            except queue_mod.Full:
                if self._stop.is_set():
                    with self._inflight.get_lock():
                        self._inflight.value -= 1
                    return
        try:
            depth = q.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            depth = 0
        self.metrics.component(delivery.target).record_queue_depth(depth)

    def _done_one(self) -> None:
        with self._inflight.get_lock():
            self._inflight.value -= 1

    def loop(self) -> None:
        baseline = (
            _counter_state(self._registry)
            if self._registry is not None
            else {}
        )
        self._instantiate()
        error: tuple[str, str] | None = None
        try:
            while True:
                try:
                    item = self._inbox.get(timeout=_POLL_INTERVAL)
                except queue_mod.Empty:
                    if self._stop.is_set():
                        break
                    continue
                if item == _STOP:
                    break
                if item == _FLUSH:
                    try:
                        for child in self._flush_one(self._name, self._worker):
                            self._enqueue(child)
                    except ComponentError as exc:
                        error = (exc.component, repr(exc.original))
                        self._stop.set()
                        break
                    finally:
                        # Ack via the report queue: the parent counts them.
                        self._reports.put(("flush_ack", self._name, self._worker))
                    continue
                try:
                    for child in self._process_one(item):
                        self._enqueue(child)
                except ComponentError as exc:
                    error = (exc.component, repr(exc.original))
                    self._stop.set()
                    self._done_one()
                    break
                self._done_one()
        finally:
            try:
                self._shutdown()
            except Exception:  # noqa: BLE001 - never mask the real report
                pass
            deltas = (
                _counter_deltas(baseline, _counter_state(self._registry))
                if self._registry is not None
                else {}
            )
            self._reports.put(
                (
                    "report",
                    self._name,
                    self._worker,
                    self.metrics.to_serializable(),
                    deltas,
                    dict(self.bolt_states),
                    error,
                )
            )


def _child_main(runtime: _ChildRuntime) -> None:
    runtime.loop()


class ProcessExecutor(_ExecutorBase):
    """One process per bolt worker over ``multiprocessing`` queues.

    Drop-in alongside :class:`LocalExecutor`/:class:`ThreadedExecutor`:
    same constructor shape, same :meth:`run` contract, same grouping
    semantics.  Bolts that must share model state should do it through a
    :class:`~repro.core.shm_arena.SharedFactorArena` (or any other
    process-shared medium) — per-instance attributes are private to each
    worker process, exactly as fields grouping assumes.

    ``queue_size`` bounds each worker's inbox; producers block when it is
    full (backpressure to the spout).  The shed policies of the threaded
    executor are not offered here — cross-process sheds cannot keep the
    in-flight ledger exact without another round trip, and the paper's
    topology sheds at ingest, not between bolts.
    """

    def __init__(
        self,
        topology: Topology,
        fail_fast: bool = True,
        queue_size: int = 10_000,
        supervisor: "Supervisor | None" = None,
        obs: "Observability | None" = None,
    ) -> None:
        super().__init__(
            topology, fail_fast=fail_fast, supervisor=supervisor, obs=obs
        )
        # Spans cannot cross process boundaries; a deferred parent span
        # would wait forever for children completed in another process.
        self._tracer = None
        if "fork" not in mp.get_all_start_methods():
            raise OSError(
                "ProcessExecutor requires the 'fork' start method "
                "(POSIX); use ThreadedExecutor on this platform"
            )
        self._ctx = mp.get_context("fork")
        self._queue_size = queue_size
        self._child_error: ComponentError | None = None

    # -- parent-side plumbing ---------------------------------------------

    def _instantiate(self) -> None:
        """Parent creates spout instances only; bolts live in children."""
        if self._opened:
            return
        from .topology import ComponentContext

        for spec in self.topology.spouts:
            for worker in range(spec.parallelism):
                spout = spec.factory()
                spout.open(ComponentContext(spec.name, worker, spec.parallelism))
                self._spout_workers.append((spec.name, worker, spout))
        self._opened = True

    def _shutdown(self) -> None:
        for _, _, spout in self._spout_workers:
            spout.close()

    def _enqueue(self, delivery: _Delivery, queues, inflight, stop) -> bool:
        with inflight.get_lock():
            inflight.value += 1
        q = queues[(delivery.target, delivery.worker)]
        while True:
            try:
                q.put(delivery, timeout=_POLL_INTERVAL)
                break
            except queue_mod.Full:
                if stop.is_set():
                    with inflight.get_lock():
                        inflight.value -= 1
                    return False
        try:
            depth = q.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            depth = 0
        self.metrics.component(delivery.target).record_queue_depth(depth)
        return True

    def _spout_drive(self, queues, inflight, stop, max_tuples) -> None:
        """Poll spouts round-robin (LocalExecutor's order) and route."""
        from collections import deque

        live = deque(self._spout_workers)
        consumed = 0
        while live and not stop.is_set():
            if max_tuples is not None and consumed >= max_tuples:
                return
            name, worker, spout = live.popleft()
            try:
                tup = spout.next_tuple()
            except Exception as exc:  # noqa: BLE001 - isolate spout failures
                self.metrics.component(name).record_failure()
                raise ComponentError(name, exc) from exc
            if tup is None:
                continue  # exhausted: do not requeue
            live.append((name, worker, spout))
            consumed += 1
            self.metrics.component(name).record_emit()
            for delivery in self._route(name, tup):
                self._enqueue(delivery, queues, inflight, stop)

    def _wait_drained(self, inflight, stop, procs, deadline) -> None:
        """Block until the in-flight ledger reaches zero (or abort)."""
        while not stop.is_set():
            with inflight.get_lock():
                if inflight.value == 0:
                    return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("ProcessExecutor run timed out")
            if any(p.exitcode not in (None, 0) for p in procs):
                raise RuntimeError(
                    "a worker process died without reporting; "
                    "aborting the run"
                )
            time.sleep(_POLL_INTERVAL)

    def run(
        self, max_tuples: int | None = None, timeout: float | None = None
    ) -> "TopologyMetrics":
        """Run until every spout is exhausted; return merged metrics."""
        self._instantiate()
        ctx = self._ctx
        queues = {
            (spec.name, worker): ctx.Queue(self._queue_size)
            for spec in self.topology.bolts
            for worker in range(spec.parallelism)
        }
        inflight = ctx.Value("l", 0)
        stop = ctx.Event()
        reports = ctx.Queue()
        registry = self.obs.registry if self.obs is not None else None
        runtimes = [
            _ChildRuntime(
                self.topology,
                name,
                worker,
                self.fail_fast,
                self.supervisor,
                queues,
                inflight,
                stop,
                reports,
                registry,
            )
            for (name, worker) in queues
        ]
        procs = [
            ctx.Process(target=_child_main, args=(runtime,), daemon=True)
            for runtime in runtimes
        ]
        for proc in procs:
            proc.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        error: ComponentError | None = None
        pending_acks = 0
        received: set[tuple[str, int]] = set()
        try:
            self._spout_drive(queues, inflight, stop, max_tuples)
            self._wait_drained(inflight, stop, procs, deadline)
            # End-of-stream flush, one component at a time in
            # declaration order (the cross-process _flush_all).
            for spec in self.topology.bolts:
                if stop.is_set():
                    break
                for worker in range(spec.parallelism):
                    queues[(spec.name, worker)].put(_FLUSH)
                    pending_acks += 1
                while pending_acks and not stop.is_set():
                    try:
                        msg = reports.get(timeout=_POLL_INTERVAL)
                    except queue_mod.Empty:
                        continue
                    if msg[0] == "flush_ack":
                        pending_acks -= 1
                    else:  # an early report: a worker hit an error
                        self._absorb_report(msg, received)
                self._wait_drained(inflight, stop, procs, deadline)
        except ComponentError as exc:
            error = exc
            stop.set()
        finally:
            stop.set()
            for q in queues.values():
                try:
                    q.put_nowait(_STOP)
                except queue_mod.Full:
                    pass  # the worker exits on the stop event instead
            # Drain every child's final report before joining: the
            # queue feeder threads must be emptied for join to return.
            remaining = len(runtimes) - len(received)
            waited_until = time.monotonic() + _JOIN_TIMEOUT
            while remaining > 0 and time.monotonic() < waited_until:
                try:
                    msg = reports.get(timeout=_POLL_INTERVAL)
                except queue_mod.Empty:
                    if all(p.exitcode is not None for p in procs):
                        break
                    continue
                if msg[0] == "flush_ack":
                    continue
                self._absorb_report(msg, received)
                remaining -= 1
            for proc in procs:
                proc.join(timeout=_JOIN_TIMEOUT)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=1.0)
            for q in list(queues.values()) + [reports]:
                q.close()
                q.cancel_join_thread()
            self._shutdown()
        if error is None:
            error = self._child_error
        if error is not None and self.fail_fast:
            raise error
        return self.metrics

    def _absorb_report(self, msg, received) -> None:
        """Merge one child's final report into parent-side state."""
        kind = msg[0]
        if kind != "report":  # pragma: no cover - defensive
            return
        _, name, worker, metrics_data, deltas, bolt_states, error = msg
        if (name, worker) in received:
            return
        received.add((name, worker))
        self.metrics.merge_serialized(metrics_data)
        if self.obs is not None and deltas:
            _replay_deltas(self.obs.registry, deltas)
        self.bolt_states.update(bolt_states)
        if error is not None and self._child_error is None:
            component, original = error
            self._child_error = ComponentError(
                component, RuntimeError(original)
            )
