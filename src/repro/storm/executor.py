"""Topology executors.

Two execution engines share the same :class:`~repro.storm.topology.Topology`
model:

* :class:`LocalExecutor` — single-threaded and deterministic.  Tuples are
  processed in a fixed interleaving, so tests and the offline evaluation
  protocol get bit-for-bit reproducible runs.
* :class:`ThreadedExecutor` — one OS thread per worker with real queues.
  Used by the scalability benchmarks to measure throughput as parallelism
  grows, and by the concurrency tests that assert the fields-grouping
  single-writer invariant under true interleaving.

Both honour grouping semantics identically: a tuple emitted on
``(source, stream)`` is delivered to every subscribed bolt, to the worker(s)
chosen by that edge's grouping.

Both executors optionally run under a
:class:`~repro.reliability.Supervisor`: when a bolt raises, the failed
worker is torn down, recreated from its component factory, and the same
tuple is retried — bounded restarts with backoff, so topologies survive
transient faults without losing delivered tuples.  Only when the restart
budget is exhausted does the executor fall back to its configured failure
mode (``fail_fast`` abort, or drop the tuple).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ComponentError
from .metrics import TopologyMetrics
from .topology import Bolt, Collector, ComponentContext, Spout, Topology
from .tuples import StreamTuple

if TYPE_CHECKING:  # imported lazily to avoid a storm <-> reliability cycle
    from ..obs import Observability
    from ..reliability.supervisor import Supervisor

_POLL_INTERVAL = 0.001


@dataclass(frozen=True, slots=True)
class _Delivery:
    """A tuple addressed to one worker of one bolt."""

    target: str
    worker: int
    tup: StreamTuple


class _ExecutorBase:
    """Shared wiring: instantiate workers, route emissions, run hooks."""

    def __init__(
        self,
        topology: Topology,
        fail_fast: bool = True,
        supervisor: "Supervisor | None" = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.topology = topology
        self.fail_fast = fail_fast
        self.supervisor = supervisor
        self.obs = obs
        self.metrics = TopologyMetrics(
            registry=obs.registry if obs is not None else None
        )
        self._tracer = obs.tracer if obs is not None else None
        # Durations are measured on the bundle's perf clock so a
        # deterministic Observability yields deterministic latencies.
        self._now = obs.perf_clock.now if obs is not None else time.perf_counter
        self._spout_workers: list[tuple[str, int, Spout]] = []
        self._bolt_workers: dict[tuple[str, int], Bolt] = {}
        self._opened = False
        #: Final per-worker bolt state, gathered at shutdown from bolts
        #: that define ``state_snapshot()``.  This is how results leave a
        #: run when workers live in other processes (a results dict closed
        #: over by the factory never crosses the boundary): keyed by
        #: ``(component, worker)``.
        self.bolt_states: dict[tuple[str, int], object] = {}

    def _instantiate(self) -> None:
        """Create and initialise one component instance per worker."""
        if self._opened:
            return
        for spec in self.topology.spouts:
            for worker in range(spec.parallelism):
                spout = spec.factory()
                spout.open(ComponentContext(spec.name, worker, spec.parallelism))
                self._spout_workers.append((spec.name, worker, spout))
        for spec in self.topology.bolts:
            for worker in range(spec.parallelism):
                bolt = spec.factory()
                bolt.prepare(ComponentContext(spec.name, worker, spec.parallelism))
                self._bolt_workers[(spec.name, worker)] = bolt
        self._opened = True

    def _shutdown(self) -> None:
        for _, _, spout in self._spout_workers:
            spout.close()
        for key, bolt in self._bolt_workers.items():
            snapshot = getattr(bolt, "state_snapshot", None)
            if callable(snapshot):
                self.bolt_states[key] = snapshot()
            bolt.cleanup()

    def _route(self, source: str, tup: StreamTuple) -> list[_Delivery]:
        """Resolve the deliveries for one emitted tuple."""
        deliveries: list[_Delivery] = []
        for target, grouping in self.topology.targets(source, tup.stream):
            parallelism = self.topology.components[target].parallelism
            for worker in grouping.select(tup, parallelism):
                deliveries.append(_Delivery(target, worker, tup))
        return deliveries

    def _restart_bolt(self, name: str, worker: int) -> Bolt:
        """Replace one failed bolt worker with a fresh factory instance."""
        old = self._bolt_workers[(name, worker)]
        try:
            old.cleanup()
        except Exception:  # noqa: BLE001 - the worker is already broken
            pass
        spec = self.topology.components[name]
        bolt = spec.factory()
        bolt.prepare(ComponentContext(name, worker, spec.parallelism))
        self._bolt_workers[(name, worker)] = bolt
        self.metrics.component(name).record_restart()
        return bolt

    def _process_one(self, delivery: _Delivery) -> list[_Delivery]:
        """Run one bolt invocation; return the downstream deliveries.

        Under a supervisor, a failing worker is restarted and the tuple is
        retried until it succeeds or the worker's restart budget runs out —
        at-least-once execution of the bolt body.  Each attempt gets a
        fresh collector, so emissions from a failed attempt are discarded.
        """
        bolt = self._bolt_workers[(delivery.target, delivery.worker)]
        component = self.metrics.component(delivery.target)
        tracer = self._tracer
        span = None
        if tracer is not None and delivery.tup.trace is not None:
            # Consume the deferred-child slot the upstream span reserved
            # for this delivery; emissions below reserve slots in turn.
            span = tracer.start_deferred(
                f"bolt:{delivery.target}", parent=delivery.tup.trace
            )
        while True:
            collector = Collector()
            if span is not None:
                collector.trace = span.context
            started = self._now()
            try:
                if span is not None:
                    with tracer.activate(span):
                        bolt.process(delivery.tup, collector)
                else:
                    bolt.process(delivery.tup, collector)
                break
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                component.record_failure()
                if self.supervisor is not None and self.supervisor.should_restart(
                    delivery.target, delivery.worker, exc
                ):
                    bolt = self._restart_bolt(delivery.target, delivery.worker)
                    continue
                if span is not None:
                    span.finish(error=f"{type(exc).__name__}: {exc}")
                if self.fail_fast:
                    raise ComponentError(delivery.target, exc) from exc
                return []
        component.record_processed(delivery.worker, self._now() - started)
        out: list[_Delivery] = []
        for emitted in collector.drain():
            component.record_emit()
            out.extend(self._route(delivery.target, emitted))
        if span is not None:
            for _ in out:
                tracer.defer_child(span)
            span.finish()
        return out

    def _flush_one(self, name: str, worker: int) -> list[_Delivery]:
        """Invoke one worker's :meth:`Bolt.flush`; route its emissions."""
        bolt = self._bolt_workers[(name, worker)]
        collector = Collector()
        component = self.metrics.component(name)
        try:
            bolt.flush(collector)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            component.record_failure()
            if self.fail_fast:
                raise ComponentError(name, exc) from exc
            return []
        out: list[_Delivery] = []
        for emitted in collector.drain():
            component.record_emit()
            out.extend(self._route(name, emitted))
        return out

    def _flush_all(self) -> None:
        """Drain every worker's buffered output at end of stream.

        Workers are visited in declaration order — topological for a
        DAG built front-to-back, as this repo's topologies are — so a
        flush that feeds a downstream batching bolt lands in its buffer
        before that bolt's own flush runs.
        """
        for name, worker in list(self._bolt_workers):
            pending = deque(self._flush_one(name, worker))
            while pending:
                pending.extend(self._process_one(pending.popleft()))


class LocalExecutor(_ExecutorBase):
    """Deterministic in-process executor.

    Spout workers are polled round-robin; every emission is routed and
    processed breadth-first before the next spout poll, so the pipeline is
    fully drained between source tuples.  That matches the at-most-one
    in-flight-action semantics the offline replay protocol needs.
    """

    def run(self, max_tuples: int | None = None) -> TopologyMetrics:
        """Run until every spout is exhausted (or ``max_tuples`` source
        tuples have been consumed); return the collected metrics."""
        self._instantiate()
        try:
            live = deque(self._spout_workers)
            consumed = 0
            while live:
                if max_tuples is not None and consumed >= max_tuples:
                    break
                name, worker, spout = live.popleft()
                tup = spout.next_tuple()
                if tup is None:
                    continue  # exhausted: do not requeue
                live.append((name, worker, spout))
                consumed += 1
                self.metrics.component(name).record_emit()
                root = None
                if self._tracer is not None:
                    root = self._tracer.start_span(f"spout:{name}", parent=None)
                    if root.context.sampled:
                        tup = tup.with_trace(root.context)
                deliveries = self._route(name, tup)
                if root is not None:
                    for _ in deliveries:
                        self._tracer.defer_child(root)
                    root.finish()
                self._drain(deliveries)
            self._flush_all()
            return self.metrics
        finally:
            self._shutdown()

    def _drain(self, deliveries: list[_Delivery]) -> None:
        pending = deque(deliveries)
        while pending:
            pending.extend(self._process_one(pending.popleft()))


#: Full-queue behaviours for :class:`ThreadedExecutor`.
QUEUE_POLICIES = ("block", "shed_newest", "shed_oldest")


class ThreadedExecutor(_ExecutorBase):
    """One thread per worker, bounded queues, graceful drain on exhaustion.

    An in-flight counter tracks every delivery from enqueue to completion;
    once all spouts are exhausted and the counter reaches zero the workers
    are stopped.  Component failures with ``fail_fast=True`` abort the run
    and re-raise from :meth:`run`.

    ``queue_policy`` selects the backpressure behaviour when a worker's
    inbound queue is full:

    * ``"block"`` (default) — the producer waits for space, propagating
      backpressure up to the spout (classic flow control; the wait is
      interrupted by a run abort, so a failed run cannot stall a spout
      forever).
    * ``"shed_newest"`` — the incoming tuple is dropped (tail drop).
    * ``"shed_oldest"`` — the oldest queued tuple is dropped to make room
      (head drop; keeps the freshest data flowing, the right policy for
      real-time signals like the paper's action stream).

    Shed tuples are counted per component in
    :class:`~repro.storm.metrics.TopologyMetrics` (``shed``), alongside a
    queue-depth gauge/high-water mark sampled at every enqueue.
    """

    def __init__(
        self,
        topology: Topology,
        fail_fast: bool = True,
        queue_size: int = 10_000,
        supervisor: "Supervisor | None" = None,
        queue_policy: str = "block",
        obs: "Observability | None" = None,
    ) -> None:
        super().__init__(
            topology, fail_fast=fail_fast, supervisor=supervisor, obs=obs
        )
        if queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"queue_policy must be one of {QUEUE_POLICIES}, got {queue_policy!r}"
            )
        self._queue_size = queue_size
        self._queue_policy = queue_policy
        self._queues: dict[tuple[str, int], queue.Queue] = {}
        self._inflight = 0
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._error: BaseException | None = None

    def _shed(self, delivery: _Delivery) -> None:
        """Account one dropped delivery: shed counter + in-flight release."""
        self.metrics.component(delivery.target).record_shed()
        if self._tracer is not None and delivery.tup.trace is not None:
            # Release the deferred slot so the upstream span can complete.
            self._tracer.cancel_deferred(delivery.tup.trace)
        self._done_one()

    def _enqueue(self, delivery: _Delivery) -> None:
        q = self._queues[(delivery.target, delivery.worker)]
        with self._cond:
            self._inflight += 1
        if self._queue_policy == "block":
            while True:
                try:
                    q.put(delivery, timeout=_POLL_INTERVAL)
                    break
                except queue.Full:
                    if self._stop.is_set():
                        # Run is aborting: don't stall the producer forever.
                        self._shed(delivery)
                        return
        elif self._queue_policy == "shed_newest":
            try:
                q.put_nowait(delivery)
            except queue.Full:
                self._shed(delivery)
                return
        else:  # shed_oldest
            while True:
                try:
                    q.put_nowait(delivery)
                    break
                except queue.Full:
                    try:
                        victim = q.get_nowait()
                    except queue.Empty:
                        continue  # consumer raced us; retry the put
                    if victim is None:
                        # Shutdown sentinel: keep it, drop the newcomer.
                        try:
                            q.put_nowait(victim)
                        except queue.Full:
                            pass  # worker is exiting anyway
                        self._shed(delivery)
                        return
                    self._shed(victim)
        self.metrics.component(delivery.target).record_queue_depth(q.qsize())

    def _done_one(self) -> None:
        with self._cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._cond.notify_all()

    def _spout_loop(self, name: str, spout: Spout) -> None:
        component = self.metrics.component(name)
        tracer = self._tracer
        try:
            while not self._stop.is_set():
                tup = spout.next_tuple()
                if tup is None:
                    return
                component.record_emit()
                root = None
                if tracer is not None:
                    root = tracer.start_span(f"spout:{name}", parent=None)
                    if root.context.sampled:
                        tup = tup.with_trace(root.context)
                deliveries = self._route(name, tup)
                if root is not None:
                    # Reserve every slot before any enqueue so a fast
                    # consumer cannot complete the root prematurely.
                    for _ in deliveries:
                        tracer.defer_child(root)
                    root.finish()
                for delivery in deliveries:
                    self._enqueue(delivery)
        except Exception as exc:  # noqa: BLE001 - isolate spout failures
            component.record_failure()
            self._fail(ComponentError(name, exc))

    def _bolt_loop(self, key: tuple[str, int]) -> None:
        q = self._queues[key]
        while True:
            try:
                delivery = q.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if delivery is None:  # sentinel
                return
            try:
                for child in self._process_one(delivery):
                    self._enqueue(child)
            except ComponentError as exc:
                self._fail(exc)
            finally:
                self._done_one()

    def _fail(self, exc: BaseException) -> None:
        if self.fail_fast:
            with self._cond:
                if self._error is None:
                    self._error = exc
                self._stop.set()
                self._cond.notify_all()

    def run(self, timeout: float | None = None) -> TopologyMetrics:
        """Run to exhaustion (or ``timeout`` seconds); return metrics."""
        self._instantiate()
        for spec in self.topology.bolts:
            for worker in range(spec.parallelism):
                self._queues[(spec.name, worker)] = queue.Queue(self._queue_size)

        bolt_threads = [
            threading.Thread(target=self._bolt_loop, args=(key,), daemon=True)
            for key in self._queues
        ]
        spout_threads = [
            threading.Thread(
                target=self._spout_loop, args=(name, spout), daemon=True
            )
            for name, _, spout in self._spout_workers
        ]
        for thread in bolt_threads + spout_threads:
            thread.start()

        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            for thread in spout_threads:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                thread.join(timeout=remaining)
            with self._cond:
                while self._inflight > 0 and self._error is None:
                    remaining = (
                        None
                        if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    if remaining == 0.0:
                        break
                    self._cond.wait(timeout=remaining or _POLL_INTERVAL)
        finally:
            self._stop.set()
            # Deliver the stop sentinel without ever blocking: a full queue
            # at shutdown (e.g. after a fail-fast abort with queue_size=1)
            # used to deadlock the blocking put(None) here forever.  Drain
            # stale deliveries to make room instead — the run is over, so
            # they are accounted as shed.
            for key, q in self._queues.items():
                while True:
                    try:
                        q.put_nowait(None)
                        break
                    except queue.Full:
                        try:
                            stale = q.get_nowait()
                        except queue.Empty:
                            continue  # consumer raced us; retry the put
                        if stale is not None:
                            self._shed(stale)
            for thread in bolt_threads:
                thread.join(timeout=1.0)
            if self._error is None:
                # Workers have stopped, so buffered batches can be flushed
                # and drained inline without racing the queues.
                self._flush_all()
            self._shutdown()
        if self._error is not None:
            raise self._error
        return self.metrics
