"""Per-component runtime metrics for topologies.

Tracks the numbers the paper quotes for its production deployment —
throughput (tuples/s), processing latency, failure counts — per component
and per worker, so the scalability benchmarks can report tuples/s as a
function of parallelism.  :class:`LatencyStats` keeps a bounded sample
buffer alongside its streaming mean/max so tail latency (p50/p95/p99 —
the paper reports "latency of milliseconds" at peak load) is available to
the overload tests, and :class:`ComponentMetrics` counts shed tuples and
observed queue depth for the executor backpressure policies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..obs.percentiles import nearest_rank
from ..obs.registry import MetricsRegistry


@dataclass
class LatencyStats:
    """Streaming summary of a latency series (seconds).

    Keeps every sample up to ``sample_limit`` for percentile queries;
    ``count``/``total``/``max`` remain exact beyond the limit, percentiles
    then describe the first ``sample_limit`` observations.
    """

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    sample_limit: int = 65_536
    _samples: list[float] = field(default_factory=list, repr=False)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._samples) < self.sample_limit:
            self._samples.append(seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained samples; 0.0 when empty.

        ``q`` is in [0, 100].  Deterministic (no interpolation), so tests
        can assert exact values from known sample sets.  Delegates to the
        shared :func:`repro.obs.percentiles.nearest_rank` codepath — the
        same convention every other latency summary in the system uses.
        """
        return nearest_rank(self._samples, q)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class _ComponentInstruments:
    """Bound registry series mirroring one component's counters.

    Created when a :class:`TopologyMetrics` is backed by a shared
    :class:`~repro.obs.MetricsRegistry`; each ``record_*`` call then
    updates both the local dataclass fields (the historical API the
    tests and benchmarks read) and the registry series, so one
    ``registry.to_json()`` captures the topology alongside every other
    subsystem.
    """

    __slots__ = (
        "emitted",
        "processed",
        "failed",
        "restarts",
        "shed",
        "queue_depth",
        "max_queue_depth",
        "latency",
    )

    def __init__(self, registry: MetricsRegistry, component: str) -> None:
        label = {"component": component}
        self.emitted = registry.counter(
            "storm_tuples_emitted_total",
            "Tuples emitted by each topology component",
            labelnames=("component",),
        ).labels(**label)
        self.processed = registry.counter(
            "storm_tuples_processed_total",
            "Bolt invocations completed per component",
            labelnames=("component",),
        ).labels(**label)
        self.failed = registry.counter(
            "storm_tuple_failures_total",
            "Bolt invocations that raised, per component",
            labelnames=("component",),
        ).labels(**label)
        self.restarts = registry.counter(
            "storm_worker_restarts_total",
            "Supervised worker restarts per component",
            labelnames=("component",),
        ).labels(**label)
        self.shed = registry.counter(
            "storm_tuples_shed_total",
            "Tuples dropped by backpressure shed policies",
            labelnames=("component",),
        ).labels(**label)
        self.queue_depth = registry.gauge(
            "storm_queue_depth",
            "Inbound queue depth sampled at enqueue",
            labelnames=("component",),
        ).labels(**label)
        self.max_queue_depth = registry.gauge(
            "storm_queue_depth_high_water",
            "High-water inbound queue depth",
            labelnames=("component",),
        ).labels(**label)
        self.latency = registry.histogram(
            "storm_process_latency_seconds",
            "Per-invocation bolt processing latency",
            labelnames=("component",),
        ).labels(**label)


@dataclass
class ComponentMetrics:
    """Counters for one spout or bolt across all of its workers."""

    name: str
    emitted: int = 0
    processed: int = 0
    failed: int = 0
    restarts: int = 0
    shed: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    per_worker_processed: dict[int, int] = field(default_factory=dict)
    instruments: _ComponentInstruments | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_emit(self, count: int = 1) -> None:
        with self._lock:
            self.emitted += count
        if self.instruments is not None:
            self.instruments.emitted.inc(count)

    def record_processed(self, worker: int, seconds: float) -> None:
        with self._lock:
            self.processed += 1
            self.latency.record(seconds)
            self.per_worker_processed[worker] = (
                self.per_worker_processed.get(worker, 0) + 1
            )
        if self.instruments is not None:
            self.instruments.processed.inc()
            self.instruments.latency.observe(seconds)

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1
        if self.instruments is not None:
            self.instruments.failed.inc()

    def record_restart(self) -> None:
        with self._lock:
            self.restarts += 1
        if self.instruments is not None:
            self.instruments.restarts.inc()

    def record_shed(self, count: int = 1) -> None:
        """Count tuples dropped by a backpressure shed policy."""
        with self._lock:
            self.shed += count
        if self.instruments is not None:
            self.instruments.shed.inc(count)

    def record_queue_depth(self, depth: int) -> None:
        """Record an observed inbound queue depth (gauge + high-water)."""
        with self._lock:
            self.queue_depth = depth
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth
            high_water = self.max_queue_depth
        if self.instruments is not None:
            self.instruments.queue_depth.set(depth)
            self.instruments.max_queue_depth.set(high_water)

    # -- cross-process transport ------------------------------------------

    _MERGE_SAMPLE_LIMIT = 2048

    def to_serializable(self) -> dict:
        """This component's counters as picklable plain data.

        What a worker process sends home at shutdown.  Latency travels as
        exact ``count``/``total``/``max`` plus a bounded sample prefix, so
        the merged percentiles describe a representative subset while the
        aggregate statistics stay exact.
        """
        with self._lock:
            return {
                "emitted": self.emitted,
                "processed": self.processed,
                "failed": self.failed,
                "restarts": self.restarts,
                "shed": self.shed,
                "max_queue_depth": self.max_queue_depth,
                "latency_count": self.latency.count,
                "latency_total": self.latency.total,
                "latency_max": self.latency.max,
                "latency_samples": self.latency._samples[
                    : self._MERGE_SAMPLE_LIMIT
                ],
                "per_worker_processed": dict(self.per_worker_processed),
            }

    def merge_serialized(self, data: dict) -> None:
        """Fold a worker's :meth:`to_serializable` snapshot into this one.

        Goes through the ``record_*``/instrument paths where they exist so
        a registry-backed parent sees the worker's activity in its shared
        :class:`~repro.obs.MetricsRegistry` too.
        """
        if data["emitted"]:
            self.record_emit(data["emitted"])
        if data["failed"]:
            for _ in range(data["failed"]):
                self.record_failure()
        if data["restarts"]:
            for _ in range(data["restarts"]):
                self.record_restart()
        if data["shed"]:
            self.record_shed(data["shed"])
        self.record_queue_depth(data["max_queue_depth"])
        with self._lock:
            self.processed += data["processed"]
            latency = self.latency
            latency.count += data["latency_count"]
            latency.total += data["latency_total"]
            if data["latency_max"] > latency.max:
                latency.max = data["latency_max"]
            room = latency.sample_limit - len(latency._samples)
            if room > 0:
                latency._samples.extend(data["latency_samples"][:room])
            for worker, count in data["per_worker_processed"].items():
                self.per_worker_processed[worker] = (
                    self.per_worker_processed.get(worker, 0) + count
                )
        if self.instruments is not None:
            if data["processed"]:
                self.instruments.processed.inc(data["processed"])
            for seconds in data["latency_samples"]:
                self.instruments.latency.observe(seconds)


class TopologyMetrics:
    """Registry of :class:`ComponentMetrics`, one per topology component.

    With ``registry`` set, every component's counters are mirrored into
    that shared :class:`~repro.obs.MetricsRegistry` under the
    ``storm_*`` metric names, labelled by component.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry
        self._components: dict[str, ComponentMetrics] = {}
        self._lock = threading.Lock()

    def component(self, name: str) -> ComponentMetrics:
        with self._lock:
            if name not in self._components:
                instruments = (
                    _ComponentInstruments(self.registry, name)
                    if self.registry is not None
                    else None
                )
                self._components[name] = ComponentMetrics(
                    name, instruments=instruments
                )
            return self._components[name]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Return a plain-dict summary suitable for printing or asserting."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            components = list(self._components.values())
        for metrics in components:
            out[metrics.name] = {
                "emitted": metrics.emitted,
                "processed": metrics.processed,
                "failed": metrics.failed,
                "restarts": metrics.restarts,
                "shed": metrics.shed,
                "queue_depth": metrics.queue_depth,
                "max_queue_depth": metrics.max_queue_depth,
                "mean_latency_s": metrics.latency.mean,
                "max_latency_s": metrics.latency.max,
                "p99_latency_s": metrics.latency.p99,
            }
        return out

    def to_serializable(self) -> dict[str, dict]:
        """Every component's counters as picklable plain data."""
        with self._lock:
            components = list(self._components.values())
        return {m.name: m.to_serializable() for m in components}

    def merge_serialized(self, data: dict[str, dict]) -> None:
        """Fold a worker process's metrics snapshot into this registry."""
        for name, component_data in data.items():
            self.component(name).merge_serialized(component_data)

    @property
    def total_processed(self) -> int:
        with self._lock:
            return sum(m.processed for m in self._components.values())

    @property
    def total_shed(self) -> int:
        with self._lock:
            return sum(m.shed for m in self._components.values())
