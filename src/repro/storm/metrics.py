"""Per-component runtime metrics for topologies.

Tracks the numbers the paper quotes for its production deployment —
throughput (tuples/s), processing latency, failure counts — per component
and per worker, so the scalability benchmarks can report tuples/s as a
function of parallelism.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Streaming summary of a latency series (seconds)."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class ComponentMetrics:
    """Counters for one spout or bolt across all of its workers."""

    name: str
    emitted: int = 0
    processed: int = 0
    failed: int = 0
    restarts: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    per_worker_processed: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_emit(self, count: int = 1) -> None:
        with self._lock:
            self.emitted += count

    def record_processed(self, worker: int, seconds: float) -> None:
        with self._lock:
            self.processed += 1
            self.latency.record(seconds)
            self.per_worker_processed[worker] = (
                self.per_worker_processed.get(worker, 0) + 1
            )

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def record_restart(self) -> None:
        with self._lock:
            self.restarts += 1


class TopologyMetrics:
    """Registry of :class:`ComponentMetrics`, one per topology component."""

    def __init__(self) -> None:
        self._components: dict[str, ComponentMetrics] = {}
        self._lock = threading.Lock()

    def component(self, name: str) -> ComponentMetrics:
        with self._lock:
            if name not in self._components:
                self._components[name] = ComponentMetrics(name)
            return self._components[name]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Return a plain-dict summary suitable for printing or asserting."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            components = list(self._components.values())
        for metrics in components:
            out[metrics.name] = {
                "emitted": metrics.emitted,
                "processed": metrics.processed,
                "failed": metrics.failed,
                "restarts": metrics.restarts,
                "mean_latency_s": metrics.latency.mean,
                "max_latency_s": metrics.latency.max,
            }
        return out

    @property
    def total_processed(self) -> int:
        with self._lock:
            return sum(m.processed for m in self._components.values())
