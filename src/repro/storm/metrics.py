"""Per-component runtime metrics for topologies.

Tracks the numbers the paper quotes for its production deployment —
throughput (tuples/s), processing latency, failure counts — per component
and per worker, so the scalability benchmarks can report tuples/s as a
function of parallelism.  :class:`LatencyStats` keeps a bounded sample
buffer alongside its streaming mean/max so tail latency (p50/p95/p99 —
the paper reports "latency of milliseconds" at peak load) is available to
the overload tests, and :class:`ComponentMetrics` counts shed tuples and
observed queue depth for the executor backpressure policies.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Streaming summary of a latency series (seconds).

    Keeps every sample up to ``sample_limit`` for percentile queries;
    ``count``/``total``/``max`` remain exact beyond the limit, percentiles
    then describe the first ``sample_limit`` observations.
    """

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    sample_limit: int = 65_536
    _samples: list[float] = field(default_factory=list, repr=False)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._samples) < self.sample_limit:
            self._samples.append(seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained samples; 0.0 when empty.

        ``q`` is in [0, 100].  Deterministic (no interpolation), so tests
        can assert exact values from known sample sets.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


@dataclass
class ComponentMetrics:
    """Counters for one spout or bolt across all of its workers."""

    name: str
    emitted: int = 0
    processed: int = 0
    failed: int = 0
    restarts: int = 0
    shed: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    per_worker_processed: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_emit(self, count: int = 1) -> None:
        with self._lock:
            self.emitted += count

    def record_processed(self, worker: int, seconds: float) -> None:
        with self._lock:
            self.processed += 1
            self.latency.record(seconds)
            self.per_worker_processed[worker] = (
                self.per_worker_processed.get(worker, 0) + 1
            )

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def record_restart(self) -> None:
        with self._lock:
            self.restarts += 1

    def record_shed(self, count: int = 1) -> None:
        """Count tuples dropped by a backpressure shed policy."""
        with self._lock:
            self.shed += count

    def record_queue_depth(self, depth: int) -> None:
        """Record an observed inbound queue depth (gauge + high-water)."""
        with self._lock:
            self.queue_depth = depth
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth


class TopologyMetrics:
    """Registry of :class:`ComponentMetrics`, one per topology component."""

    def __init__(self) -> None:
        self._components: dict[str, ComponentMetrics] = {}
        self._lock = threading.Lock()

    def component(self, name: str) -> ComponentMetrics:
        with self._lock:
            if name not in self._components:
                self._components[name] = ComponentMetrics(name)
            return self._components[name]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Return a plain-dict summary suitable for printing or asserting."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            components = list(self._components.values())
        for metrics in components:
            out[metrics.name] = {
                "emitted": metrics.emitted,
                "processed": metrics.processed,
                "failed": metrics.failed,
                "restarts": metrics.restarts,
                "shed": metrics.shed,
                "queue_depth": metrics.queue_depth,
                "max_queue_depth": metrics.max_queue_depth,
                "mean_latency_s": metrics.latency.mean,
                "max_latency_s": metrics.latency.max,
                "p99_latency_s": metrics.latency.p99,
            }
        return out

    @property
    def total_processed(self) -> int:
        with self._lock:
            return sum(m.processed for m in self._components.values())

    @property
    def total_shed(self) -> int:
        with self._lock:
            return sum(m.shed for m in self._components.values())
