"""Stream groupings — how tuples are distributed across a bolt's workers.

The paper's correctness argument (§5.1) hinges on *fields grouping*: new MF
vectors are re-partitioned from ``ComputeMF`` to ``MFStorage`` by their KV
key, which "guarantees only a single worker node should operate over a
specific video or user vector at some point", making vector updates atomic
without locks.  :class:`FieldsGrouping` implements exactly that guarantee
with a stable hash, and the topology tests assert it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..hashing import combined_hash
from .tuples import StreamTuple


class Grouping(ABC):
    """Strategy mapping an incoming tuple to target worker indices."""

    @abstractmethod
    def select(self, tup: StreamTuple, n_workers: int) -> Sequence[int]:
        """Return the worker indices (usually one) that receive ``tup``."""

    def describe(self) -> str:
        """Human-readable label used in topology dumps."""
        return type(self).__name__


class ShuffleGrouping(Grouping):
    """Round-robin distribution — even load, no key affinity.

    Deterministic (a counter, not randomness) so that test runs are
    reproducible; Storm's shuffle grouping promises only even distribution,
    which round-robin satisfies.
    """

    def __init__(self) -> None:
        self._next = 0

    def select(self, tup: StreamTuple, n_workers: int) -> Sequence[int]:
        worker = self._next % n_workers
        self._next += 1
        return (worker,)


class FieldsGrouping(Grouping):
    """Route by a stable hash of selected fields.

    All tuples agreeing on the grouping fields go to the same worker — the
    single-writer guarantee the paper's MF storage design relies on.
    """

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise ValueError("fields grouping needs at least one field")
        self.fields = tuple(fields)

    def select(self, tup: StreamTuple, n_workers: int) -> Sequence[int]:
        key = tup.select(self.fields)
        return (combined_hash(key) % n_workers,)

    def describe(self) -> str:
        return f"FieldsGrouping({', '.join(self.fields)})"


class GlobalGrouping(Grouping):
    """Send every tuple to worker 0 (a single consumer)."""

    def select(self, tup: StreamTuple, n_workers: int) -> Sequence[int]:
        return (0,)


class AllGrouping(Grouping):
    """Broadcast every tuple to all workers (e.g. config refresh signals)."""

    def select(self, tup: StreamTuple, n_workers: int) -> Sequence[int]:
        return tuple(range(n_workers))
