"""Storm-like stream-processing substrate (paper §5.1).

Implements the Storm concepts the paper's deployment relies on — streams of
tuples, spouts, bolts, groupings, topologies — with three interchangeable
executors: a deterministic single-threaded one, a threaded one, and a
process-parallel one running bolt workers on real cores.
"""

from .executor import QUEUE_POLICIES, LocalExecutor, ThreadedExecutor
from .process import ProcessExecutor
from .grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    ShuffleGrouping,
)
from .metrics import ComponentMetrics, LatencyStats, TopologyMetrics
from .topology import (
    Bolt,
    BoltDeclarer,
    Collector,
    ComponentContext,
    Spout,
    Topology,
    TopologyBuilder,
)
from .tuples import DEFAULT_STREAM, StreamTuple

__all__ = [
    "DEFAULT_STREAM",
    "StreamTuple",
    "Grouping",
    "ShuffleGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "AllGrouping",
    "Spout",
    "Bolt",
    "Collector",
    "ComponentContext",
    "Topology",
    "TopologyBuilder",
    "BoltDeclarer",
    "LocalExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "QUEUE_POLICIES",
    "TopologyMetrics",
    "ComponentMetrics",
    "LatencyStats",
]
