"""Storm-like stream-processing substrate (paper §5.1).

Implements the Storm concepts the paper's deployment relies on — streams of
tuples, spouts, bolts, groupings, topologies — with two interchangeable
executors: a deterministic single-threaded one and a threaded one.
"""

from .executor import QUEUE_POLICIES, LocalExecutor, ThreadedExecutor
from .grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    ShuffleGrouping,
)
from .metrics import ComponentMetrics, LatencyStats, TopologyMetrics
from .topology import (
    Bolt,
    BoltDeclarer,
    Collector,
    ComponentContext,
    Spout,
    Topology,
    TopologyBuilder,
)
from .tuples import DEFAULT_STREAM, StreamTuple

__all__ = [
    "DEFAULT_STREAM",
    "StreamTuple",
    "Grouping",
    "ShuffleGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "AllGrouping",
    "Spout",
    "Bolt",
    "Collector",
    "ComponentContext",
    "Topology",
    "TopologyBuilder",
    "BoltDeclarer",
    "LocalExecutor",
    "ThreadedExecutor",
    "QUEUE_POLICIES",
    "TopologyMetrics",
    "ComponentMetrics",
    "LatencyStats",
]
