"""Topology model: spouts, bolts, and the builder that wires them.

Mirrors Storm's programming model as described in §5.1 of the paper: a spout
produces input streams, bolts consume and transform streams, and a topology
is the directed graph of components plus the grouping on every edge.
Components declare *factories* rather than instances because each worker of
a component gets its own private instance — that per-worker isolation is
what lets fields grouping deliver single-writer semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..errors import TopologyError
from .grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    ShuffleGrouping,
)
from .tuples import DEFAULT_STREAM, StreamTuple


@dataclass(frozen=True, slots=True)
class ComponentContext:
    """What a spout/bolt worker knows about its place in the topology."""

    component: str
    worker_index: int
    parallelism: int


class Collector:
    """Collects the tuples a component emits during one invocation.

    The executor drains :attr:`emitted` after each call; components must not
    hold a reference across invocations.
    """

    def __init__(self) -> None:
        self.emitted: list[StreamTuple] = []
        # Trace metadata stamped onto every emitted tuple (set by the
        # executor before each spout/bolt invocation when tracing is on).
        self.trace: Any = None

    def emit(
        self, values: Mapping[str, Any], stream: str = DEFAULT_STREAM
    ) -> StreamTuple:
        tup = StreamTuple(values, stream=stream, trace=self.trace)
        self.emitted.append(tup)
        return tup

    def drain(self) -> list[StreamTuple]:
        out = self.emitted
        self.emitted = []
        return out


class Spout(ABC):
    """A source of stream tuples.

    The executor calls :meth:`open` once per worker, then repeatedly calls
    :meth:`next_tuple` until it returns ``None`` (source exhausted) or the
    run is stopped.  Streaming sources that are momentarily idle may raise
    :class:`NotReady` — only the threaded executor retries those.
    """

    def open(self, ctx: ComponentContext) -> None:
        """Per-worker initialisation hook (default: none)."""

    @abstractmethod
    def next_tuple(self) -> StreamTuple | None:
        """Return the next tuple, or ``None`` when the source is exhausted."""

    def close(self) -> None:
        """Per-worker shutdown hook (default: none)."""


class Bolt(ABC):
    """A stream transformer: consumes tuples, may emit new ones."""

    def prepare(self, ctx: ComponentContext) -> None:
        """Per-worker initialisation hook (default: none)."""

    @abstractmethod
    def process(self, tup: StreamTuple, collector: Collector) -> None:
        """Handle one tuple; emit downstream tuples via ``collector``."""

    def flush(self, collector: Collector) -> None:
        """Emit any buffered output (default: none).

        Micro-batching bolts override this.  Executors call it once per
        worker after the sources are exhausted — before :meth:`cleanup`,
        with a live collector — so a partially filled batch is never lost
        at the end of a run.
        """

    def cleanup(self) -> None:
        """Per-worker shutdown hook (default: none)."""


@dataclass(frozen=True, slots=True)
class Subscription:
    """One inbound edge of a bolt: a source component + stream + grouping."""

    source: str
    stream: str
    grouping: Grouping


@dataclass(slots=True)
class ComponentSpec:
    """Declaration of one topology component."""

    name: str
    factory: Callable[[], Spout] | Callable[[], Bolt]
    parallelism: int
    is_spout: bool
    subscriptions: list[Subscription] = field(default_factory=list)


class BoltDeclarer:
    """Fluent helper returned by :meth:`TopologyBuilder.set_bolt`.

    Mirrors Storm's declarer API::

        builder.set_bolt("mf_storage", factory, parallelism=4) \\
               .fields_grouping("compute_mf", ["key"])
    """

    def __init__(self, spec: ComponentSpec) -> None:
        self._spec = spec

    def _subscribe(
        self, source: str, grouping: Grouping, stream: str
    ) -> "BoltDeclarer":
        self._spec.subscriptions.append(Subscription(source, stream, grouping))
        return self

    def shuffle_grouping(
        self, source: str, stream: str = DEFAULT_STREAM
    ) -> "BoltDeclarer":
        return self._subscribe(source, ShuffleGrouping(), stream)

    def fields_grouping(
        self, source: str, fields: Iterable[str], stream: str = DEFAULT_STREAM
    ) -> "BoltDeclarer":
        return self._subscribe(source, FieldsGrouping(tuple(fields)), stream)

    def global_grouping(
        self, source: str, stream: str = DEFAULT_STREAM
    ) -> "BoltDeclarer":
        return self._subscribe(source, GlobalGrouping(), stream)

    def all_grouping(
        self, source: str, stream: str = DEFAULT_STREAM
    ) -> "BoltDeclarer":
        return self._subscribe(source, AllGrouping(), stream)


class Topology:
    """A validated, immutable topology ready for execution."""

    def __init__(self, components: dict[str, ComponentSpec]) -> None:
        self.components = components
        # Routing table: (source, stream) -> [(target, grouping), ...]
        self.routes: dict[tuple[str, str], list[tuple[str, Grouping]]] = {}
        for spec in components.values():
            for sub in spec.subscriptions:
                self.routes.setdefault((sub.source, sub.stream), []).append(
                    (spec.name, sub.grouping)
                )

    @property
    def spouts(self) -> list[ComponentSpec]:
        return [s for s in self.components.values() if s.is_spout]

    @property
    def bolts(self) -> list[ComponentSpec]:
        return [s for s in self.components.values() if not s.is_spout]

    def targets(self, source: str, stream: str) -> list[tuple[str, Grouping]]:
        """Downstream (bolt, grouping) pairs for tuples on (source, stream)."""
        return self.routes.get((source, stream), [])

    def with_wrapped_bolts(
        self, wrap: Callable[[ComponentSpec], Callable[[], Bolt]]
    ) -> "Topology":
        """A copy of this topology with every bolt factory replaced.

        ``wrap`` receives each bolt's spec and returns the replacement
        factory (typically one that decorates the original factory's
        product).  Spouts, parallelism, and wiring are untouched.  The
        fault-injection harness uses this to interpose chaos wrappers
        without rebuilding the topology by hand.
        """
        components: dict[str, ComponentSpec] = {}
        for name, spec in self.components.items():
            if spec.is_spout:
                components[name] = spec
            else:
                components[name] = ComponentSpec(
                    name=spec.name,
                    factory=wrap(spec),
                    parallelism=spec.parallelism,
                    is_spout=False,
                    subscriptions=list(spec.subscriptions),
                )
        return Topology(components)

    def describe(self) -> str:
        """Render the wiring as text, one line per edge (for docs/tests)."""
        lines = []
        for spec in self.components.values():
            kind = "spout" if spec.is_spout else "bolt"
            lines.append(f"{spec.name} [{kind} x{spec.parallelism}]")
            for sub in spec.subscriptions:
                lines.append(
                    f"  <- {sub.source}/{sub.stream} via {sub.grouping.describe()}"
                )
        return "\n".join(lines)


class TopologyBuilder:
    """Declarative builder for :class:`Topology` graphs."""

    def __init__(self) -> None:
        self._components: dict[str, ComponentSpec] = {}

    def set_spout(
        self, name: str, factory: Callable[[], Spout], parallelism: int = 1
    ) -> None:
        self._add(ComponentSpec(name, factory, parallelism, is_spout=True))

    def set_bolt(
        self, name: str, factory: Callable[[], Bolt], parallelism: int = 1
    ) -> BoltDeclarer:
        spec = ComponentSpec(name, factory, parallelism, is_spout=False)
        self._add(spec)
        return BoltDeclarer(spec)

    def _add(self, spec: ComponentSpec) -> None:
        if spec.parallelism < 1:
            raise TopologyError(
                f"component {spec.name!r}: parallelism must be >= 1"
            )
        if spec.name in self._components:
            raise TopologyError(f"duplicate component name: {spec.name!r}")
        self._components[spec.name] = spec

    def build(self) -> Topology:
        """Validate and freeze the topology."""
        if not any(s.is_spout for s in self._components.values()):
            raise TopologyError("a topology needs at least one spout")
        for spec in self._components.values():
            if spec.is_spout and spec.subscriptions:
                raise TopologyError(
                    f"spout {spec.name!r} cannot subscribe to streams"
                )
            for sub in spec.subscriptions:
                if sub.source not in self._components:
                    raise TopologyError(
                        f"bolt {spec.name!r} subscribes to unknown component "
                        f"{sub.source!r}"
                    )
                if sub.source == spec.name:
                    raise TopologyError(
                        f"bolt {spec.name!r} cannot subscribe to itself"
                    )
            if not spec.is_spout and not spec.subscriptions:
                raise TopologyError(
                    f"bolt {spec.name!r} has no input subscription"
                )
        return Topology(dict(self._components))
