"""Stream tuples — the unit of data flowing through a topology.

Storm models a stream as "an unbounded sequence of data tuples" (§5.1).  A
:class:`StreamTuple` is an immutable mapping of named fields to values plus
the stream id it was emitted on.  Field access is by name, matching how the
paper's topology routes, e.g. grouping ``<user, video, action>`` tuples by
the ``user`` field.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Iterator, Mapping

DEFAULT_STREAM = "default"


class StreamTuple(Mapping[str, Any]):
    """An immutable named-field tuple travelling on a stream.

    >>> t = StreamTuple({"user": "u1", "video": "v9"}, stream="actions")
    >>> t["user"]
    'u1'
    >>> t.stream
    'actions'
    """

    __slots__ = ("_values", "stream", "trace")

    def __init__(
        self,
        values: Mapping[str, Any],
        stream: str = DEFAULT_STREAM,
        trace: Any = None,
    ) -> None:
        if not values:
            raise ValueError("a stream tuple must carry at least one field")
        self._values: Mapping[str, Any] = MappingProxyType(dict(values))
        self.stream = stream
        # Trace metadata (a SpanContext when tracing is on) rides along
        # with the tuple but is not data: excluded from equality/hash so
        # grouping and dedup semantics are identical with tracing enabled.
        self.trace = trace

    def __getitem__(self, field: str) -> Any:
        return self._values[field]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def select(self, fields: tuple[str, ...]) -> tuple[Any, ...]:
        """Project the tuple onto ``fields`` (used by fields grouping)."""
        return tuple(self._values[f] for f in fields)

    def with_fields(self, **extra: Any) -> "StreamTuple":
        """Return a copy carrying additional/overridden fields."""
        merged = dict(self._values)
        merged.update(extra)
        return StreamTuple(merged, stream=self.stream, trace=self.trace)

    def with_trace(self, trace: Any) -> "StreamTuple":
        """Return a copy carrying ``trace`` as its trace metadata."""
        tup = StreamTuple(self._values, stream=self.stream, trace=trace)
        return tup

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from a plain dict.
        # Trace metadata is process-local (spans live in the tracer that
        # minted them), so it does not cross a process boundary.
        return (StreamTuple, (dict(self._values), self.stream))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"StreamTuple({body}, stream={self.stream!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return self.stream == other.stream and dict(self._values) == dict(
            other._values
        )

    def __hash__(self) -> int:
        return hash((self.stream, frozenset(self._values.items())))
