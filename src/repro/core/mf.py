"""Biased matrix factorization (paper §3.1).

Implements the prediction rule of Eq. 2::

    r_hat(u, i) = mu + b_u + b_i + x_u . y_i

with SGD updates in the direction opposite the gradient of the regularized
squared error (Eq. 3).  Parameters live in a :class:`~repro.kvstore.KVStore`
— exactly how the production system stores them (§5.1) — so that vectors are
addressable by key from any worker, and so the Figure 2 topology can split
*computing* an update (``ComputeMF``) from *storing* it (``MFStorage``).

Two parameter layouts sit behind one model API (DESIGN.md "Model storage
backends & batching"):

* ``backend="kv"`` — one store entry per vector/bias under the ``mf:x`` /
  ``mf:y`` / ``mf:bu`` / ``mf:bi`` namespaces, the paper's
  distributed-storage layout;
* ``backend="arena"`` (default) — per-kind
  :class:`~repro.core.arena.FactorArena` objects stored as single entries
  under ``mf:meta``, so batch reads are contiguous gathers and
  :meth:`MFModel.predict_many` is one matmul.

Both layouts hold identical float64 values, so predictions are identical;
constructing a model over a store written by the other backend migrates
the layout in place (see :meth:`MFModel._migrate_layout`).

Two deliberate deviations from the paper's text, both documented in
DESIGN.md:

* Eq. 5 as printed updates ``x_u`` by ``eta * (e * x_u - lambda * x_u)``,
  which never mixes user and item factors and therefore cannot learn
  interactions; we use the standard SGD form ``x_u += eta * (e * y_i -
  lambda * x_u)`` (and symmetrically for ``y_i``), which is what the cited
  optimization actually is.
* The global average ``mu`` is maintained as a running mean over *all*
  observed ratings including zero-rated impressions.  With positive-only
  updates a ratings-only mean degenerates to exactly 1 and the error
  vanishes; counting impressions keeps ``mu`` at the empirical positive
  rate, preserving Eq. 2's interpretation of ``mu`` as the overall average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..config import MFConfig
from ..errors import ModelError
from ..hashing import stable_hash
from ..kvstore import InMemoryKVStore, KVStore, Namespace
from ..obs.profile import profiled
from .arena import FactorArena
from .shm_arena import SharedModelState

_KINDS = ("user", "video")


@dataclass(frozen=True, slots=True)
class MFUpdate:
    """The freshly computed parameters for one ``(user, video)`` SGD step.

    This is the message ``ComputeMF`` sends to ``MFStorage`` in the Figure 2
    topology: new vectors plus bookkeeping.  Applying it writes the four
    parameters back to the store.
    """

    user_id: str
    video_id: str
    x_u: np.ndarray
    y_i: np.ndarray
    b_u: float
    b_i: float
    error: float
    eta: float


class _KVParams:
    """Per-entity-key parameter layout (the paper's distributed storage).

    Every vector and bias is its own store entry, addressable by key from
    any worker.  Batch reads go through the store's ``mget`` so a sharded
    backing pays one call per shard, not one per key.
    """

    _VEC_PREFIX = {"user": "mf:x", "video": "mf:y"}
    _BIAS_PREFIX = {"user": "mf:bu", "video": "mf:bi"}

    def __init__(self, store: KVStore, f: int) -> None:
        self._f = f
        self._vec = {
            kind: Namespace(store, self._VEC_PREFIX[kind]) for kind in _KINDS
        }
        self._bias = {
            kind: Namespace(store, self._BIAS_PREFIX[kind]) for kind in _KINDS
        }

    # -- scalar access ----------------------------------------------------

    def vector(self, kind: str, entity_id: str) -> np.ndarray | None:
        return self._vec[kind].get(entity_id)

    def bias(self, kind: str, entity_id: str) -> float:
        return self._bias[kind].get(entity_id, 0.0)

    def has(self, kind: str, entity_id: str) -> bool:
        return entity_id in self._vec[kind]

    def count(self, kind: str) -> int:
        return len(self._vec[kind])

    def ids(self, kind: str) -> list[str]:
        return list(self._vec[kind].keys())

    def setdefault_vector(
        self, kind: str, entity_id: str, factory: Callable[[], np.ndarray]
    ) -> np.ndarray:
        return self._vec[kind].setdefault(entity_id, factory)

    def put(
        self, kind: str, entity_id: str, vector: np.ndarray, bias: float
    ) -> None:
        self._vec[kind].put(entity_id, vector)
        self._bias[kind].put(entity_id, bias)

    # -- batch access -----------------------------------------------------

    def vectors_many(
        self, kind: str, entity_ids: Sequence[str]
    ) -> list[np.ndarray | None]:
        return self._vec[kind].mget(list(entity_ids))

    def vectors_matrix(self, kind: str, entity_ids: Sequence[str]) -> np.ndarray:
        values = self._vec[kind].mget(list(entity_ids))
        if not values:
            return np.zeros((0, self._f), dtype=np.float64)
        zero = None
        rows = []
        for value in values:
            if value is None:
                if zero is None:
                    zero = np.zeros(self._f, dtype=np.float64)
                value = zero
            rows.append(value)
        return np.array(rows, dtype=np.float64)

    def biases_array(self, kind: str, entity_ids: Sequence[str]) -> np.ndarray:
        return np.array(
            self._bias[kind].mget(list(entity_ids), 0.0), dtype=np.float64
        )

    def put_many(
        self, kind: str, items: Sequence[tuple[str, np.ndarray, float]]
    ) -> None:
        self._vec[kind].mput([(eid, vec) for eid, vec, _ in items])
        self._bias[kind].mput([(eid, bias) for eid, _, bias in items])

    # -- bulk export / import (save, load, migration) ---------------------

    def export(self, kind: str) -> tuple[list[str], np.ndarray, np.ndarray]:
        ids = sorted(self._vec[kind].keys())
        if not ids:
            return [], np.zeros((0, self._f)), np.zeros(0)
        vectors = np.stack(self._vec[kind].mget(ids))
        biases = np.array(self._bias[kind].mget(ids, 0.0), dtype=np.float64)
        return ids, vectors, biases

    def bias_only_ids(self, kind: str) -> list[str]:
        """Ids with a bias entry but no vector (possible in this layout)."""
        return [
            entity_id
            for entity_id in self._bias[kind].keys()
            if entity_id not in self._vec[kind]
        ]

    def delete(self, kind: str, entity_id: str) -> None:
        self._vec[kind].delete(entity_id)
        self._bias[kind].delete(entity_id)


class _ArenaParams:
    """Contiguous-arena parameter layout.

    One :class:`FactorArena` per entity kind, stored as a single entry in
    the model's meta namespace.  Reads fetch the arena object from the
    store on every access (never cached on the model), so a checkpoint
    restored *into the store* — the recovery path constructs the model
    before restoring — is picked up transparently.  Writes run inside
    :meth:`KVStore.update` callbacks, so fault injection, metrics and
    breaker wrappers observe them as ordinary store operations and the
    entry version advances with every commit.
    """

    ARENA_KEYS = {"user": "arena:user", "video": "arena:video"}

    def __init__(self, meta: Namespace, f: int) -> None:
        self._meta = meta
        self._f = f

    def _arena(self, kind: str) -> FactorArena | None:
        return self._meta.get(self.ARENA_KEYS[kind])

    def _mutate(self, kind: str, fn: Callable[[FactorArena], None]) -> None:
        def _apply(arena: FactorArena | None) -> FactorArena:
            if arena is None:
                arena = FactorArena(self._f)
            fn(arena)
            return arena

        self._meta.update(self.ARENA_KEYS[kind], _apply, default=None)

    # -- scalar access ----------------------------------------------------

    def vector(self, kind: str, entity_id: str) -> np.ndarray | None:
        arena = self._arena(kind)
        return None if arena is None else arena.vector(entity_id)

    def bias(self, kind: str, entity_id: str) -> float:
        arena = self._arena(kind)
        return 0.0 if arena is None else arena.bias(entity_id)

    def has(self, kind: str, entity_id: str) -> bool:
        arena = self._arena(kind)
        return arena is not None and entity_id in arena

    def count(self, kind: str) -> int:
        arena = self._arena(kind)
        return 0 if arena is None else len(arena)

    def ids(self, kind: str) -> list[str]:
        arena = self._arena(kind)
        return [] if arena is None else arena.ids()

    def setdefault_vector(
        self, kind: str, entity_id: str, factory: Callable[[], np.ndarray]
    ) -> np.ndarray:
        result: list[np.ndarray] = []

        def _fn(arena: FactorArena) -> None:
            result.append(arena.setdefault_vector(entity_id, factory))

        self._mutate(kind, _fn)
        return result[0]

    def put(
        self, kind: str, entity_id: str, vector: np.ndarray, bias: float
    ) -> None:
        self._mutate(kind, lambda arena: arena.put(entity_id, vector, bias))

    # -- batch access -----------------------------------------------------

    def vectors_many(
        self, kind: str, entity_ids: Sequence[str]
    ) -> list[np.ndarray | None]:
        arena = self._arena(kind)
        if arena is None:
            return [None] * len(entity_ids)
        return arena.vectors_many(list(entity_ids))

    def vectors_matrix(self, kind: str, entity_ids: Sequence[str]) -> np.ndarray:
        arena = self._arena(kind)
        if arena is None:
            return np.zeros((len(entity_ids), self._f), dtype=np.float64)
        return arena.vectors_matrix(list(entity_ids))

    def biases_array(self, kind: str, entity_ids: Sequence[str]) -> np.ndarray:
        arena = self._arena(kind)
        if arena is None:
            return np.zeros(len(entity_ids), dtype=np.float64)
        return arena.biases_array(list(entity_ids))

    def put_many(
        self, kind: str, items: Sequence[tuple[str, np.ndarray, float]]
    ) -> None:
        if not items:
            return
        self._mutate(kind, lambda arena: arena.put_many(items))

    # -- bulk export / import (save, load, migration) ---------------------

    def export(self, kind: str) -> tuple[list[str], np.ndarray, np.ndarray]:
        arena = self._arena(kind)
        if arena is None or not len(arena):
            return [], np.zeros((0, self._f)), np.zeros(0)
        ids, vectors, biases, has_vec = arena.export_rows()
        rows = {entity_id: row for row, entity_id in enumerate(ids)}
        order = sorted(
            entity_id for row, entity_id in enumerate(ids) if has_vec[row]
        )
        idx = np.array([rows[entity_id] for entity_id in order], dtype=np.int64)
        return order, vectors[idx], biases[idx]


class _SharedArenaParams:
    """Shared-memory arena layout: the process-parallel backend.

    One :class:`~repro.core.shm_arena.SharedFactorArena` per entity kind,
    mapped (not copied) into every worker process.  Reads and writes go
    straight to the shared block — no store round-trip, no serialisation —
    which is what lets ``ProcessExecutor`` bolts run SGD on the one true
    parameter set.  The single-writer-per-key invariant (fields grouping)
    is what makes lock-free row writes safe; the arena's flock discipline
    covers the structural mutations (interning, growth, ``mu``).

    Unlike the other layouts this one does not live in the model's KV
    store: checkpointing goes through :meth:`SharedFactorArena.snapshot`
    (see ``MFModel.export_shared`` / ``load_shared``).
    """

    def __init__(self, state: SharedModelState) -> None:
        self._state = state
        self._f = state.f

    def _arena(self, kind: str):
        return self._state.arena(kind)

    # -- scalar access ----------------------------------------------------

    def vector(self, kind: str, entity_id: str) -> np.ndarray | None:
        return self._arena(kind).vector(entity_id)

    def bias(self, kind: str, entity_id: str) -> float:
        return self._arena(kind).bias(entity_id)

    def has(self, kind: str, entity_id: str) -> bool:
        return entity_id in self._arena(kind)

    def count(self, kind: str) -> int:
        return len(self._arena(kind))

    def ids(self, kind: str) -> list[str]:
        return self._arena(kind).ids()

    def setdefault_vector(
        self, kind: str, entity_id: str, factory: Callable[[], np.ndarray]
    ) -> np.ndarray:
        return self._arena(kind).setdefault_vector(entity_id, factory)

    def put(
        self, kind: str, entity_id: str, vector: np.ndarray, bias: float
    ) -> None:
        self._arena(kind).put(entity_id, vector, bias)

    # -- batch access -----------------------------------------------------

    def vectors_many(
        self, kind: str, entity_ids: Sequence[str]
    ) -> list[np.ndarray | None]:
        return self._arena(kind).vectors_many(list(entity_ids))

    def vectors_matrix(self, kind: str, entity_ids: Sequence[str]) -> np.ndarray:
        return self._arena(kind).vectors_matrix(list(entity_ids))

    def biases_array(self, kind: str, entity_ids: Sequence[str]) -> np.ndarray:
        return self._arena(kind).biases_array(list(entity_ids))

    def put_many(
        self, kind: str, items: Sequence[tuple[str, np.ndarray, float]]
    ) -> None:
        if items:
            self._arena(kind).put_many(items)

    # -- bulk export / import (save, load) --------------------------------

    def export(self, kind: str) -> tuple[list[str], np.ndarray, np.ndarray]:
        arena = self._arena(kind)
        ids, vectors, biases, has_vec = arena.export_rows()
        rows = {entity_id: row for row, entity_id in enumerate(ids)}
        order = sorted(
            entity_id for row, entity_id in enumerate(ids) if has_vec[row]
        )
        if not order:
            return [], np.zeros((0, self._f)), np.zeros(0)
        idx = np.array([rows[entity_id] for entity_id in order], dtype=np.int64)
        return order, vectors[idx], biases[idx]


class MFBatchSession:
    """A read-through overlay for micro-batched SGD.

    Prefetches every touched vector and bias with batch reads, replays
    :meth:`MFModel.sgd_step` math through the overlay (each step reads the
    previous step's in-overlay values — exactly what the sequential path
    reads from the store), and commits all dirty parameters in one batch
    write plus one atomic ``mu`` fold.  The per-step arithmetic is
    byte-identical to calling :meth:`MFModel.observe_rating` /
    :meth:`MFModel.sgd_step` per action; only the number of store
    operations changes.

    Not thread-safe; one session per worker per batch (the same ownership
    rule fields grouping gives the bolts).
    """

    def __init__(
        self,
        model: "MFModel",
        user_ids: Iterable[str] = (),
        video_ids: Iterable[str] = (),
    ) -> None:
        self._model = model
        self._vectors: dict[tuple[str, str], np.ndarray | None] = {}
        self._biases: dict[tuple[str, str], float] = {}
        self._dirty: list[tuple[str, str]] = []
        self._dirty_set: set[tuple[str, str]] = set()
        self._prefetch("user", list(dict.fromkeys(user_ids)))
        self._prefetch("video", list(dict.fromkeys(video_ids)))
        total, count = model._mu_state()
        self._mu_total = float(total)
        self._mu_count = int(count)
        self._mu_ratings: list[float] = []

    def _prefetch(self, kind: str, entity_ids: list[str]) -> None:
        if not entity_ids:
            return
        params = self._model._params
        vectors = params.vectors_many(kind, entity_ids)
        biases = params.biases_array(kind, entity_ids)
        for entity_id, vector, bias in zip(entity_ids, vectors, biases):
            self._vectors[(kind, entity_id)] = vector
            self._biases[(kind, entity_id)] = float(bias)

    def _vector(self, kind: str, entity_id: str) -> np.ndarray | None:
        key = (kind, entity_id)
        if key not in self._vectors:
            self._prefetch(kind, [entity_id])
        return self._vectors[key]

    def _bias(self, kind: str, entity_id: str) -> float:
        key = (kind, entity_id)
        if key not in self._biases:
            self._prefetch(kind, [entity_id])
        return self._biases[key]

    def _write(
        self, kind: str, entity_id: str, vector: np.ndarray, bias: float
    ) -> None:
        key = (kind, entity_id)
        self._vectors[key] = vector
        self._biases[key] = bias
        if key not in self._dirty_set:
            self._dirty_set.add(key)
            self._dirty.append(key)

    @property
    def mu(self) -> float:
        return self._mu_total / self._mu_count if self._mu_count else 0.0

    def observe_rating(self, rating: float) -> None:
        """Overlay twin of :meth:`MFModel.observe_rating` (same fold order)."""
        self._mu_total += rating
        self._mu_count += 1
        self._mu_ratings.append(rating)

    def sgd_step(
        self, user_id: str, video_id: str, rating: float, eta: float
    ) -> MFUpdate:
        """One SGD step through the overlay; identical math to the model's."""
        if eta <= 0:
            raise ModelError(f"learning rate must be positive, got {eta}")
        model = self._model
        lam = model.config.lam
        x_u = self._vector("user", user_id)
        if x_u is None:
            x_u = model._init_vector("user", user_id)
        y_i = self._vector("video", video_id)
        if y_i is None:
            y_i = model._init_vector("video", video_id)
        b_u = self._bias("user", user_id)
        b_i = self._bias("video", video_id)
        e = rating - (self.mu + b_u + b_i + float(x_u @ y_i))
        new_b_u = b_u + eta * (e - lam * b_u)
        new_b_i = b_i + eta * (e - lam * b_i)
        new_x_u = x_u + eta * (e * y_i - lam * x_u)
        new_y_i = y_i + eta * (e * x_u - lam * y_i)
        self._write("user", user_id, new_x_u, new_b_u)
        self._write("video", video_id, new_y_i, new_b_i)
        return MFUpdate(
            user_id=user_id,
            video_id=video_id,
            x_u=new_x_u,
            y_i=new_y_i,
            b_u=new_b_u,
            b_i=new_b_i,
            error=e,
            eta=eta,
        )

    def commit(self, params: bool = True) -> None:
        """Write all dirty parameters and the ``mu`` delta to the store.

        Parameters go out as one batch per kind; ``mu`` is folded with one
        atomic update that replays the session's ratings in order, so
        concurrent writers (other workers' commits) are never overwritten
        and a single-rating batch is exactly the sequential code path.

        ``params=False`` commits only the ``mu`` fold — the ``ComputeMF``
        bolt's shape, where a downstream single-writer (``MFStorage``)
        owns parameter persistence and receives the new vectors as tuples.
        """
        backend = self._model._params
        if params:
            for kind in _KINDS:
                items = [
                    (entity_id, self._vectors[(kind, entity_id)], self._biases[(kind, entity_id)])
                    for k, entity_id in self._dirty
                    if k == kind
                ]
                if items:
                    backend.put_many(kind, items)
        if self._mu_ratings:
            self._model._mu_fold(list(self._mu_ratings))
        if params:
            self._dirty.clear()
            self._dirty_set.clear()
        self._mu_ratings.clear()


class MFModel:
    """KV-store-backed biased MF model with per-entity lazy initialisation.

    New user/video vectors are initialised deterministically from the
    entity id (seed XOR stable hash), so initialisation is idempotent: any
    worker that first touches an entity produces the same vector.

    ``config.backend`` selects the parameter layout (contiguous arena vs
    per-entity KV entries); every public method behaves identically under
    both.
    """

    def __init__(
        self,
        config: MFConfig | None = None,
        store: KVStore | None = None,
        shared: SharedModelState | None = None,
    ) -> None:
        self.config = config or MFConfig()
        self._store = store if store is not None else InMemoryKVStore()
        self._meta = Namespace(self._store, "mf:meta")
        self._shared = shared
        if shared is not None:
            if shared.f != self.config.f:
                raise ModelError(
                    f"shared arena has f={shared.f}, config has "
                    f"f={self.config.f}"
                )
            # The shared block *is* the parameter store: no KV layout to
            # adopt, ``mu`` lives in the arena control block, and every
            # process attaching the same segments sees one model.
            self._params: _SharedArenaParams | _ArenaParams | _KVParams = (
                _SharedArenaParams(shared)
            )
            return
        if self.config.backend == "arena":
            self._params = _ArenaParams(self._meta, self.config.f)
        else:
            self._params = _KVParams(self._store, self.config.f)
        self._migrate_layout()

    @property
    def backend(self) -> str:
        """The active parameter layout (``"shared"``/``"arena"``/``"kv"``)."""
        return "shared" if self._shared is not None else self.config.backend

    @property
    def shared_state(self) -> SharedModelState | None:
        """The shared-memory block backing this model, if any."""
        return self._shared

    # ------------------------------------------------------------------
    # Layout migration
    # ------------------------------------------------------------------

    def _migrate_layout(self) -> None:
        """Adopt a store written by the other backend.

        If the store already holds this backend's layout, nothing happens
        (cheap: one or two meta reads).  Otherwise, parameters found in
        the other layout are moved over and the old entries deleted, so a
        checkpoint written by either backend restores into a model of the
        other — *restore first, construct after* for cross-backend moves.
        Mixing live models of both backends over one store is not
        supported.
        """
        legacy = _KVParams(self._store, self.config.f)
        if self.config.backend == "arena":
            arena_params = self._params
            assert isinstance(arena_params, _ArenaParams)
            for kind in _KINDS:
                if self._meta.get(arena_params.ARENA_KEYS[kind]) is not None:
                    return  # arena layout present: nothing to migrate
            for kind in _KINDS:
                ids = legacy.ids(kind)
                bias_only = legacy.bias_only_ids(kind)
                if not ids and not bias_only:
                    continue
                vectors = legacy.vectors_many(kind, ids)
                biases = legacy.biases_array(kind, ids)
                extra_biases = legacy.biases_array(kind, bias_only)

                def _fill(arena: FactorArena) -> None:
                    for entity_id, vector, bias in zip(ids, vectors, biases):
                        arena.put(entity_id, vector, float(bias))
                    for entity_id, bias in zip(bias_only, extra_biases):
                        arena.set_bias(entity_id, float(bias))

                arena_params._mutate(kind, _fill)
                for entity_id in set(ids) | set(bias_only):
                    legacy.delete(kind, entity_id)
        else:
            arenas = {
                kind: self._meta.get(_ArenaParams.ARENA_KEYS[kind])
                for kind in _KINDS
            }
            if all(arena is None for arena in arenas.values()):
                return  # no arena layout around: nothing to migrate
            for kind in _KINDS:
                if legacy.ids(kind) or legacy.bias_only_ids(kind):
                    return  # both layouts present: keep the existing kv one
            for kind, arena in arenas.items():
                if arena is None:
                    continue
                ids, vectors, biases, has_vec = arena.export_rows()
                items = [
                    (entity_id, vectors[row], float(biases[row]))
                    for row, entity_id in enumerate(ids)
                    if has_vec[row]
                ]
                if items:
                    legacy.put_many(kind, items)
                for row, entity_id in enumerate(ids):
                    if not has_vec[row]:
                        legacy._bias[kind].put(entity_id, float(biases[row]))
                self._meta.delete(_ArenaParams.ARENA_KEYS[kind])

    # ------------------------------------------------------------------
    # Global average
    # ------------------------------------------------------------------

    def _mu_state(self) -> tuple[float, int]:
        """The ``(total, count)`` accumulator behind ``mu``."""
        if self._shared is not None:
            return self._shared.mu_state()
        return self._meta.get("mu", (0.0, 0))

    def _mu_fold(self, ratings: Sequence[float]) -> None:
        """Atomically fold observed ratings into the accumulator."""
        if not ratings:
            return
        if self._shared is not None:
            self._shared.mu_fold(ratings)
            return
        folded = list(ratings)

        def _fold(current: tuple[float, int]) -> tuple[float, int]:
            total, count = current
            for rating in folded:
                total = total + rating
                count = count + 1
            return (total, count)

        self._meta.update("mu", _fold, default=(0.0, 0))

    def _mu_put(self, total: float, count: int) -> None:
        """Overwrite the accumulator (load / batch-fit seeding)."""
        if self._shared is not None:
            self._shared.mu_set(total, count)
        else:
            self._meta.put("mu", (total, count))

    @property
    def mu(self) -> float:
        """The running overall average rating (Eq. 2's ``mu``)."""
        total, count = self._mu_state()
        return total / count if count else 0.0

    def observe_rating(self, rating: float) -> None:
        """Fold one observed rating (including zeros) into ``mu``."""
        self._mu_fold([rating])

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------

    def _init_vector(self, kind: str, entity_id: str) -> np.ndarray:
        rng = np.random.default_rng(
            (self.config.seed << 32) ^ stable_hash((kind, entity_id))
        )
        return rng.normal(0.0, self.config.init_scale, self.config.f)

    def user_vector(self, user_id: str) -> np.ndarray | None:
        """Return ``x_u`` or ``None`` when the user is unknown."""
        return self._params.vector("user", user_id)

    def video_vector(self, video_id: str) -> np.ndarray | None:
        """Return ``y_i`` or ``None`` when the video is unknown."""
        return self._params.vector("video", video_id)

    def user_vectors_many(
        self, user_ids: Sequence[str]
    ) -> list[np.ndarray | None]:
        """Batch :meth:`user_vector`: one store round-trip for the lot."""
        return self._params.vectors_many("user", user_ids)

    def video_vectors_many(
        self, video_ids: Sequence[str]
    ) -> list[np.ndarray | None]:
        """Batch :meth:`video_vector`: one store round-trip for the lot."""
        return self._params.vectors_many("video", video_ids)

    def video_biases_many(self, video_ids: Sequence[str]) -> np.ndarray:
        """Batch :meth:`video_bias` as a float64 array (0.0 for unknown)."""
        return self._params.biases_array("video", video_ids)

    def user_bias(self, user_id: str) -> float:
        return self._params.bias("user", user_id)

    def video_bias(self, video_id: str) -> float:
        return self._params.bias("video", video_id)

    def ensure_user(self, user_id: str) -> np.ndarray:
        """Return ``x_u``, initialising it first for a new user
        (Algorithm 1 lines 3-5)."""
        return self._params.setdefault_vector(
            "user", user_id, lambda: self._init_vector("user", user_id)
        )

    def ensure_video(self, video_id: str) -> np.ndarray:
        """Return ``y_i``, initialising it first for a new video
        (Algorithm 1 lines 6-8)."""
        return self._params.setdefault_vector(
            "video", video_id, lambda: self._init_vector("video", video_id)
        )

    def has_user(self, user_id: str) -> bool:
        return self._params.has("user", user_id)

    def has_video(self, video_id: str) -> bool:
        return self._params.has("video", video_id)

    @property
    def n_users(self) -> int:
        return self._params.count("user")

    @property
    def n_videos(self) -> int:
        return self._params.count("video")

    def known_videos(self) -> list[str]:
        """Ids of all videos with a learned vector."""
        return self._params.ids("video")

    def video_rows(self) -> tuple[list[str], np.ndarray, np.ndarray]:
        """Row-aligned ``(ids, vectors, biases)`` of every learned video.

        Ids are sorted, so the row order is deterministic across backends
        and across checkpoint restore — the ANN index build path
        (:meth:`repro.core.AnnIndex.build_from_model`) relies on this to
        make a rebuilt index comparable to the original.
        """
        return self._params.export("video")

    # ------------------------------------------------------------------
    # Prediction (Eq. 2) and error (Eq. 4)
    # ------------------------------------------------------------------

    def predict(self, user_id: str, video_id: str) -> float:
        """Predicted preference ``r_hat`` of Eq. 2.

        Unknown users/videos contribute nothing beyond ``mu`` and the known
        side's bias — the cold-start prediction the demographic fallback
        compensates for (§5.2.1).
        """
        score = self.mu + self.user_bias(user_id) + self.video_bias(video_id)
        x_u = self.user_vector(user_id)
        y_i = self.video_vector(video_id)
        if x_u is not None and y_i is not None:
            score += float(x_u @ y_i)
        return score

    @profiled(name="mf.predict_many")
    def predict_many(
        self, user_id: str, video_ids: list[str]
    ) -> np.ndarray:
        """Vectorized Eq. 2 over many candidate videos for one user.

        This is the "SORT&SELECT WITH User vector" stage of Figure 1: one
        batched bias fetch, one gather of the candidate vectors into an
        ``(n, f)`` matrix, one matmul.  Unknown videos contribute a zero
        row (and 0.0 bias), reproducing the scalar :meth:`predict`'s
        cold-start behaviour; the float op order per candidate —
        ``(mu + b_u + b_i) + x_u . y_i`` — matches :meth:`predict`, so
        scores agree with the scalar loop to within 1 ULP (the matmul's
        BLAS accumulation order inside the dot product may differ from
        the scalar ``@``).  Both backends route through this same path,
        so arena and KV predictions are *exactly* equal to each other.
        """
        base = self.mu + self.user_bias(user_id)
        biases = self._params.biases_array("video", video_ids)
        scores = base + biases
        x_u = self.user_vector(user_id)
        if x_u is not None and len(video_ids):
            matrix = self._params.vectors_matrix("video", video_ids)
            scores = scores + matrix @ x_u
        return scores

    def error(self, user_id: str, video_id: str, rating: float) -> float:
        """Prediction error ``e_ui`` of Eq. 4."""
        return rating - self.predict(user_id, video_id)

    # ------------------------------------------------------------------
    # SGD (Eq. 5, corrected; Algorithm 1 lines 9-14)
    # ------------------------------------------------------------------

    @profiled(name="mf.compute_update")
    def compute_update(
        self,
        user_id: str,
        video_id: str,
        rating: float,
        eta: float,
        persist_init: bool = True,
    ) -> MFUpdate:
        """Compute (without storing) one SGD step's new parameters.

        Initialises vectors for new entities.  ``eta`` is the per-action
        learning rate the adjustable strategy supplies (Eq. 8).  With
        ``persist_init=False`` new-entity vectors are derived (they are a
        deterministic function of the id) but *not* written — the topology's
        ``ComputeMF`` bolt uses this so that only ``MFStorage`` ever writes
        parameters.
        """
        if eta <= 0:
            raise ModelError(f"learning rate must be positive, got {eta}")
        lam = self.config.lam
        if persist_init:
            x_u = self.ensure_user(user_id)
            y_i = self.ensure_video(video_id)
        else:
            x_u = self.user_vector(user_id)
            if x_u is None:
                x_u = self._init_vector("user", user_id)
            y_i = self.video_vector(video_id)
            if y_i is None:
                y_i = self._init_vector("video", video_id)
        b_u = self.user_bias(user_id)
        b_i = self.video_bias(video_id)
        e = rating - (self.mu + b_u + b_i + float(x_u @ y_i))
        new_b_u = b_u + eta * (e - lam * b_u)
        new_b_i = b_i + eta * (e - lam * b_i)
        new_x_u = x_u + eta * (e * y_i - lam * x_u)
        new_y_i = y_i + eta * (e * x_u - lam * y_i)
        return MFUpdate(
            user_id=user_id,
            video_id=video_id,
            x_u=new_x_u,
            y_i=new_y_i,
            b_u=new_b_u,
            b_i=new_b_i,
            error=e,
            eta=eta,
        )

    def put_user(self, user_id: str, x_u: np.ndarray, b_u: float) -> None:
        """Write one user's parameters (the ``MFStorage`` user path)."""
        self._params.put("user", user_id, x_u, b_u)

    def put_video(self, video_id: str, y_i: np.ndarray, b_i: float) -> None:
        """Write one video's parameters (the ``MFStorage`` video path)."""
        self._params.put("video", video_id, y_i, b_i)

    def put_params_many(
        self, items: Sequence[tuple[str, str, np.ndarray, float]]
    ) -> None:
        """Batch parameter write: ``(kind, id, vector, bias)`` records.

        The micro-batched ``MFStorage`` path: all user rows go out in one
        batch write, all video rows in another.  Within a kind, later
        records win (same as sequential puts).
        """
        for kind in _KINDS:
            batch = [
                (entity_id, vector, bias)
                for item_kind, entity_id, vector, bias in items
                if item_kind == kind
            ]
            if batch:
                self._params.put_many(kind, batch)

    def apply_update(self, update: MFUpdate) -> None:
        """Write one computed step's parameters back to the store.

        In the topology this is ``MFStorage``'s job; fields grouping
        guarantees a single writer per key so the puts need no cross-key
        transaction.
        """
        self._params.put("user", update.user_id, update.x_u, update.b_u)
        self._params.put("video", update.video_id, update.y_i, update.b_i)

    def sgd_step(
        self, user_id: str, video_id: str, rating: float, eta: float
    ) -> MFUpdate:
        """Compute and immediately apply one SGD step; return it."""
        update = self.compute_update(user_id, video_id, rating, eta)
        self.apply_update(update)
        return update

    def batch_session(
        self,
        user_ids: Iterable[str] = (),
        video_ids: Iterable[str] = (),
    ) -> MFBatchSession:
        """Open a micro-batch overlay prefetched for the given entities.

        Callers run :meth:`MFBatchSession.observe_rating` /
        :meth:`MFBatchSession.sgd_step` per action in stream order and
        :meth:`MFBatchSession.commit` once; the result is byte-identical
        to the sequential per-action methods.
        """
        return MFBatchSession(self, user_ids, video_ids)

    def sgd_step_many(
        self, steps: Sequence[tuple[str, str, float, float]]
    ) -> list[MFUpdate]:
        """Apply many ``(user, video, rating, eta)`` steps as one batch."""
        session = self.batch_session(
            (user_id for user_id, _, _, _ in steps),
            (video_id for _, video_id, _, _ in steps),
        )
        updates = [
            session.sgd_step(user_id, video_id, rating, eta)
            for user_id, video_id, rating, eta in steps
        ]
        session.commit()
        return updates

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialise all parameters to an ``.npz`` file.

        Stores user/video vectors, biases and the ``mu`` accumulators via
        one bulk export per kind (no per-key loops).  Entity ids are
        stored as arrays of strings; no pickling involved.  The file
        format is backend-neutral: either backend loads it.
        """
        user_ids, x, bu = self._params.export("user")
        video_ids, y, bi = self._params.export("video")
        total, count = self._mu_state()
        np.savez(
            path,
            f=np.array([self.config.f]),
            user_ids=np.array(user_ids, dtype=np.str_),
            video_ids=np.array(video_ids, dtype=np.str_),
            x=x if len(user_ids) else np.empty((0, self.config.f)),
            y=y if len(video_ids) else np.empty((0, self.config.f)),
            bu=bu,
            bi=bi,
            mu=np.array([total, float(count)]),
        )

    def load(self, path: str) -> None:
        """Restore parameters saved with :meth:`save` into this model's
        store (existing entries for the same ids are overwritten)."""
        with np.load(path, allow_pickle=False) as data:
            stored_f = int(data["f"][0])
            if stored_f != self.config.f:
                raise ModelError(
                    f"dimensionality mismatch: file has f={stored_f}, "
                    f"model has f={self.config.f}"
                )
            user_ids = [str(u) for u in data["user_ids"]]
            video_ids = [str(v) for v in data["video_ids"]]
            self._params.put_many(
                "user",
                [
                    (user_id, data["x"][idx].copy(), float(data["bu"][idx]))
                    for idx, user_id in enumerate(user_ids)
                ],
            )
            self._params.put_many(
                "video",
                [
                    (video_id, data["y"][idx].copy(), float(data["bi"][idx]))
                    for idx, video_id in enumerate(video_ids)
                ],
            )
            total, count = data["mu"]
            self._mu_put(float(total), int(count))

    def export_shared(self) -> dict:
        """Coherent snapshot of a shared-backend model.

        Each arena is copied under its exclusive lock (no SGD write can
        tear the copy) into a plain :class:`FactorArena`; together with
        the ``mu`` accumulator this is everything checkpoints need, and
        it pickles without any shared-memory handles attached.
        """
        if self._shared is None:
            raise ModelError("export_shared requires a shared-backend model")
        return {
            "user": self._shared.user.snapshot(),
            "video": self._shared.video.snapshot(),
            "mu": self._shared.mu_state(),
        }

    def load_shared(self, snapshot: dict) -> None:
        """Restore an :meth:`export_shared` snapshot into the shared block."""
        if self._shared is None:
            raise ModelError("load_shared requires a shared-backend model")
        self._shared.user.load_arena(snapshot["user"])
        self._shared.video.load_arena(snapshot["video"])
        total, count = snapshot["mu"]
        self._shared.mu_set(float(total), int(count))

    # ------------------------------------------------------------------
    # Batch training (the traditional mode of §3.1, used by baselines)
    # ------------------------------------------------------------------

    def fit_batch(
        self,
        ratings: list[tuple[str, str, float]],
        epochs: int = 10,
        eta: float = 0.02,
        shuffle_seed: int = 0,
        batch_size: int = 512,
    ) -> list[float]:
        """Multi-pass SGD over a fixed dataset; returns per-epoch RMSE.

        This is the conventional offline training the paper contrasts its
        online strategy against; the ``BatchMF`` baseline retrains with it
        at regular intervals.  ``mu`` is seeded once from the dataset mean
        before the first epoch (epochs never touch it — there is nothing
        new to observe in a fixed dataset), steps run through micro-batch
        sessions of ``batch_size`` to amortise store round-trips, and the
        per-epoch RMSE is ``sqrt(mean(errors**2))`` over the collected
        error array rather than a scalar accumulation.
        """
        if not ratings:
            raise ModelError("fit_batch needs a non-empty dataset")
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        mean = sum(r for _, _, r in ratings) / len(ratings)
        self._mu_put(mean * len(ratings), len(ratings))
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(ratings))
        history: list[float] = []
        for _ in range(epochs):
            rng.shuffle(order)
            errors = np.empty(len(order), dtype=np.float64)
            for start in range(0, len(order), batch_size):
                chunk = order[start : start + batch_size]
                steps = [
                    (ratings[idx][0], ratings[idx][1], ratings[idx][2], eta)
                    for idx in chunk
                ]
                updates = self.sgd_step_many(steps)
                for offset, update in enumerate(updates):
                    errors[start + offset] = update.error
            history.append(float(np.sqrt(np.mean(errors**2))))
        return history
