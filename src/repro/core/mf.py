"""Biased matrix factorization (paper §3.1).

Implements the prediction rule of Eq. 2::

    r_hat(u, i) = mu + b_u + b_i + x_u . y_i

with SGD updates in the direction opposite the gradient of the regularized
squared error (Eq. 3).  Parameters live in a :class:`~repro.kvstore.KVStore`
— exactly how the production system stores them (§5.1) — so that vectors are
addressable by key from any worker, and so the Figure 2 topology can split
*computing* an update (``ComputeMF``) from *storing* it (``MFStorage``).

Two deliberate deviations from the paper's text, both documented in
DESIGN.md:

* Eq. 5 as printed updates ``x_u`` by ``eta * (e * x_u - lambda * x_u)``,
  which never mixes user and item factors and therefore cannot learn
  interactions; we use the standard SGD form ``x_u += eta * (e * y_i -
  lambda * x_u)`` (and symmetrically for ``y_i``), which is what the cited
  optimization actually is.
* The global average ``mu`` is maintained as a running mean over *all*
  observed ratings including zero-rated impressions.  With positive-only
  updates a ratings-only mean degenerates to exactly 1 and the error
  vanishes; counting impressions keeps ``mu`` at the empirical positive
  rate, preserving Eq. 2's interpretation of ``mu`` as the overall average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MFConfig
from ..errors import ModelError
from ..hashing import stable_hash
from ..kvstore import InMemoryKVStore, KVStore, Namespace
from ..obs.profile import profiled


@dataclass(frozen=True, slots=True)
class MFUpdate:
    """The freshly computed parameters for one ``(user, video)`` SGD step.

    This is the message ``ComputeMF`` sends to ``MFStorage`` in the Figure 2
    topology: new vectors plus bookkeeping.  Applying it writes the four
    parameters back to the store.
    """

    user_id: str
    video_id: str
    x_u: np.ndarray
    y_i: np.ndarray
    b_u: float
    b_i: float
    error: float
    eta: float


class MFModel:
    """KV-store-backed biased MF model with per-entity lazy initialisation.

    New user/video vectors are initialised deterministically from the
    entity id (seed XOR stable hash), so initialisation is idempotent: any
    worker that first touches an entity produces the same vector.
    """

    def __init__(
        self, config: MFConfig | None = None, store: KVStore | None = None
    ) -> None:
        self.config = config or MFConfig()
        self._store = store if store is not None else InMemoryKVStore()
        self._x = Namespace(self._store, "mf:x")
        self._y = Namespace(self._store, "mf:y")
        self._bu = Namespace(self._store, "mf:bu")
        self._bi = Namespace(self._store, "mf:bi")
        self._meta = Namespace(self._store, "mf:meta")

    # ------------------------------------------------------------------
    # Global average
    # ------------------------------------------------------------------

    @property
    def mu(self) -> float:
        """The running overall average rating (Eq. 2's ``mu``)."""
        total, count = self._meta.get("mu", (0.0, 0))
        return total / count if count else 0.0

    def observe_rating(self, rating: float) -> None:
        """Fold one observed rating (including zeros) into ``mu``."""
        self._meta.update(
            "mu", lambda cur: (cur[0] + rating, cur[1] + 1), default=(0.0, 0)
        )

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------

    def _init_vector(self, kind: str, entity_id: str) -> np.ndarray:
        rng = np.random.default_rng(
            (self.config.seed << 32) ^ stable_hash((kind, entity_id))
        )
        return rng.normal(0.0, self.config.init_scale, self.config.f)

    def user_vector(self, user_id: str) -> np.ndarray | None:
        """Return ``x_u`` or ``None`` when the user is unknown."""
        return self._x.get(user_id)

    def video_vector(self, video_id: str) -> np.ndarray | None:
        """Return ``y_i`` or ``None`` when the video is unknown."""
        return self._y.get(video_id)

    def user_bias(self, user_id: str) -> float:
        return self._bu.get(user_id, 0.0)

    def video_bias(self, video_id: str) -> float:
        return self._bi.get(video_id, 0.0)

    def ensure_user(self, user_id: str) -> np.ndarray:
        """Return ``x_u``, initialising it first for a new user
        (Algorithm 1 lines 3-5)."""
        return self._x.setdefault(
            user_id, lambda: self._init_vector("user", user_id)
        )

    def ensure_video(self, video_id: str) -> np.ndarray:
        """Return ``y_i``, initialising it first for a new video
        (Algorithm 1 lines 6-8)."""
        return self._y.setdefault(
            video_id, lambda: self._init_vector("video", video_id)
        )

    def has_user(self, user_id: str) -> bool:
        return user_id in self._x

    def has_video(self, video_id: str) -> bool:
        return video_id in self._y

    @property
    def n_users(self) -> int:
        return len(self._x)

    @property
    def n_videos(self) -> int:
        return len(self._y)

    def known_videos(self) -> list[str]:
        """Ids of all videos with a learned vector."""
        return list(self._y.keys())

    # ------------------------------------------------------------------
    # Prediction (Eq. 2) and error (Eq. 4)
    # ------------------------------------------------------------------

    def predict(self, user_id: str, video_id: str) -> float:
        """Predicted preference ``r_hat`` of Eq. 2.

        Unknown users/videos contribute nothing beyond ``mu`` and the known
        side's bias — the cold-start prediction the demographic fallback
        compensates for (§5.2.1).
        """
        score = self.mu + self.user_bias(user_id) + self.video_bias(video_id)
        x_u = self.user_vector(user_id)
        y_i = self.video_vector(video_id)
        if x_u is not None and y_i is not None:
            score += float(x_u @ y_i)
        return score

    @profiled(name="mf.predict_many")
    def predict_many(
        self, user_id: str, video_ids: list[str]
    ) -> np.ndarray:
        """Vectorized Eq. 2 over many candidate videos for one user.

        This is the "SORT&SELECT WITH User vector" stage of Figure 1:
        fetch the candidate video vectors and take inner products in one
        matmul.
        """
        base = self.mu + self.user_bias(user_id)
        x_u = self.user_vector(user_id)
        scores = np.full(len(video_ids), base, dtype=float)
        for idx, video_id in enumerate(video_ids):
            scores[idx] += self.video_bias(video_id)
            if x_u is None:
                continue
            y_i = self.video_vector(video_id)
            if y_i is not None:
                scores[idx] += float(x_u @ y_i)
        return scores

    def error(self, user_id: str, video_id: str, rating: float) -> float:
        """Prediction error ``e_ui`` of Eq. 4."""
        return rating - self.predict(user_id, video_id)

    # ------------------------------------------------------------------
    # SGD (Eq. 5, corrected; Algorithm 1 lines 9-14)
    # ------------------------------------------------------------------

    @profiled(name="mf.compute_update")
    def compute_update(
        self,
        user_id: str,
        video_id: str,
        rating: float,
        eta: float,
        persist_init: bool = True,
    ) -> MFUpdate:
        """Compute (without storing) one SGD step's new parameters.

        Initialises vectors for new entities.  ``eta`` is the per-action
        learning rate the adjustable strategy supplies (Eq. 8).  With
        ``persist_init=False`` new-entity vectors are derived (they are a
        deterministic function of the id) but *not* written — the topology's
        ``ComputeMF`` bolt uses this so that only ``MFStorage`` ever writes
        parameters.
        """
        if eta <= 0:
            raise ModelError(f"learning rate must be positive, got {eta}")
        lam = self.config.lam
        if persist_init:
            x_u = self.ensure_user(user_id)
            y_i = self.ensure_video(video_id)
        else:
            x_u = self.user_vector(user_id)
            if x_u is None:
                x_u = self._init_vector("user", user_id)
            y_i = self.video_vector(video_id)
            if y_i is None:
                y_i = self._init_vector("video", video_id)
        b_u = self.user_bias(user_id)
        b_i = self.video_bias(video_id)
        e = rating - (self.mu + b_u + b_i + float(x_u @ y_i))
        new_b_u = b_u + eta * (e - lam * b_u)
        new_b_i = b_i + eta * (e - lam * b_i)
        new_x_u = x_u + eta * (e * y_i - lam * x_u)
        new_y_i = y_i + eta * (e * x_u - lam * y_i)
        return MFUpdate(
            user_id=user_id,
            video_id=video_id,
            x_u=new_x_u,
            y_i=new_y_i,
            b_u=new_b_u,
            b_i=new_b_i,
            error=e,
            eta=eta,
        )

    def put_user(self, user_id: str, x_u: np.ndarray, b_u: float) -> None:
        """Write one user's parameters (the ``MFStorage`` user path)."""
        self._x.put(user_id, x_u)
        self._bu.put(user_id, b_u)

    def put_video(self, video_id: str, y_i: np.ndarray, b_i: float) -> None:
        """Write one video's parameters (the ``MFStorage`` video path)."""
        self._y.put(video_id, y_i)
        self._bi.put(video_id, b_i)

    def apply_update(self, update: MFUpdate) -> None:
        """Write one computed step's parameters back to the store.

        In the topology this is ``MFStorage``'s job; fields grouping
        guarantees a single writer per key so the four puts need no
        cross-key transaction.
        """
        self._x.put(update.user_id, update.x_u)
        self._y.put(update.video_id, update.y_i)
        self._bu.put(update.user_id, update.b_u)
        self._bi.put(update.video_id, update.b_i)

    def sgd_step(
        self, user_id: str, video_id: str, rating: float, eta: float
    ) -> MFUpdate:
        """Compute and immediately apply one SGD step; return it."""
        update = self.compute_update(user_id, video_id, rating, eta)
        self.apply_update(update)
        return update

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialise all parameters to an ``.npz`` file.

        Stores user/video vectors, biases and the ``mu`` accumulators.
        Entity ids are stored as arrays of strings; no pickling involved.
        """
        user_ids = sorted(self._x.keys())
        video_ids = sorted(self._y.keys())
        total, count = self._meta.get("mu", (0.0, 0))
        np.savez(
            path,
            f=np.array([self.config.f]),
            user_ids=np.array(user_ids, dtype=np.str_),
            video_ids=np.array(video_ids, dtype=np.str_),
            x=(
                np.stack([self._x.get_strict(u) for u in user_ids])
                if user_ids
                else np.empty((0, self.config.f))
            ),
            y=(
                np.stack([self._y.get_strict(v) for v in video_ids])
                if video_ids
                else np.empty((0, self.config.f))
            ),
            bu=np.array([self.user_bias(u) for u in user_ids]),
            bi=np.array([self.video_bias(v) for v in video_ids]),
            mu=np.array([total, float(count)]),
        )

    def load(self, path: str) -> None:
        """Restore parameters saved with :meth:`save` into this model's
        store (existing entries for the same ids are overwritten)."""
        with np.load(path, allow_pickle=False) as data:
            stored_f = int(data["f"][0])
            if stored_f != self.config.f:
                raise ModelError(
                    f"dimensionality mismatch: file has f={stored_f}, "
                    f"model has f={self.config.f}"
                )
            user_ids = [str(u) for u in data["user_ids"]]
            video_ids = [str(v) for v in data["video_ids"]]
            for idx, user_id in enumerate(user_ids):
                self.put_user(user_id, data["x"][idx].copy(), float(data["bu"][idx]))
            for idx, video_id in enumerate(video_ids):
                self.put_video(video_id, data["y"][idx].copy(), float(data["bi"][idx]))
            total, count = data["mu"]
            self._meta.put("mu", (float(total), int(count)))

    # ------------------------------------------------------------------
    # Batch training (the traditional mode of §3.1, used by baselines)
    # ------------------------------------------------------------------

    def fit_batch(
        self,
        ratings: list[tuple[str, str, float]],
        epochs: int = 10,
        eta: float = 0.02,
        shuffle_seed: int = 0,
    ) -> list[float]:
        """Multi-pass SGD over a fixed dataset; returns per-epoch RMSE.

        This is the conventional offline training the paper contrasts its
        online strategy against; the ``BatchMF`` baseline retrains with it
        at regular intervals.
        """
        if not ratings:
            raise ModelError("fit_batch needs a non-empty dataset")
        mean = sum(r for _, _, r in ratings) / len(ratings)
        self._meta.put("mu", (mean * len(ratings), len(ratings)))
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(ratings))
        history: list[float] = []
        for _ in range(epochs):
            rng.shuffle(order)
            sq_err = 0.0
            for idx in order:
                user_id, video_id, rating = ratings[idx]
                update = self.sgd_step(user_id, video_id, rating, eta)
                sq_err += update.error**2
            history.append(float(np.sqrt(sq_err / len(ratings))))
        return history
