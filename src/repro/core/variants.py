"""The three experimental model variants of §6.1.2.

The paper's ablation compares three ways to consume implicit feedback:

* **BinaryModel** — binary ratings, fixed learning rate (confidence
  levels ignored);
* **ConfModel** — the confidence level *is* the rating, fixed learning
  rate (the naive approach the paper shows to be noise-sensitive);
* **CombineModel** — binary ratings with the confidence level driving an
  adjustable learning rate (Eq. 8): the paper's contribution.

Each variant is a frozen description consumed by
:class:`~repro.core.online.OnlineTrainer`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .feedback import RatingMode


@dataclass(frozen=True, slots=True)
class ModelVariant:
    """One configuration of (rating mode, adjustable learning rate)."""

    name: str
    rating_mode: RatingMode
    adjustable: bool


BINARY_MODEL = ModelVariant(
    name="BinaryModel", rating_mode=RatingMode.BINARY, adjustable=False
)
CONF_MODEL = ModelVariant(
    name="ConfModel", rating_mode=RatingMode.CONFIDENCE, adjustable=False
)
COMBINE_MODEL = ModelVariant(
    name="CombineModel", rating_mode=RatingMode.BINARY, adjustable=True
)

#: All variants in the order the paper's figures list them.
ALL_VARIANTS = (BINARY_MODEL, CONF_MODEL, COMBINE_MODEL)


#: Grid-searched online-update settings per variant (our Table 2 pass):
#: each variant gets the ``(eta0, alpha)`` that maximised its own recall@10
#: on the synthetic world, so the §6.1.2 comparison is fair to all three.
GRID_SEARCHED_RATES: dict[str, tuple[float, float]] = {
    BINARY_MODEL.name: (0.002, 0.0),
    CONF_MODEL.name: (0.002, 0.0),
    COMBINE_MODEL.name: (0.001, 0.002),
}


def grid_searched_rates(variant: ModelVariant) -> tuple[float, float]:
    """The tuned ``(eta0, alpha)`` for a variant (see GRID_SEARCHED_RATES)."""
    return GRID_SEARCHED_RATES[variant.name]


def variant_by_name(name: str) -> ModelVariant:
    """Look up a variant by its paper name (case-insensitive)."""
    for variant in ALL_VARIANTS:
        if variant.name.lower() == name.lower():
            return variant
    raise KeyError(f"unknown model variant: {name!r}")
