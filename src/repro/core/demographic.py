"""Demographic-based (DB) algorithm and demographic filtering (paper §5.2.1).

Users are clustered into demographic groups by their properties; each group
maintains a decayed hot-video list.  The DB results complement the MF
recommendations in two ways:

* **diversity** — a fraction of the final list is filled from the group's
  hot videos, broadening the span of recommendations without the cost of a
  transitive closure over the related-videos graph;
* **cold start** — new or inactive users, for whom MF cannot produce enough
  candidates, fall back to their demographic group's hot videos; new
  *unregistered* users get the global group's.
"""

from __future__ import annotations

from typing import Mapping

from ..clock import SECONDS_PER_DAY, Clock, SystemClock
from ..data.schema import GLOBAL_GROUP, User, UserAction
from ..data.stream import ENGAGEMENT_ACTIONS
from ..kvstore import InMemoryKVStore, KVStore, Namespace


class HotVideoTracker:
    """Per-group exponentially decayed video popularity.

    Each engagement adds its weight to the video's score; scores halve
    every ``half_life`` seconds, so "hot" genuinely means *currently*
    popular.  Per-group maps are bounded at ``max_tracked`` videos by
    evicting the coldest.
    """

    def __init__(
        self,
        half_life: float = SECONDS_PER_DAY,
        max_tracked: int = 500,
        clock: Clock | None = None,
        store: KVStore | None = None,
    ) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        if max_tracked < 1:
            raise ValueError(f"max_tracked must be >= 1, got {max_tracked}")
        self.half_life = half_life
        self.max_tracked = max_tracked
        self.clock = clock or SystemClock()
        backing = store if store is not None else InMemoryKVStore()
        # Per group: dict video_id -> (score, last_update_ts).
        self._groups = Namespace(backing, "hot")

    def _decayed(self, score: float, elapsed: float) -> float:
        return score * 2.0 ** (-max(0.0, elapsed) / self.half_life)

    def record(
        self, group: str, video_id: str, weight: float = 1.0, now: float | None = None
    ) -> None:
        """Add ``weight`` popularity to ``video_id`` within ``group``."""
        timestamp = self.clock.now() if now is None else now

        def _bump(table: dict[str, tuple[float, float]]):
            table = dict(table)
            score, last = table.get(video_id, (0.0, timestamp))
            table[video_id] = (
                self._decayed(score, timestamp - last) + weight,
                timestamp,
            )
            if len(table) > self.max_tracked:
                coldest = min(
                    table,
                    key=lambda vid: self._decayed(
                        table[vid][0], timestamp - table[vid][1]
                    ),
                )
                del table[coldest]
            return table

        self._groups.update(group, _bump, default={})

    def hot(
        self, group: str, k: int = 10, now: float | None = None
    ) -> list[tuple[str, float]]:
        """The group's ``k`` hottest videos with decay applied at read time."""
        table: dict[str, tuple[float, float]] = self._groups.get(group, {})
        if not table:
            return []
        current = self.clock.now() if now is None else now
        scored = [
            (video_id, self._decayed(score, current - last))
            for video_id, (score, last) in table.items()
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def groups(self) -> list[str]:
        return list(self._groups.keys())


class DemographicRecommender:
    """The DB algorithm: hot videos of the requesting user's group.

    Every engagement is recorded both in the user's own group and in the
    global group, so the global fallback (used for unregistered or unknown
    users) always has content.
    """

    def __init__(
        self,
        users: Mapping[str, User],
        tracker: HotVideoTracker | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.users = users
        self.tracker = tracker or HotVideoTracker(clock=clock)

    def group_for(self, user_id: str) -> str:
        """The demographic group of a user; global when unknown."""
        user = self.users.get(user_id)
        return user.demographic_group if user else GLOBAL_GROUP

    def record(
        self, action: UserAction, weight: float = 1.0
    ) -> None:
        """Fold one engagement into the group and global hot lists."""
        if action.action not in ENGAGEMENT_ACTIONS:
            return
        group = self.group_for(action.user_id)
        self.tracker.record(group, action.video_id, weight, now=action.timestamp)
        if group != GLOBAL_GROUP:
            self.tracker.record(
                GLOBAL_GROUP, action.video_id, weight, now=action.timestamp
            )

    def recommend(
        self, user_id: str, k: int = 10, now: float | None = None
    ) -> list[str]:
        """Hot videos for the user's group, topped up from the global group."""
        group = self.group_for(user_id)
        picks = [vid for vid, _ in self.tracker.hot(group, k, now=now)]
        if len(picks) < k and group != GLOBAL_GROUP:
            for vid, _ in self.tracker.hot(GLOBAL_GROUP, k, now=now):
                if vid not in picks:
                    picks.append(vid)
                    if len(picks) == k:
                        break
        return picks[:k]

    def recommend_filtered(
        self,
        user_id: str,
        k: int = 10,
        blocked: set[str] | frozenset[str] = frozenset(),
        now: float | None = None,
    ) -> list[str]:
        """Hot videos for the user's group with ``blocked`` ids suppressed.

        One centralised definition of the paper's demographic filter so
        every caller (the recommender's merge stage, the two-stage ANN
        path) shares identical semantics, pinned by test: blocked videos
        still *consume ranking budget* — the list is ranked and truncated
        to ``k`` first, then blocked entries are dropped without top-up —
        exactly as if :meth:`recommend`'s output were post-filtered.
        """
        return [
            vid
            for vid in self.recommend(user_id, k, now=now)
            if vid not in blocked
        ]


def merge_recommendations(
    primary: list[str],
    demographic: list[str],
    n: int,
    demographic_fraction: float,
) -> list[str]:
    """Demographic filtering: selectively merge DB results into MF results.

    Reserves ``floor(n * demographic_fraction)`` slots for DB videos not
    already recommended (placed after the MF picks, preserving MF order at
    the top), then fills any remaining shortfall first from the rest of the
    MF list, then from the rest of the DB list.  Never returns duplicates.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= demographic_fraction <= 1:
        raise ValueError("demographic_fraction must be in [0, 1]")
    db_slots = int(n * demographic_fraction)
    mf_take = n - db_slots
    out: list[str] = []
    for video_id in primary[:mf_take]:
        if video_id not in out:
            out.append(video_id)
    for video_id in demographic:
        if len(out) >= n:
            break
        if video_id not in out:
            out.append(video_id)
    for video_id in primary[mf_take:]:
        if len(out) >= n:
            break
        if video_id not in out:
            out.append(video_id)
    return out[:n]
