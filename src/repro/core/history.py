"""Per-user behaviour history (the ``UserHistory`` bolt's state, §5.1).

Records which videos each user recently engaged with.  Histories feed two
consumers: the pair generator (new video x recent history = candidate
similar pairs) and seed selection for the "Guess You Like" scenario where
the user is not currently watching anything (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.schema import UserAction
from ..data.stream import ENGAGEMENT_ACTIONS
from ..kvstore import InMemoryKVStore, KVStore, Namespace


@dataclass(frozen=True, slots=True)
class HistorySnapshot:
    """One consistent read of a user's history.

    ``recent`` is newest-first;  ``watched`` is the same videos as a set.
    Serving reads both per request — taking them from one store get keeps
    them mutually consistent and halves the read traffic.
    """

    recent: list[str]
    watched: frozenset[str]
    last_active: float | None


class UserHistoryStore:
    """Bounded, deduplicated, most-recent-first per-user video history."""

    def __init__(
        self, store: KVStore | None = None, max_items: int = 100
    ) -> None:
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        backing = store if store is not None else InMemoryKVStore()
        self._store = Namespace(backing, "history")
        self.max_items = max_items

    def record(self, action: UserAction) -> bool:
        """Fold one action into its user's history.

        Only engagement actions count (impressions are displays, not
        interest).  Returns ``True`` if the history changed.
        """
        if action.action not in ENGAGEMENT_ACTIONS:
            return False
        self.add(action.user_id, action.video_id, action.timestamp)
        return True

    def add(self, user_id: str, video_id: str, timestamp: float) -> None:
        """Push ``video_id`` to the front of ``user_id``'s history."""

        def _push(entries: list[tuple[str, float]]) -> list[tuple[str, float]]:
            kept = [(v, t) for v, t in entries if v != video_id]
            kept.insert(0, (video_id, timestamp))
            return kept[: self.max_items]

        self._store.update(user_id, _push, default=[])

    def recent(self, user_id: str, k: int | None = None) -> list[str]:
        """The user's most recent distinct videos, newest first."""
        entries = self._store.get(user_id, [])
        selected = entries if k is None else entries[:k]
        return [video_id for video_id, _ in selected]

    def watched(self, user_id: str) -> set[str]:
        """All videos currently in the user's (bounded) history."""
        return {video_id for video_id, _ in self._store.get(user_id, [])}

    def last_active(self, user_id: str) -> float | None:
        """Timestamp of the user's most recent recorded engagement."""
        entries = self._store.get(user_id, [])
        return entries[0][1] if entries else None

    def snapshot(self, user_id: str, k: int | None = None) -> HistorySnapshot:
        """Recent list, watched set and last-active from a single get."""
        entries = self._store.get(user_id, [])
        selected = entries if k is None else entries[:k]
        return HistorySnapshot(
            recent=[video_id for video_id, _ in selected],
            watched=frozenset(video_id for video_id, _ in entries),
            last_active=entries[0][1] if entries else None,
        )

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._store

    def __len__(self) -> int:
        return len(self._store)
