"""Implicit-feedback solution: binary preference + confidence (Eq. 7).

The paper's key move (§3.2, following Hu et al. [16]) is to *not* use the
action weight as a rating.  Instead the rating is binary — any positive
interaction means ``r_ui = 1`` — and the weight becomes the *confidence* in
that indication, which the adjustable online updater turns into a per-action
learning rate.  The rejected alternative ("ConfModel" in §6.1.2) treats the
weight itself as the rating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..data.schema import UserAction, Video
from .actions import ActionWeigher


class RatingMode(enum.Enum):
    """How the action weight ``w_ui`` is turned into a training rating."""

    #: Eq. 7 — rating is 1 whenever ``w > 0``, weight is the confidence.
    BINARY = "binary"
    #: The ConfModel alternative — rating *is* the weight.
    CONFIDENCE = "confidence"


@dataclass(frozen=True, slots=True)
class Feedback:
    """The ``(r_ui, w_ui)`` pair extracted from one user action.

    ``rating`` is what the MF model trains toward; ``confidence`` is the
    belief level used by the adjustable learning rate (Eq. 8).  Actions with
    ``confidence == 0`` (impressions) never update the model.
    """

    rating: float
    confidence: float

    @property
    def is_positive(self) -> bool:
        return self.confidence > 0.0


def extract_feedback(
    action: UserAction,
    weigher: ActionWeigher,
    mode: RatingMode = RatingMode.BINARY,
    video: Video | None = None,
) -> Feedback:
    """Compute ``(r_ui, w_ui)`` for one action under the given rating mode.

    >>> from repro.core.actions import LogPlaytimeWeigher
    >>> from repro.data.schema import ActionType, UserAction
    >>> a = UserAction(0.0, "u1", "v1", ActionType.CLICK)
    >>> extract_feedback(a, LogPlaytimeWeigher())
    Feedback(rating=1.0, confidence=0.5)
    """
    w = weigher.weight(action, video)
    if w < 0:
        raise ValueError(f"action weight must be >= 0, got {w}")
    if mode is RatingMode.BINARY:
        rating = 1.0 if w > 0 else 0.0
    else:
        rating = w
    return Feedback(rating=rating, confidence=w)
