"""Shared-memory factor storage: the cross-process twin of ``FactorArena``.

A :class:`~repro.core.arena.FactorArena` is a contiguous ``(capacity, f)``
float64 block — exactly the shape ``multiprocessing.shared_memory`` maps
between processes for free.  :class:`SharedFactorArena` keeps the same API
over numpy views of shared segments, so per-shard worker processes run SGD
updates directly on the one true parameter block: a row write in a worker
is immediately visible to every other process with **zero copies and zero
serialisation** — the paper's distributed MF storage (§5.1) realised as
one mapped memory region instead of a remote KV tier.

Segment layout (all named, so any process can attach by name):

* ``<base>-ctl`` — fixed-size control block: ``f``, the data/ids segment
  *generations*, capacity, intern/learned counts, the id-blob watermark,
  and a shared ``mu`` accumulator (total, count) for the model plane.
* ``<base>-d<gen>`` — generation ``gen`` of the data block: ``capacity*f``
  vector float64s, ``capacity`` bias float64s, ``capacity`` has-vector
  bytes, contiguous in that order.
* ``<base>-i<gen>`` — generation ``gen`` of the id-intern blob: utf-8 ids
  joined by ``\\n``, append-only up to the control block's watermark.

**Growth/remap protocol.**  Rows never move within a generation.  When the
interner needs more capacity it creates generation ``gen+1`` at double the
size, copies the compacted prefix, bumps the control block's generation,
and unlinks the old segment (POSIX keeps existing mappings alive until the
stragglers close them).  Every operation starts by comparing its attached
generation against the control block and re-attaches when stale — the
remap is one ``shm_open`` + ``mmap``, amortised O(1).  The id blob grows
the same way, but because it is append-only, readers track a byte offset
and parse only the suffix that appeared since their last refresh.

**Locking.**  Cross-process coordination uses ``flock`` on a sidecar lock
file (advisory, and — crucially for crash safety — released by the kernel
when a process dies, even by SIGKILL):

* *shared* (``LOCK_SH``) for row reads and steady-state row writes — many
  workers proceed in parallel; fields grouping already guarantees a single
  writer per row, so row data needs no mutual exclusion among writers;
* *exclusive* (``LOCK_EX``) for everything that mutates global structure:
  interning, growth, first-vector/delete bookkeeping (``n_vec``), the
  ``mu`` fold, bulk loads, and coherent snapshots.

A snapshot therefore observes a quiescent arena: no row write can overlap
the copy, so checkpoints taken mid-training are never torn.

**Lifecycle.**  The creating process owns the segments: ``unlink()``
(also registered as a :func:`weakref.finalize` + ``atexit`` backstop)
removes whatever generations the control block names *at that moment*,
plus the control block and lock file.  Attaching processes only ever
``close()``; a worker that dies abnormally — even SIGKILL — leaks nothing,
because it never owned anything and its flock evaporates with it.  Python's
``resource_tracker`` is explicitly unregistered from every segment (it
would otherwise unlink segments still in use when *any* attached process
exits — the well-known 3.11 behaviour fixed only in 3.13's ``track=False``).
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import weakref
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Iterable, Iterator

import numpy as np

from .arena import FactorArena

try:  # POSIX only; the executor and arena are documented Linux/macOS.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["SharedFactorArena", "SharedModelState"]

_MAGIC = 0x52_45_50_52_4F_41_52_41  # "REPROARA"
_CTL_SIZE = 4096

# int64 slot indices within the control block.
_MAGIC_SLOT = 0
_F = 1
_DATA_GEN = 2
_IDS_GEN = 3
_CAPACITY = 4
_N_INTERNED = 5
_N_VEC = 6
_IDS_CAP = 7
_IDS_USED = 8
_MU_COUNT = 9
_N_SLOTS = 10
# float64 slot (separate view over the same buffer, after the int slots).
_MU_TOTAL_OFFSET = _N_SLOTS * 8

_SEPARATOR = b"\n"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker interference."""
    seg = shared_memory.SharedMemory(name=name, create=False)
    _untrack(seg)
    return seg


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
    _untrack(seg)
    return seg


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Remove ``seg`` from the resource tracker's leak registry.

    The tracker unlinks every registered segment when the process tree
    winds down — correct for anonymous one-owner use, catastrophic for a
    named segment shared across a worker fleet (a finished worker would
    tear the arena out from under the parent).  Ownership is ours:
    :meth:`SharedFactorArena.unlink` and its finalizers do the cleanup.
    """
    try:
        resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker API moved
        pass


def _unlink_quietly(name: str) -> None:
    # No _untrack here: attaching registers the name with the resource
    # tracker and unlink() unregisters it — already balanced.  An extra
    # unregister would make the tracker process log a KeyError at exit.
    try:
        seg = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another cleanup
        pass


def _cleanup_by_name(base: str, lock_path: str) -> None:
    """Owner cleanup: read the live generations, then unlink everything."""
    try:
        ctl = _attach_segment(f"{base}-ctl")
    except FileNotFoundError:
        ctl = None
    if ctl is not None:
        slots = np.ndarray((_N_SLOTS,), dtype=np.int64, buffer=ctl.buf)
        data_gen, ids_gen = int(slots[_DATA_GEN]), int(slots[_IDS_GEN])
        del slots
        ctl.close()
        _unlink_quietly(f"{base}-d{data_gen}")
        _unlink_quietly(f"{base}-i{ids_gen}")
        _unlink_quietly(f"{base}-ctl")
    try:
        os.unlink(lock_path)
    except OSError:
        pass


def _default_lock_dir() -> str:
    return "/dev/shm" if os.path.isdir("/dev/shm") else "/tmp"


class SharedFactorArena:
    """``FactorArena`` semantics over named shared-memory segments.

    Create one in the owning process, hand ``.name`` (or the object — it
    pickles as an attach-by-name handle) to workers, and every process
    operates on the same factor block::

        arena = SharedFactorArena(f=32)
        worker = Process(target=train, args=(arena.name,))
        # in the worker:
        arena = SharedFactorArena.attach(name)

    All methods are process- and thread-safe under the documented locking
    discipline; reads return copies (the in-process arena's contract), so
    a vector handed out never changes under the caller.
    """

    def __init__(
        self,
        f: int,
        initial_capacity: int = 64,
        name: str | None = None,
        ids_capacity: int = 4096,
        _attach: bool = False,
    ) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            raise OSError(
                "SharedFactorArena needs POSIX flock (fcntl); "
                "use FactorArena on this platform"
            )
        self._tlock = threading.RLock()
        self._fd: int | None = None
        self._finalizer = None
        self.owner = not _attach
        if _attach:
            assert name is not None
            self._base = name
            self._ctl = _attach_segment(f"{name}-ctl")
            self._map_ctl()
            if int(self._slots[_MAGIC_SLOT]) != _MAGIC:
                raise ValueError(
                    f"shared segment {name!r} is not a factor arena"
                )
            self.f = int(self._slots[_F])
            self._lock_path = os.path.join(
                _default_lock_dir(), f"{self._base}.lock"
            )
            self._data_gen = -1  # force first-use attach
            self._ids_gen = -1
            self._data = None
            self._ids_seg = None
            self._rows: dict[str, int] = {}
            self._ids: list[str] = []
            self._parsed = 0
            return
        if f < 1:
            raise ValueError(f"factor dimensionality must be >= 1, got {f}")
        if initial_capacity < 1:
            raise ValueError(
                f"initial_capacity must be >= 1, got {initial_capacity}"
            )
        self.f = f
        self._base = name or f"repro-arena-{secrets.token_hex(6)}"
        self._lock_path = os.path.join(
            _default_lock_dir(), f"{self._base}.lock"
        )
        self._ctl = _create_segment(f"{self._base}-ctl", _CTL_SIZE)
        self._map_ctl()
        self._slots[:] = 0
        self._slots[_MAGIC_SLOT] = _MAGIC
        self._slots[_F] = f
        self._slots[_CAPACITY] = initial_capacity
        self._slots[_IDS_CAP] = max(int(ids_capacity), 64)
        self._data = _create_segment(
            f"{self._base}-d0", self._data_bytes(initial_capacity, f)
        )
        self._ids_seg = _create_segment(
            f"{self._base}-i0", int(self._slots[_IDS_CAP])
        )
        self._data_gen = 0
        self._ids_gen = 0
        self._map_data(initial_capacity)
        self._rows = {}
        self._ids = []
        self._parsed = 0
        # Touch the lock file into existence so attachers can flock it.
        with open(self._lock_path, "a"):
            pass
        self._finalizer = weakref.finalize(
            self, _cleanup_by_name, self._base, self._lock_path
        )
        atexit.register(self._finalizer)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, name: str) -> "SharedFactorArena":
        """Attach to an arena created elsewhere (workers never own it)."""
        return cls(f=1, name=name, _attach=True)

    def __reduce__(self):
        return (SharedFactorArena.attach, (self._base,))

    @property
    def name(self) -> str:
        """The base segment name: pass to :meth:`attach` in workers."""
        return self._base

    @staticmethod
    def _data_bytes(capacity: int, f: int) -> int:
        return capacity * f * 8 + capacity * 8 + capacity

    def _map_ctl(self) -> None:
        self._slots = np.ndarray(
            (_N_SLOTS,), dtype=np.int64, buffer=self._ctl.buf
        )
        self._mu_total = np.ndarray(
            (1,), dtype=np.float64, buffer=self._ctl.buf, offset=_MU_TOTAL_OFFSET
        )

    def _map_data(self, capacity: int) -> None:
        buf = self._data.buf
        f = self.f
        self._vecs = np.ndarray(
            (capacity, f), dtype=np.float64, buffer=buf
        )
        self._biases = np.ndarray(
            (capacity,), dtype=np.float64, buffer=buf, offset=capacity * f * 8
        )
        self._has_vec = np.ndarray(
            (capacity,),
            dtype=np.uint8,
            buffer=buf,
            offset=capacity * f * 8 + capacity * 8,
        )

    # ------------------------------------------------------------------
    # Cross-process locking
    # ------------------------------------------------------------------

    def _lock_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o600)
        return self._fd

    @contextmanager
    def _shared(self) -> Iterator[None]:
        """Row-level access: many holders, excluded only by :meth:`_excl`."""
        with self._tlock:
            fd = self._lock_fd()
            fcntl.flock(fd, fcntl.LOCK_SH)
            try:
                self._refresh()
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)

    @contextmanager
    def _excl(self) -> Iterator[None]:
        """Structure-level access: interning, growth, counters, snapshots."""
        with self._tlock:
            fd = self._lock_fd()
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                self._refresh()
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Generation refresh (remap protocol, reader side)
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        """Re-attach any segment whose generation moved; parse new ids."""
        data_gen = int(self._slots[_DATA_GEN])
        if data_gen != self._data_gen:
            if self._data is not None:
                self._data.close()
            self._data = _attach_segment(f"{self._base}-d{data_gen}")
            self._data_gen = data_gen
            self._map_data(int(self._slots[_CAPACITY]))
        ids_gen = int(self._slots[_IDS_GEN])
        if ids_gen != self._ids_gen:
            if self._ids_seg is not None:
                self._ids_seg.close()
            self._ids_seg = _attach_segment(f"{self._base}-i{ids_gen}")
            self._ids_gen = ids_gen
            # The blob is copied verbatim on growth, so the parse offset
            # survives a generation bump — only the mapping is stale.
        used = int(self._slots[_IDS_USED])
        if used > self._parsed:
            chunk = bytes(self._ids_seg.buf[self._parsed : used])
            for raw in chunk.split(_SEPARATOR):
                if raw:
                    entity_id = raw.decode("utf-8")
                    self._rows[entity_id] = len(self._ids)
                    self._ids.append(entity_id)
            self._parsed = used

    # ------------------------------------------------------------------
    # Growth (writer side; caller holds the exclusive lock)
    # ------------------------------------------------------------------

    def _grow_data(self, need: int) -> None:
        capacity = int(self._slots[_CAPACITY])
        if need <= capacity:
            return
        new_capacity = max(capacity * 2, need)
        new_gen = self._data_gen + 1
        fresh = _create_segment(
            f"{self._base}-d{new_gen}", self._data_bytes(new_capacity, self.f)
        )
        n = int(self._slots[_N_INTERNED])
        old_vecs, old_biases, old_has = self._vecs, self._biases, self._has_vec
        old_seg = self._data
        self._data = fresh
        self._map_data(new_capacity)
        self._vecs[:n] = old_vecs[:n]
        self._biases[:n] = old_biases[:n]
        self._has_vec[:n] = old_has[:n]
        del old_vecs, old_biases, old_has
        self._slots[_CAPACITY] = new_capacity
        self._slots[_DATA_GEN] = new_gen
        self._data_gen = new_gen
        old_name = old_seg.name
        old_seg.close()
        _unlink_quietly(old_name)

    def _grow_ids(self, need: int) -> None:
        ids_cap = int(self._slots[_IDS_CAP])
        if need <= ids_cap:
            return
        new_cap = max(ids_cap * 2, need)
        new_gen = self._ids_gen + 1
        fresh = _create_segment(f"{self._base}-i{new_gen}", new_cap)
        used = int(self._slots[_IDS_USED])
        fresh.buf[:used] = self._ids_seg.buf[:used]
        old_seg = self._ids_seg
        self._ids_seg = fresh
        self._slots[_IDS_CAP] = new_cap
        self._slots[_IDS_GEN] = new_gen
        self._ids_gen = new_gen
        old_name = old_seg.name
        old_seg.close()
        _unlink_quietly(old_name)

    def _intern_locked(self, entity_id: str) -> int:
        """Intern under the exclusive lock (caller must hold it)."""
        row = self._rows.get(entity_id)
        if row is not None:
            return row
        raw = entity_id.encode("utf-8")
        if _SEPARATOR in raw:
            raise ValueError(
                f"entity id may not contain newline: {entity_id!r}"
            )
        row = int(self._slots[_N_INTERNED])
        self._grow_data(row + 1)
        used = int(self._slots[_IDS_USED])
        self._grow_ids(used + len(raw) + 1)
        self._ids_seg.buf[used : used + len(raw)] = raw
        self._ids_seg.buf[used + len(raw) : used + len(raw) + 1] = _SEPARATOR
        self._slots[_IDS_USED] = used + len(raw) + 1
        self._slots[_N_INTERNED] = row + 1
        self._rows[entity_id] = row
        self._ids.append(entity_id)
        self._parsed = used + len(raw) + 1
        return row

    def _row_or_intern(self, entity_id: str) -> int:
        with self._shared():
            row = self._rows.get(entity_id)
        if row is not None:
            return row
        with self._excl():
            return self._intern_locked(entity_id)

    def _check_dim(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.f,):
            raise ValueError(
                f"vector shape {vector.shape} does not match arena f={self.f}"
            )
        return vector

    # ------------------------------------------------------------------
    # Reads (FactorArena contract: return copies)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._shared():
            return int(self._slots[_N_VEC])

    def __contains__(self, entity_id: str) -> bool:
        with self._shared():
            row = self._rows.get(entity_id)
            return row is not None and bool(self._has_vec[row])

    def ids(self) -> list[str]:
        with self._shared():
            return [
                entity_id
                for entity_id in self._ids
                if self._has_vec[self._rows[entity_id]]
            ]

    def interned_count(self) -> int:
        with self._shared():
            return int(self._slots[_N_INTERNED])

    def capacity(self) -> int:
        with self._shared():
            return int(self._slots[_CAPACITY])

    def generation(self) -> tuple[int, int]:
        """Current ``(data, ids)`` generations (remap-protocol telemetry)."""
        with self._shared():
            return int(self._slots[_DATA_GEN]), int(self._slots[_IDS_GEN])

    def vector(self, entity_id: str) -> np.ndarray | None:
        with self._shared():
            row = self._rows.get(entity_id)
            if row is None or not self._has_vec[row]:
                return None
            return self._vecs[row].copy()

    def bias(self, entity_id: str, default: float = 0.0) -> float:
        with self._shared():
            row = self._rows.get(entity_id)
            return default if row is None else float(self._biases[row])

    def vectors_many(self, entity_ids: list[str]) -> list[np.ndarray | None]:
        with self._shared():
            out: list[np.ndarray | None] = []
            for entity_id in entity_ids:
                row = self._rows.get(entity_id)
                if row is None or not self._has_vec[row]:
                    out.append(None)
                else:
                    out.append(self._vecs[row].copy())
            return out

    def vectors_matrix(self, entity_ids: list[str]) -> np.ndarray:
        n = len(entity_ids)
        with self._shared():
            idx = np.empty(n, dtype=np.int64)
            for position, entity_id in enumerate(entity_ids):
                row = self._rows.get(entity_id, -1)
                if row >= 0 and not self._has_vec[row]:
                    row = -1
                idx[position] = row
            out = self._vecs[np.where(idx >= 0, idx, 0)]
            out[idx < 0] = 0.0
            return out

    def biases_array(self, entity_ids: list[str]) -> np.ndarray:
        n = len(entity_ids)
        with self._shared():
            idx = np.fromiter(
                (self._rows.get(entity_id, -1) for entity_id in entity_ids),
                dtype=np.int64,
                count=n,
            )
            out = self._biases[np.where(idx >= 0, idx, 0)]
            out[idx < 0] = 0.0
            return out

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def set_vector(self, entity_id: str, vector: np.ndarray) -> None:
        vector = self._check_dim(vector)
        row = self._row_or_intern(entity_id)
        with self._shared():
            if self._has_vec[row]:
                self._vecs[row] = vector
                return
        with self._excl():
            self._vecs[row] = vector
            if not self._has_vec[row]:
                self._has_vec[row] = 1
                self._slots[_N_VEC] += 1

    def set_bias(self, entity_id: str, bias: float) -> None:
        row = self._row_or_intern(entity_id)
        with self._shared():
            self._biases[row] = bias

    def put(self, entity_id: str, vector: np.ndarray, bias: float) -> None:
        """The SGD-commit hot path: row write under the shared lock when
        the row is already learned (steady state), exclusive only on the
        first touch (``n_vec`` bookkeeping)."""
        vector = self._check_dim(vector)
        row = self._row_or_intern(entity_id)
        with self._shared():
            if self._has_vec[row]:
                self._vecs[row] = vector
                self._biases[row] = bias
                return
        with self._excl():
            self._vecs[row] = vector
            self._biases[row] = bias
            if not self._has_vec[row]:
                self._has_vec[row] = 1
                self._slots[_N_VEC] += 1

    def put_many(
        self, items: Iterable[tuple[str, np.ndarray, float]]
    ) -> None:
        """Apply many writes under one exclusive pass (batch commit)."""
        items = list(items)
        if not items:
            return
        with self._excl():
            for entity_id, vector, bias in items:
                vector = self._check_dim(vector)
                row = self._intern_locked(entity_id)
                self._vecs[row] = vector
                self._biases[row] = bias
                if not self._has_vec[row]:
                    self._has_vec[row] = 1
                    self._slots[_N_VEC] += 1

    def setdefault_vector(self, entity_id: str, factory) -> np.ndarray:
        with self._shared():
            row = self._rows.get(entity_id)
            if row is not None and self._has_vec[row]:
                return self._vecs[row].copy()
        with self._excl():
            row = self._intern_locked(entity_id)
            if not self._has_vec[row]:
                self._vecs[row] = self._check_dim(factory())
                self._has_vec[row] = 1
                self._slots[_N_VEC] += 1
            return self._vecs[row].copy()

    def delete(self, entity_id: str) -> bool:
        with self._excl():
            row = self._rows.get(entity_id)
            if row is None or not self._has_vec[row]:
                return False
            self._has_vec[row] = 0
            self._vecs[row] = 0.0
            self._biases[row] = 0.0
            self._slots[_N_VEC] -= 1
            return True

    # ------------------------------------------------------------------
    # Shared mu accumulator (model plane)
    # ------------------------------------------------------------------

    def mu_state(self) -> tuple[float, int]:
        with self._shared():
            return float(self._mu_total[0]), int(self._slots[_MU_COUNT])

    def mu_fold(self, ratings: Iterable[float]) -> None:
        """Atomically fold observed ratings into the shared ``mu``."""
        ratings = list(ratings)
        if not ratings:
            return
        with self._excl():
            total = float(self._mu_total[0])
            count = int(self._slots[_MU_COUNT])
            for rating in ratings:
                total += rating
                count += 1
            self._mu_total[0] = total
            self._slots[_MU_COUNT] = count

    def mu_set(self, total: float, count: int) -> None:
        with self._excl():
            self._mu_total[0] = total
            self._slots[_MU_COUNT] = count

    # ------------------------------------------------------------------
    # Bulk export / snapshot / restore
    # ------------------------------------------------------------------

    def export_rows(
        self,
    ) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray]:
        """Coherent compacted copies (exclusive: no writer can overlap)."""
        with self._excl():
            n = int(self._slots[_N_INTERNED])
            return (
                list(self._ids[:n]),
                self._vecs[:n].copy(),
                self._biases[:n].copy(),
                self._has_vec[:n].astype(bool),
            )

    def dense_rows(
        self,
    ) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(ids, vectors, biases, has_vector)`` row views.

        The shared-memory analogue of :meth:`FactorArena.dense_rows`: the
        vector/bias arrays are views straight into the mapped segment (no
        copy).  Taken under the shared lock with a generation refresh, so
        the views target the current segment; a concurrent grower bumps
        the generation and leaves these views pointing at the old (still
        complete) segment.  ``has_vector`` is a small bool copy.  Use for
        bulk read paths that tolerate torn single rows (index builds), not
        for checkpoints.
        """
        with self._shared():
            n = int(self._slots[_N_INTERNED])
            return (
                list(self._ids[:n]),
                self._vecs[:n],
                self._biases[:n],
                self._has_vec[:n].astype(bool),
            )

    def items(self) -> Iterator[tuple[str, np.ndarray, float]]:
        ids, vecs, biases, has_vec = self.export_rows()
        for row, entity_id in enumerate(ids):
            if has_vec[row]:
                yield entity_id, vecs[row].copy(), float(biases[row])

    def snapshot(self) -> FactorArena:
        """A plain in-process :class:`FactorArena` copy of the block.

        Taken under the exclusive lock, so the rows form one coherent cut
        of training — the view checkpoints must capture.
        """
        ids, vecs, biases, has_vec = self.export_rows()
        arena = FactorArena(self.f, initial_capacity=max(len(ids), 1))
        arena.__setstate__(
            {
                "f": self.f,
                "ids": ids,
                "vecs": vecs,
                "biases": biases,
                "has_vec": has_vec,
            }
        )
        return arena

    def load_arena(self, arena: FactorArena) -> None:
        """Bulk-load a plain arena's rows (checkpoint restore path)."""
        ids, vecs, biases, has_vec = arena.export_rows()
        with self._excl():
            for row_idx, entity_id in enumerate(ids):
                row = self._intern_locked(entity_id)
                self._vecs[row] = vecs[row_idx]
                self._biases[row] = biases[row_idx]
                learned = bool(has_vec[row_idx])
                if learned and not self._has_vec[row]:
                    self._has_vec[row] = 1
                    self._slots[_N_VEC] += 1
                elif not learned and self._has_vec[row]:
                    self._has_vec[row] = 0
                    self._slots[_N_VEC] -= 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mappings (segments live on)."""
        with self._tlock:
            for seg_name in ("_data", "_ids_seg", "_ctl"):
                seg = getattr(self, seg_name, None)
                if seg is not None:
                    for view in ("_vecs", "_biases", "_has_vec", "_slots", "_mu_total"):
                        if hasattr(self, view):
                            delattr(self, view)
                    try:
                        seg.close()
                    except Exception:  # pragma: no cover - double close
                        pass
                    setattr(self, seg_name, None)
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def unlink(self) -> None:
        """Remove the segments (owner only; workers just :meth:`close`)."""
        if self._finalizer is not None:
            atexit.unregister(self._finalizer)
            self._finalizer.detach()
            self._finalizer = None
        self.close()
        _cleanup_by_name(self._base, self._lock_path)

    def __enter__(self) -> "SharedFactorArena":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SharedFactorArena(name={self._base!r}, f={self.f})"


class SharedModelState:
    """The model plane's shared block: one arena per entity kind + ``mu``.

    This is what a worker process needs to run SGD against the one true
    parameter set: ``user``/``video`` factor arenas in shared memory and
    the global-average accumulator (kept in the user arena's control
    block, folded under the exclusive lock so concurrent workers never
    lose an observation).  Pickles as attach-by-name handles, so bolt
    factories can close over it and reconstruct inside a worker.
    """

    def __init__(
        self, user: SharedFactorArena, video: SharedFactorArena
    ) -> None:
        if user.f != video.f:
            raise ValueError(
                f"user/video arenas disagree on f: {user.f} != {video.f}"
            )
        self.user = user
        self.video = video
        self.f = user.f

    @classmethod
    def create(
        cls, f: int, initial_capacity: int = 64, name: str | None = None
    ) -> "SharedModelState":
        base = name or f"repro-model-{secrets.token_hex(6)}"
        return cls(
            SharedFactorArena(
                f, initial_capacity=initial_capacity, name=f"{base}-u"
            ),
            SharedFactorArena(
                f, initial_capacity=initial_capacity, name=f"{base}-v"
            ),
        )

    @classmethod
    def attach(cls, names: tuple[str, str]) -> "SharedModelState":
        return cls(
            SharedFactorArena.attach(names[0]),
            SharedFactorArena.attach(names[1]),
        )

    def __reduce__(self):
        return (SharedModelState.attach, (self.names,))

    @property
    def names(self) -> tuple[str, str]:
        return (self.user.name, self.video.name)

    def arena(self, kind: str) -> SharedFactorArena:
        if kind == "user":
            return self.user
        if kind == "video":
            return self.video
        raise KeyError(kind)

    # -- shared mu ---------------------------------------------------------

    def mu_state(self) -> tuple[float, int]:
        return self.user.mu_state()

    def mu_fold(self, ratings: Iterable[float]) -> None:
        self.user.mu_fold(ratings)

    def mu_set(self, total: float, count: int) -> None:
        self.user.mu_set(total, count)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.user.close()
        self.video.close()

    def unlink(self) -> None:
        self.user.unlink()
        self.video.unlink()

    def __enter__(self) -> "SharedModelState":
        return self

    def __exit__(self, *exc_info) -> None:
        self.user.__exit__(*exc_info)
        self.video.__exit__(*exc_info)
