"""Similar-video tables (paper §4.2).

For every video the system keeps "a top-N similar video list" in the KV
store — the key data structure that makes real-time top-N generation
tractable: instead of scoring millions of videos per request, candidates
come from the precomputed lists of a few seed videos.

Entries store the *raw* fused relevance of Eq. 12 at its update time plus
that timestamp; the time damping of Eq. 11 is applied at read time, so a
pair's effective similarity decays continuously until a new supporting user
action refreshes it.

Pair discovery follows the paper's topology (§5.1): when a user engages with
a new video, it is paired with the videos already in that user's recent
history (``GetItemPairs``), each pair is scored (``ItemPairSim``), and the
per-video lists are updated (``ResultStorage``).
"""

from __future__ import annotations

import heapq
import math
from typing import Mapping, Sequence

from ..clock import Clock, SystemClock
from ..config import SimilarityConfig
from ..data.schema import Video
from ..kvstore import InMemoryKVStore, KVStore, Namespace
from .mf import MFModel
from .similarity import SimilarityScorer


def generate_pairs(
    new_video: str, recent_videos: list[str], limit: int = 20
) -> list[tuple[str, str]]:
    """Video pairs triggered by an engagement with ``new_video``.

    Pairs the new video with up to ``limit`` of the user's most recent
    *other* videos — the co-occurrence signal the similar-video tables are
    built from.
    """
    pairs = []
    for other in recent_videos:
        if other == new_video:
            continue
        pairs.append((new_video, other))
        if len(pairs) >= limit:
            break
    return pairs


def _eviction_key(raw: float, timestamp: float, xi: float) -> tuple[float, float]:
    """A time-invariant total order over damped relevances.

    At any common read time ``now`` the damped value of an entry is
    ``raw * 2^(-(now - t)/xi)``; comparing two entries, ``now`` cancels,
    so ``log2(|raw|) + t/xi`` orders same-sign entries without ever
    materialising ``2^(t/xi)`` (which overflows for realistic epoch
    timestamps).  The leading sign component keeps negatives < zero <
    positives.  Ascending key == ascending damped value, so a min-heap of
    keys pops the weakest entry — and keys never go stale as the clock
    advances, which is what lets the heap live across updates.

    The one divergence from :meth:`SimilarityScorer.damped` is its
    ``max(0, elapsed)`` clamp: an entry stamped *later* than the eviction
    time keeps growing here instead of flattening.  Entries from the
    future only arise from out-of-order replays, and preferring the newest
    of them is an acceptable tie-break.
    """
    if raw > 0.0:
        return (1.0, math.log2(raw) + timestamp / xi)
    if raw < 0.0:
        return (-1.0, -(math.log2(-raw) + timestamp / xi))
    return (0.0, 0.0)


class SimilarVideoTable:
    """Incrementally maintained top-K similar-video lists.

    The table needs the video catalogue (for type similarity) and the MF
    model (for latent vectors).  Pairs whose videos have no learned vector
    yet are ignored — they cannot be scored.
    """

    def __init__(
        self,
        videos: Mapping[str, Video],
        model: MFModel,
        config: SimilarityConfig | None = None,
        scorer: SimilarityScorer | None = None,
        clock: Clock | None = None,
        store: KVStore | None = None,
    ) -> None:
        self.videos = videos
        self.model = model
        self.config = config or SimilarityConfig()
        self.scorer = scorer or SimilarityScorer(self.config)
        self.clock = clock or SystemClock()
        backing = store if store is not None else InMemoryKVStore()
        # Per video: dict other_id -> (raw_relevance, updated_at).
        self._table = Namespace(backing, "simtable")
        # Per video: min-heap of (eviction key, other_id) mirroring the
        # stored entries, so eviction pops the weakest in O(log K) instead
        # of scanning all K.  Keys are time-invariant (see _eviction_key)
        # so the heap survives across updates; superseded pushes are
        # skipped lazily at pop time.  Purely a local accelerator — it is
        # rebuilt on demand, never persisted.
        self._heaps: dict[str, list[tuple[tuple[float, float], str]]] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def offer_pair(
        self, video_i: str, video_j: str, now: float | None = None
    ) -> float | None:
        """Score the pair and refresh both videos' lists.

        Returns the raw fused relevance, or ``None`` when the pair cannot
        be scored (unknown video, missing vector, or a self-pair).
        """
        if video_i == video_j:
            return None
        meta_i = self.videos.get(video_i)
        meta_j = self.videos.get(video_j)
        if meta_i is None or meta_j is None:
            return None
        y_i, y_j = self.model.video_vectors_many([video_i, video_j])
        if y_i is None or y_j is None:
            return None
        timestamp = self.clock.now() if now is None else now
        raw = self.scorer.raw_relevance(meta_i, y_i, meta_j, y_j)
        self.insert_scored(video_i, video_j, raw, timestamp)
        self.insert_scored(video_j, video_i, raw, timestamp)
        return raw

    def score_pair(
        self, video_i: str, video_j: str
    ) -> float | None:
        """Compute the raw fused relevance without touching the tables.

        The ``ItemPairSim`` bolt uses this: scoring happens on the pair's
        worker, storage happens downstream on the video's worker.
        """
        if video_i == video_j:
            return None
        meta_i = self.videos.get(video_i)
        meta_j = self.videos.get(video_j)
        if meta_i is None or meta_j is None:
            return None
        y_i, y_j = self.model.video_vectors_many([video_i, video_j])
        if y_i is None or y_j is None:
            return None
        return self.scorer.raw_relevance(meta_i, y_i, meta_j, y_j)

    def insert_scored(
        self, video_id: str, other_id: str, raw: float, timestamp: float
    ) -> None:
        """Store one pre-scored directed entry (the ``ResultStorage`` step)."""
        self._insert(video_id, other_id, raw, timestamp)

    def _rebuild_heap(
        self, video_id: str, entries: dict[str, tuple[float, float]]
    ) -> list[tuple[tuple[float, float], str]]:
        xi = self.config.xi
        heap = [
            (_eviction_key(raw, updated_at, xi), other)
            for other, (raw, updated_at) in entries.items()
        ]
        heapq.heapify(heap)
        self._heaps[video_id] = heap
        return heap

    def _insert(
        self, video_id: str, other_id: str, raw: float, timestamp: float
    ) -> None:
        """Put ``other_id`` into ``video_id``'s list, evicting if full.

        Eviction compares *damped* relevances (via the time-invariant
        :func:`_eviction_key`) so a stale high raw score cannot squat in
        the table forever.  The stored dict is mutated in place under the
        store's atomic update — no copy of all K entries per write — and
        the weakest entry comes off the instance's min-heap in O(log K)
        rather than a full scan.
        """
        xi = self.config.xi
        key = _eviction_key(raw, timestamp, xi)

        def _update(entries: dict[str, tuple[float, float]]):
            heap = self._heaps.get(video_id)
            if heap is None:
                heap = self._rebuild_heap(video_id, entries)
            entries[other_id] = (raw, timestamp)
            heapq.heappush(heap, (key, other_id))
            if len(entries) > self.config.table_size:
                while True:
                    if not heap:
                        # Cache missed writes from another table instance
                        # over the same store; resync and keep going.
                        heap = self._rebuild_heap(video_id, entries)
                    weakest_key, weakest = heapq.heappop(heap)
                    current = entries.get(weakest)
                    if current is None:
                        continue  # already evicted; lazily discarded
                    if _eviction_key(current[0], current[1], xi) != weakest_key:
                        continue  # superseded by a newer push for this id
                    del entries[weakest]
                    break
            if len(heap) > 4 * self.config.table_size:
                self._rebuild_heap(video_id, entries)
            return entries

        self._table.update(video_id, _update, default={})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def neighbors(
        self, video_id: str, k: int | None = None, now: float | None = None
    ) -> list[tuple[str, float]]:
        """The top-``k`` similar videos with damping applied at read time.

        Entries whose damped relevance is no longer positive are dropped —
        fully forgotten per the paper's "past similar videos should be
        gradually forgotten".
        """
        entries: dict[str, tuple[float, float]] = self._table.get(video_id, {})
        current = self.clock.now() if now is None else now
        return self._rank(entries, k, current)

    def neighbors_many(
        self,
        video_ids: Sequence[str],
        k: int | None = None,
        now: float | None = None,
    ) -> list[list[tuple[str, float]]]:
        """Batch :meth:`neighbors`: one store round-trip for all seeds.

        Returns one ranked list per seed, in input order — the candidate
        selector's path, where a request's seeds become one ``mget``
        (one call per shard on a sharded store) instead of a get per seed.
        Duplicate seeds (a video appearing twice in a user's recent
        history) are fetched — and ranked — once, then fanned back out.
        """
        current = self.clock.now() if now is None else now
        unique = list(dict.fromkeys(video_ids))
        ranked = {
            vid: self._rank(entries or {}, k, current)
            for vid, entries in zip(unique, self._table.mget(unique))
        }
        return [ranked[vid] for vid in video_ids]

    def _rank(
        self,
        entries: dict[str, tuple[float, float]],
        k: int | None,
        current: float,
    ) -> list[tuple[str, float]]:
        if not entries:
            return []
        # Snapshot first: entries may be the live stored dict (inserts
        # mutate it in place) and a concurrent writer must not upend the
        # iteration.  A plain dict() copy is atomic under the GIL.
        scored = [
            (other, self.scorer.damped(raw, current - updated_at))
            for other, (raw, updated_at) in list(dict(entries).items())
        ]
        scored = [(other, sim) for other, sim in scored if sim > 0.0]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        limit = self.config.table_size if k is None else k
        return scored[:limit]

    def raw_entries(self, video_id: str) -> dict[str, tuple[float, float]]:
        """The stored (raw relevance, updated_at) map — for tests/tools."""
        return dict(self._table.get(video_id, {}))

    def tracked_videos(self) -> list[str]:
        """Ids of all videos that currently have a similar list."""
        return list(self._table.keys())

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._table
