"""Similar-video tables (paper §4.2).

For every video the system keeps "a top-N similar video list" in the KV
store — the key data structure that makes real-time top-N generation
tractable: instead of scoring millions of videos per request, candidates
come from the precomputed lists of a few seed videos.

Entries store the *raw* fused relevance of Eq. 12 at its update time plus
that timestamp; the time damping of Eq. 11 is applied at read time, so a
pair's effective similarity decays continuously until a new supporting user
action refreshes it.

Pair discovery follows the paper's topology (§5.1): when a user engages with
a new video, it is paired with the videos already in that user's recent
history (``GetItemPairs``), each pair is scored (``ItemPairSim``), and the
per-video lists are updated (``ResultStorage``).
"""

from __future__ import annotations

from typing import Mapping

from ..clock import Clock, SystemClock
from ..config import SimilarityConfig
from ..data.schema import Video
from ..kvstore import InMemoryKVStore, KVStore, Namespace
from .mf import MFModel
from .similarity import SimilarityScorer


def generate_pairs(
    new_video: str, recent_videos: list[str], limit: int = 20
) -> list[tuple[str, str]]:
    """Video pairs triggered by an engagement with ``new_video``.

    Pairs the new video with up to ``limit`` of the user's most recent
    *other* videos — the co-occurrence signal the similar-video tables are
    built from.
    """
    pairs = []
    for other in recent_videos:
        if other == new_video:
            continue
        pairs.append((new_video, other))
        if len(pairs) >= limit:
            break
    return pairs


class SimilarVideoTable:
    """Incrementally maintained top-K similar-video lists.

    The table needs the video catalogue (for type similarity) and the MF
    model (for latent vectors).  Pairs whose videos have no learned vector
    yet are ignored — they cannot be scored.
    """

    def __init__(
        self,
        videos: Mapping[str, Video],
        model: MFModel,
        config: SimilarityConfig | None = None,
        scorer: SimilarityScorer | None = None,
        clock: Clock | None = None,
        store: KVStore | None = None,
    ) -> None:
        self.videos = videos
        self.model = model
        self.config = config or SimilarityConfig()
        self.scorer = scorer or SimilarityScorer(self.config)
        self.clock = clock or SystemClock()
        backing = store if store is not None else InMemoryKVStore()
        # Per video: dict other_id -> (raw_relevance, updated_at).
        self._table = Namespace(backing, "simtable")

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def offer_pair(
        self, video_i: str, video_j: str, now: float | None = None
    ) -> float | None:
        """Score the pair and refresh both videos' lists.

        Returns the raw fused relevance, or ``None`` when the pair cannot
        be scored (unknown video, missing vector, or a self-pair).
        """
        if video_i == video_j:
            return None
        meta_i = self.videos.get(video_i)
        meta_j = self.videos.get(video_j)
        if meta_i is None or meta_j is None:
            return None
        y_i = self.model.video_vector(video_i)
        y_j = self.model.video_vector(video_j)
        if y_i is None or y_j is None:
            return None
        timestamp = self.clock.now() if now is None else now
        raw = self.scorer.raw_relevance(meta_i, y_i, meta_j, y_j)
        self.insert_scored(video_i, video_j, raw, timestamp)
        self.insert_scored(video_j, video_i, raw, timestamp)
        return raw

    def score_pair(
        self, video_i: str, video_j: str
    ) -> float | None:
        """Compute the raw fused relevance without touching the tables.

        The ``ItemPairSim`` bolt uses this: scoring happens on the pair's
        worker, storage happens downstream on the video's worker.
        """
        if video_i == video_j:
            return None
        meta_i = self.videos.get(video_i)
        meta_j = self.videos.get(video_j)
        if meta_i is None or meta_j is None:
            return None
        y_i = self.model.video_vector(video_i)
        y_j = self.model.video_vector(video_j)
        if y_i is None or y_j is None:
            return None
        return self.scorer.raw_relevance(meta_i, y_i, meta_j, y_j)

    def insert_scored(
        self, video_id: str, other_id: str, raw: float, timestamp: float
    ) -> None:
        """Store one pre-scored directed entry (the ``ResultStorage`` step)."""
        self._insert(video_id, other_id, raw, timestamp)

    def _insert(
        self, video_id: str, other_id: str, raw: float, timestamp: float
    ) -> None:
        """Put ``other_id`` into ``video_id``'s list, evicting if full.

        Eviction compares *damped* relevances as of ``timestamp`` so a
        stale high raw score cannot squat in the table forever.
        """

        def _update(entries: dict[str, tuple[float, float]]):
            entries = dict(entries)
            entries[other_id] = (raw, timestamp)
            if len(entries) > self.config.table_size:
                weakest = min(
                    entries,
                    key=lambda vid: self.scorer.damped(
                        entries[vid][0], timestamp - entries[vid][1]
                    ),
                )
                del entries[weakest]
            return entries

        self._table.update(video_id, _update, default={})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def neighbors(
        self, video_id: str, k: int | None = None, now: float | None = None
    ) -> list[tuple[str, float]]:
        """The top-``k`` similar videos with damping applied at read time.

        Entries whose damped relevance is no longer positive are dropped —
        fully forgotten per the paper's "past similar videos should be
        gradually forgotten".
        """
        entries: dict[str, tuple[float, float]] = self._table.get(video_id, {})
        if not entries:
            return []
        current = self.clock.now() if now is None else now
        scored = [
            (other, self.scorer.damped(raw, current - updated_at))
            for other, (raw, updated_at) in entries.items()
        ]
        scored = [(other, sim) for other, sim in scored if sim > 0.0]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        limit = self.config.table_size if k is None else k
        return scored[:limit]

    def raw_entries(self, video_id: str) -> dict[str, tuple[float, float]]:
        """The stored (raw relevance, updated_at) map — for tests/tools."""
        return dict(self._table.get(video_id, {}))

    def tracked_videos(self) -> list[str]:
        """Ids of all videos that currently have a similar list."""
        return list(self._table.keys())

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._table
