"""Sublinear candidate retrieval: LSH index over learned factor vectors.

The paper's serving path expands similar-video tables per seed (§4.1) and
post-filters by demographic group (§5.1); both stages are linear in the
candidate pool.  At catalog scale the retrieval stage — not Eq. 2 scoring —
dominates tail latency, so this module adds an index layer that makes
top-N retrieval sublinear in catalog size:

* **Random-hyperplane signatures** (:class:`RandomHyperplanes`) generalise
  the :mod:`repro.baselines.simhash` machinery from weighted token sets to
  dense factor vectors: ``tables`` bands of ``band_bits`` sign bits each,
  where the probability two vectors agree on a bit is ``1 - theta/pi``
  (Charikar's cosine LSH).

* **Bias-augmented direction hashing** — top-N under Eq. 2 is maximum
  inner product ``x_u . y_i + b_i``, not cosine.  Sign signatures are
  scale-invariant, so the index hashes the *direction* of the augmented
  item ``[y_i, s*b_i]`` against the augmented query ``[x_u, 1/s]``
  (whose inner product is exactly ``x_u . y_i + b_i``; ``s`` is a
  learned bias scale that keeps the query's constant coordinate small).
  Magnitude is deliberately left to stage 2: the exact re-rank restores
  inner-product order over the shortlist.  The textbook alternative — a
  Neyshabur-Srebro norm-completion coordinate
  ``sqrt(M^2 - |y|^2 - b^2)`` — is strictly worse at LSH time here:
  the completion dominates every below-max-norm item and crushes the
  angular resolution the signatures depend on (measured: recall@100
  collapses below 0.6 at 1M items; direction-only hashing holds above
  0.95).

* **Partitioned inverted lists** — buckets are keyed by
  ``(partition, table, band value)`` where the partition is the video's
  ``kind``.  The paper's demographic post-filter becomes index *pruning*:
  a request probes only partitions compatible with the requester's group
  (learned from observed engagements), instead of filtering a full
  shortlist after the fact.

* **Query-directed multi-probe** — each query probes the exact bucket in
  every table first, then perturbed buckets in ascending *cost* order,
  where a perturbation's cost is the summed projection margin of the bits
  it flips (bits whose projection landed near a hyperplane are the likely
  hash mistakes).  Probing stops as soon as the shortlist target
  (``oversample * n``) is met, so query cost tracks the target — not the
  catalog.

* **Incremental upsert** — :class:`~repro.core.online.OnlineTrainer`
  updates factors every action, but signatures drift slowly; videos are
  re-hashed every ``check_every``-th upsert rather than every SGD step.
  Rebucketing leaves lazily-invalidated ("stale") entries behind; the
  index compacts itself when stale entries outnumber live rows.

The index is an *accelerator*, never the source of truth: it is rebuilt
from the model's factor arena (:meth:`AnnIndex.build_from_model`), which
is what the durability story checkpoints — a checkpoint-restored arena
rebuilds an index that serves identical shortlists.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..config import RetrievalConfig
from ..data.schema import GLOBAL_GROUP, Video

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from .mf import MFModel

#: Partition name used when partitioning is disabled or a video has no kind.
UNPARTITIONED = ""

#: Rows hashed per chunk during bulk signature computation (bounds the
#: transient ``(chunk, tables * band_bits)`` projection matrix).
_BUILD_CHUNK = 65_536


def top_n_by_score(
    video_ids: Sequence[str], scores: np.ndarray, n: int
) -> list[tuple[str, float]]:
    """Exact top-``n`` by ``(score desc, video_id asc)``.

    The single tie-break rule every ranking stage shares: equal scores are
    broken by ascending video id, so ANN-vs-brute-force equivalence never
    depends on array order or sort stability.  Uses ``np.partition`` to
    avoid sorting the full candidate set when ``n`` is small.
    """
    m = len(video_ids)
    if n <= 0 or m == 0:
        return []
    scores = np.asarray(scores, dtype=np.float64)
    if m <= n:
        order = sorted(range(m), key=lambda i: (-scores[i], video_ids[i]))
        return [(video_ids[i], float(scores[i])) for i in order]
    kth = np.partition(scores, m - n)[m - n]  # n-th largest value
    above = np.flatnonzero(scores > kth)
    picks = sorted(
        ((-float(scores[i]), video_ids[i]) for i in above)
    )
    # Fill the remaining slots from the boundary-equal rows by ascending id
    # — the part a plain partition would leave nondeterministic.
    boundary = sorted(video_ids[int(i)] for i in np.flatnonzero(scores == kth))
    out = [(vid, -neg) for neg, vid in picks]
    out.extend((vid, float(kth)) for vid in boundary[: n - len(out)])
    return out


def auto_band_bits(
    catalog_size: int, n_partitions: int, config: RetrievalConfig
) -> int:
    """Bits per band targeting ``config.target_occupancy`` rows per bucket.

    Partitioning fragments buckets (each ``(partition, band)`` bucket only
    holds that partition's rows), so the effective bucket count is
    ``n_partitions * 2**bits``; solve for the bits that put the *mean*
    occupancy near the target, clamped to the configured range.
    """
    if config.band_bits:
        return config.band_bits
    n = max(1, catalog_size)
    parts = max(1, n_partitions)
    bits = int(round(np.log2(max(1.0, n / (config.target_occupancy * parts)))))
    return max(config.min_band_bits, min(config.max_band_bits, bits))


class RandomHyperplanes:
    """Seeded family of random hyperplanes producing banded signatures.

    ``tables * band_bits`` hyperplanes in ``R^dim``; each vector's signature
    is the sign pattern of its projections, grouped into ``tables`` band
    values of ``band_bits`` bits each.  Deterministic in ``seed`` — two
    processes with the same config hash identically, which is what makes a
    rebuilt index comparable to the original.
    """

    def __init__(self, dim: int, tables: int, band_bits: int, seed: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not 1 <= band_bits <= 63:
            raise ValueError(f"band_bits must be in [1, 63], got {band_bits}")
        if tables < 1:
            raise ValueError(f"tables must be >= 1, got {tables}")
        self.dim = dim
        self.tables = tables
        self.band_bits = band_bits
        rng = np.random.default_rng(seed)
        #: ``(tables * band_bits, dim)`` — one hyperplane normal per bit.
        self.planes = rng.standard_normal((tables * band_bits, dim))

    def bit_matrix(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, tables * band_bits)`` sign bits of each vector."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        return vectors @ self.planes.T > 0.0

    def pack_bands(self, bits: np.ndarray) -> np.ndarray:
        """Pack a ``(n, tables * band_bits)`` bit matrix into ``(n, tables)``
        uint64 band values."""
        n = bits.shape[0]
        out = np.zeros((n, self.tables), dtype=np.uint64)
        for t in range(self.tables):
            band = bits[:, t * self.band_bits : (t + 1) * self.band_bits]
            for j in range(self.band_bits):
                out[:, t] |= band[:, j].astype(np.uint64) << np.uint64(j)
        return out

    def band_values(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, tables)`` uint64 band values of each vector."""
        return self.pack_bands(self.bit_matrix(vectors))

    @staticmethod
    def hamming(bits_a: np.ndarray, bits_b: np.ndarray) -> int:
        """Hamming distance between two full bit signatures."""
        return int(np.count_nonzero(bits_a != bits_b))


class AnnIndex:
    """LSH-bucketed ANN index with partitioned inverted candidate lists.

    Indexes *video* factor vectors; queries are either user vectors (MIPS
    under Eq. 2, including the video bias) or video vectors (nearest items
    to a seed, the cold-user fallback).  Returned shortlists are id-sorted
    — candidate order is decided by the exact re-rank stage, never by
    bucket iteration order.

    Thread safety: writes (upsert/evict/build) and probe-time bucket reads
    take one reentrant lock; numpy gathers run on arrays that are only
    appended to, never mutated in place under a reader.
    """

    def __init__(
        self,
        f: int,
        videos: Mapping[str, Video] | None = None,
        config: RetrievalConfig | None = None,
        obs: "Observability | None" = None,
        expected_videos: int | None = None,
    ) -> None:
        if f < 1:
            raise ValueError(f"factor dimensionality must be >= 1, got {f}")
        self.f = f
        self.videos = videos or {}
        self.config = config or RetrievalConfig()
        cfg = self.config
        expected = expected_videos if expected_videos else len(self.videos)
        n_parts = self._expected_partitions()
        self.band_bits = auto_band_bits(expected or 1024, n_parts, cfg)
        self.tables = cfg.tables
        # Augmented dimensionality: [vector, bias].
        self.family = RandomHyperplanes(
            f + 1, cfg.tables, self.band_bits, cfg.seed
        )
        self._lock = threading.RLock()
        # Row interning (first-touch order, rows never move).  ``_ids_arr``
        # mirrors ``_ids`` as an object-dtype array for vectorized row->id
        # gathers on the query path.
        self._row_of: dict[str, int] = {}
        self._ids: list[str] = []
        capacity = max(64, expected)
        self._ids_arr = np.empty(capacity, dtype=object)
        self._bands = np.zeros((capacity, self.tables), dtype=np.uint64)
        self._alive = np.zeros(capacity, dtype=bool)
        self._part_of_row = np.zeros(capacity, dtype=np.int32)
        self._upserts = np.zeros(capacity, dtype=np.int64)
        self._n_alive = 0
        # Partition interning.
        self._part_ids: dict[str, int] = {}
        self._part_names: list[str] = []
        self._part_id(UNPARTITIONED)
        # Inverted lists: (partition, table, band value) -> rows.  Bulk
        # builds store immutable numpy arrays; incremental upserts convert
        # a bucket to a python list on first append.
        self._buckets: dict[tuple[int, int, int], object] = {}
        self._stale = 0
        # Demographic-group -> partition affinity, learned from engagements.
        self._group_parts: dict[str, set[int]] = {}
        # Bias-coordinate scale s of the hashed direction [y, s*b];
        # re-derived from the data on every bulk build unless pinned by
        # config.  1.0 covers the incremental-from-empty regime.
        self._bias_scale = cfg.bias_scale if cfg.bias_scale > 0 else 1.0
        # Pre-computed multi-probe flip masks, radius -> [xor masks].
        self._flip_masks = self._build_flip_masks()
        # Pre-computed bit-index combinations for directed probing,
        # radius -> (n_combos, radius) over the lowest-margin bit slots.
        depth = min(self.band_bits, self._DIRECTED_BITS)
        self._probe_combos = [
            np.array(
                list(itertools.combinations(range(depth), radius)),
                dtype=np.int64,
            )
            for radius in range(1, cfg.probe_radius + 1)
            if radius <= depth
        ]
        self._init_obs(obs)

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _expected_partitions(self) -> int:
        if not self.config.partition_by_kind or not self.videos:
            return 1
        return max(1, len({v.kind for v in self.videos.values()}))

    def _build_flip_masks(self) -> list[list[int]]:
        masks: list[list[int]] = [[0]]
        bits = range(self.band_bits)
        for radius in range(1, self.config.probe_radius + 1):
            masks.append(
                [
                    sum(1 << b for b in combo)
                    for combo in itertools.combinations(bits, radius)
                ]
            )
        return masks

    def _init_obs(self, obs: "Observability | None") -> None:
        if obs is None:
            self._queries = self._probes = self._upsert_ctr = None
            self._shortlist_hist = self._rebuilds = None
            self._indexed_gauge = self._stale_gauge = None
            return
        reg = obs.registry
        self._queries = reg.counter(
            "ann_queries_total", "ANN index queries by kind", ("kind",)
        )
        self._probes = reg.counter(
            "ann_probes_total", "Buckets probed by ANN queries"
        )
        self._shortlist_hist = reg.histogram(
            "ann_shortlist_size",
            "Shortlist rows handed to the exact re-rank stage",
            buckets=(8, 32, 128, 512, 2048, 8192, 32768),
        )
        self._upsert_ctr = reg.counter(
            "ann_upserts_total",
            "Incremental index upserts by outcome",
            ("result",),
        )
        self._rebuilds = reg.counter(
            "ann_rebuilds_total", "Full index (re)builds"
        )
        self._indexed_gauge = reg.gauge(
            "ann_indexed_videos", "Videos currently indexed"
        )
        self._stale_gauge = reg.gauge(
            "ann_stale_entries", "Lazily invalidated bucket entries"
        )

    def _part_id(self, name: str) -> int:
        pid = self._part_ids.get(name)
        if pid is None:
            pid = len(self._part_names)
            self._part_ids[name] = pid
            self._part_names.append(name)
        return pid

    def _partition_name(self, video_id: str) -> str:
        if not self.config.partition_by_kind:
            return UNPARTITIONED
        video = self.videos.get(video_id)
        return video.kind if video is not None and video.kind else UNPARTITIONED

    def _grow(self, need: int) -> None:
        capacity = len(self._alive)
        if need <= capacity:
            return
        new_capacity = max(capacity * 2, need)
        for name in (
            "_bands", "_alive", "_part_of_row", "_upserts", "_ids_arr"
        ):
            old = getattr(self, name)
            fresh = np.zeros(
                (new_capacity,) + old.shape[1:], dtype=old.dtype
            )
            fresh[: len(self._ids)] = old[: len(self._ids)]
            setattr(self, name, fresh)

    def _intern(self, video_id: str) -> int:
        row = self._row_of.get(video_id)
        if row is None:
            row = len(self._ids)
            self._grow(row + 1)
            self._row_of[video_id] = row
            self._ids.append(video_id)
            self._ids_arr[row] = video_id
        return row

    # ------------------------------------------------------------------
    # Signatures (MIPS-augmented)
    # ------------------------------------------------------------------

    def _item_band_values(self, vectors: np.ndarray, biases: np.ndarray) -> np.ndarray:
        """Band values of augmented item directions ``[y, s*b]``.

        The augmented vector is never materialised: its projection onto
        the hyperplanes decomposes into the vector and scaled-bias parts.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        biases = np.atleast_1d(np.asarray(biases, dtype=np.float64))
        planes = self.family.planes
        proj = vectors @ planes[:, : self.f].T
        proj += np.outer(self._bias_scale * biases, planes[:, self.f])
        return self.family.pack_bands(proj > 0.0)

    def _user_projection(self, x_u: np.ndarray) -> np.ndarray:
        """Hyperplane projections of the augmented user query ``[x_u, 1/s]``."""
        x_u = np.asarray(x_u, dtype=np.float64)
        planes = self.family.planes
        return planes[:, : self.f] @ x_u + planes[:, self.f] / self._bias_scale

    def _item_projection(self, y: np.ndarray) -> np.ndarray:
        """Hyperplane projections of a raw item query ``[y, 0]``."""
        y = np.asarray(y, dtype=np.float64)
        return self.family.planes[:, : self.f] @ y

    def user_band_values(self, x_u: np.ndarray) -> np.ndarray:
        """Band values of the augmented user query ``[x_u, 1/s]``."""
        return self.family.pack_bands(
            (self._user_projection(x_u) > 0.0)[None, :]
        )[0]

    def item_query_band_values(self, y: np.ndarray) -> np.ndarray:
        """Band values of a raw item query ``[y, 0]`` (seed expansion)."""
        return self.family.pack_bands(
            (self._item_projection(y) > 0.0)[None, :]
        )[0]

    # ------------------------------------------------------------------
    # Bulk build
    # ------------------------------------------------------------------

    def bulk_load(
        self,
        ids: Sequence[str],
        vectors: np.ndarray,
        biases: np.ndarray | None = None,
    ) -> dict:
        """(Re)build the index from row-aligned factors; returns a report.

        ``vectors``/``biases`` may be zero-copy views into a factor arena —
        they are only read.  Any previous contents are discarded.  Re-derives
        the bias scale ``s`` from the data (unless pinned by config) before
        hashing, so incremental upserts hash consistently with the build.
        """
        started = time.perf_counter()
        ids = list(ids)
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.f:
            raise ValueError(
                f"vectors shape {vectors.shape} does not match f={self.f}"
            )
        if biases is None:
            biases = np.zeros(len(ids), dtype=np.float64)
        biases = np.asarray(biases, dtype=np.float64)
        if len(ids) != len(vectors) or len(ids) != len(biases):
            raise ValueError("ids, vectors and biases must be row-aligned")
        with self._lock:
            n = len(ids)
            self._row_of = {vid: row for row, vid in enumerate(ids)}
            if len(self._row_of) != n:
                raise ValueError("duplicate video ids in bulk_load")
            self._ids = ids
            capacity = max(64, n)
            self._ids_arr = np.empty(capacity, dtype=object)
            self._ids_arr[:n] = ids
            self._bands = np.zeros((capacity, self.tables), dtype=np.uint64)
            self._alive = np.zeros(capacity, dtype=bool)
            self._alive[:n] = True
            self._part_of_row = np.zeros(capacity, dtype=np.int32)
            self._upserts = np.zeros(capacity, dtype=np.int64)
            self._n_alive = n
            self._buckets = {}
            self._stale = 0
            if self.config.partition_by_kind and self.videos:
                for row, vid in enumerate(ids):
                    self._part_of_row[row] = self._part_id(
                        self._partition_name(vid)
                    )
            # Bias-coordinate scale: keep the query's constant coordinate
            # (1/s) at ~1/4 of a typical vector norm so it does not
            # compress the angular spread the signatures rely on.
            if self.config.bias_scale > 0:
                self._bias_scale = self.config.bias_scale
            else:
                vec_norms_sq = np.einsum("ij,ij->i", vectors, vectors)
                median_norm = (
                    float(np.sqrt(np.median(vec_norms_sq))) if n else 0.0
                )
                self._bias_scale = (
                    4.0 / median_norm if median_norm > 0 else 1.0
                )
            for start in range(0, n, _BUILD_CHUNK):
                stop = min(n, start + _BUILD_CHUNK)
                self._bands[start:stop] = self._item_band_values(
                    vectors[start:stop], biases[start:stop]
                )
            self._fill_buckets(
                np.arange(n, dtype=np.int64),
                self._bands[:n],
                self._part_of_row[:n],
            )
            elapsed = time.perf_counter() - started
            report = {
                "indexed": n,
                "tables": self.tables,
                "band_bits": self.band_bits,
                "partitions": len(self._part_names),
                "buckets": len(self._buckets),
                "build_seconds": elapsed,
                "bias_scale": self._bias_scale,
            }
        if self._rebuilds is not None:
            self._rebuilds.inc()
        self._update_gauges()
        return report

    def _fill_buckets(
        self, rows: np.ndarray, bands: np.ndarray, parts: np.ndarray
    ) -> None:
        """Vectorized grouping of ``rows`` into per-table buckets."""
        if not len(rows):
            return
        for t in range(self.tables):
            band_t = bands[:, t]
            order = np.lexsort((rows, band_t, parts))
            sp = parts[order]
            sb = band_t[order]
            sr = rows[order]
            breaks = np.flatnonzero((np.diff(sp) != 0) | (np.diff(sb) != 0))
            starts = np.concatenate(([0], breaks + 1))
            ends = np.concatenate((breaks + 1, [len(sr)]))
            buckets = self._buckets
            for s, e in zip(starts, ends):
                key = (int(sp[s]), t, int(sb[s]))
                existing = buckets.get(key)
                if existing is None:
                    buckets[key] = sr[s:e]
                else:
                    if isinstance(existing, np.ndarray):
                        existing = existing.tolist()
                    existing.extend(int(r) for r in sr[s:e])
                    buckets[key] = existing

    def build_from_model(self, model: "MFModel") -> dict:
        """Build from the model's learned video factors.

        Reads the factor arena through the model's deterministic export
        (sorted ids) so a fresh build and a checkpoint-restored build index
        identical rows in identical order — the rebuild-from-checkpoint
        contract the durability suite pins.
        """
        ids, vectors, biases = model.video_rows()
        return self.bulk_load(ids, vectors, biases)

    def rebuild(self, model: "MFModel") -> dict:
        """Full rebuild (fresh max norm, no stale entries); returns report."""
        return self.build_from_model(model)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def upsert(self, video_id: str, vector: np.ndarray, bias: float = 0.0) -> str:
        """Fold one factor update into the index.

        Returns the outcome: ``"fresh"`` (new video, hashed and inserted),
        ``"skipped"`` (drift check not due yet), ``"checked"`` (re-hashed,
        signature unchanged) or ``"rehashed"`` (signature drifted — moved
        to new buckets, old entries left stale).
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.f,):
            raise ValueError(
                f"vector shape {vector.shape} does not match f={self.f}"
            )
        with self._lock:
            row = self._row_of.get(video_id)
            is_new = row is None or not self._alive[row]
            if row is not None:
                self._upserts[row] += 1
                if (
                    not is_new
                    and self._upserts[row] % self.config.check_every != 0
                ):
                    result = "skipped"
                    self._record_upsert(result)
                    return result
            bands = self._item_band_values(
                vector[None, :], np.array([bias])
            )[0]
            if is_new:
                row = self._intern(video_id)
                self._alive[row] = True
                self._n_alive += 1
                self._part_of_row[row] = self._part_id(
                    self._partition_name(video_id)
                )
                self._bands[row] = bands
                part = int(self._part_of_row[row])
                for t in range(self.tables):
                    self._bucket_append(part, t, int(bands[t]), row)
                result = "fresh"
            else:
                changed = np.flatnonzero(bands != self._bands[row])
                if len(changed):
                    part = int(self._part_of_row[row])
                    for t in changed:
                        self._bucket_append(part, int(t), int(bands[t]), row)
                    self._stale += len(changed)
                    self._bands[row] = bands
                    result = "rehashed"
                else:
                    result = "checked"
                if self._stale > max(1024, self._n_alive):
                    self._compact()
            self._record_upsert(result)
        self._update_gauges()
        return result

    def _bucket_append(self, part: int, table: int, band: int, row: int) -> None:
        key = (part, table, band)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [row]
        else:
            if isinstance(bucket, np.ndarray):
                bucket = bucket.tolist()
                self._buckets[key] = bucket
            bucket.append(row)

    def evict(self, video_id: str) -> bool:
        """Drop a video from the index (bucket entries stale out lazily)."""
        with self._lock:
            row = self._row_of.get(video_id)
            if row is None or not self._alive[row]:
                return False
            self._alive[row] = False
            self._n_alive -= 1
            self._stale += self.tables
            if self._stale > max(1024, self._n_alive):
                self._compact()
        self._update_gauges()
        return True

    def _compact(self) -> None:
        """Rebuild the inverted lists from current signatures (drops stale)."""
        rows = np.flatnonzero(self._alive[: len(self._ids)]).astype(np.int64)
        self._buckets = {}
        self._fill_buckets(
            rows, self._bands[rows], self._part_of_row[rows]
        )
        self._stale = 0

    def _record_upsert(self, result: str) -> None:
        if self._upsert_ctr is not None:
            self._upsert_ctr.labels(result=result).inc()

    def _update_gauges(self) -> None:
        if self._indexed_gauge is not None:
            self._indexed_gauge.set(self._n_alive)
        if self._stale_gauge is not None:
            self._stale_gauge.set(self._stale)

    # ------------------------------------------------------------------
    # Demographic partition affinity
    # ------------------------------------------------------------------

    def observe_group(self, group: str, video_id: str) -> None:
        """Record that ``group`` engaged with ``video_id``'s partition."""
        if group == GLOBAL_GROUP:
            return
        with self._lock:
            pid = self._part_id(self._partition_name(video_id))
            self._group_parts.setdefault(group, set()).add(pid)

    def allowed_partitions(self, group: str) -> frozenset[str] | None:
        """Partitions compatible with a demographic group.

        ``None`` means "no pruning" — the global group, unknown groups and
        groups with no observed history all probe every partition (pruning
        must never make a cold group's results *worse* than post-filtering).
        """
        if group == GLOBAL_GROUP:
            return None
        with self._lock:
            parts = self._group_parts.get(group)
            if not parts:
                return None
            return frozenset(self._part_names[p] for p in parts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._n_alive

    def __contains__(self, video_id: str) -> bool:
        with self._lock:
            row = self._row_of.get(video_id)
            return row is not None and bool(self._alive[row])

    def indexed_ids(self) -> list[str]:
        """Ids currently indexed, sorted."""
        with self._lock:
            rows = np.flatnonzero(self._alive[: len(self._ids)])
            return sorted(self._ids[int(r)] for r in rows)

    #: Lowest-margin bits per band eligible for directed perturbation.
    _DIRECTED_BITS = 12

    def _directed_sequence(
        self, bands: np.ndarray, margins: np.ndarray
    ) -> list[tuple[int, int]]:
        """Cost-ordered ``(table, band)`` probe sequence for one query.

        The exact bucket of every table comes first (cost 0); perturbed
        buckets follow in ascending cost, where flipping a bit costs its
        projection margin ``|proj|`` — bits that barely cleared a
        hyperplane are the likely hash mistakes (query-directed multi-probe,
        Lv et al. 2007).  Perturbations flip up to ``probe_radius`` of the
        ``_DIRECTED_BITS`` lowest-margin bits per band.
        """
        tables = self.tables
        seq = [(t, int(bands[t])) for t in range(tables)]
        if not self._probe_combos:
            return seq
        depth = min(self.band_bits, self._DIRECTED_BITS)
        m = margins.reshape(tables, self.band_bits)
        order = np.argsort(m, axis=1)[:, :depth]          # (T, depth)
        costs = np.take_along_axis(m, order, axis=1)      # (T, depth)
        bitmasks = np.uint64(1) << order.astype(np.uint64)
        cost_parts, band_parts, table_parts = [], [], []
        for combos in self._probe_combos:                 # (K, radius)
            cost = costs[:, combos].sum(axis=2)           # (T, K)
            mask = np.bitwise_or.reduce(
                bitmasks[:, combos], axis=2
            )
            band = bands[:, None] ^ mask
            cost_parts.append(cost.ravel())
            band_parts.append(band.ravel())
            table_parts.append(
                np.repeat(np.arange(tables), cost.shape[1])
            )
        cost = np.concatenate(cost_parts)
        band = np.concatenate(band_parts)
        table = np.concatenate(table_parts)
        by_cost = np.argsort(cost, kind="stable")
        seq.extend(
            zip(table[by_cost].tolist(), band[by_cost].tolist())
        )
        return seq

    def probe_rows(
        self,
        bands: np.ndarray,
        need: int,
        allowed_partitions: Iterable[str] | None = None,
        margins: np.ndarray | None = None,
    ) -> np.ndarray:
        """Deduplicated, row-sorted candidate rows for a banded query.

        With ``margins`` (the query's ``|projection|`` per hyperplane) the
        probe sequence is query-directed: cheapest perturbations first,
        stopping as soon as ``need`` rows (pre-dedup) are gathered.
        Without margins it falls back to blind Hamming-radius escalation,
        completing each radius before checking the target (the full-radius
        sweep keeps blind probing order-independent).  Restricting
        ``allowed_partitions`` prunes the probe set — fewer buckets
        touched, smaller shortlist.
        """
        with self._lock:
            if allowed_partitions is None:
                parts: list[int] = list(range(len(self._part_names)))
            else:
                parts = [
                    self._part_ids[name]
                    for name in allowed_partitions
                    if name in self._part_ids
                ]
            chunks: list[object] = []
            gathered = 0
            probed = 0
            buckets = self._buckets
            if margins is not None:
                for t, band in self._directed_sequence(bands, margins):
                    for p in parts:
                        probed += 1
                        bucket = buckets.get((p, t, band))
                        if bucket is not None:
                            chunks.append(bucket)
                            gathered += len(bucket)
                    if gathered >= need:
                        break
            else:
                for radius_masks in self._flip_masks:
                    for mask in radius_masks:
                        umask = np.uint64(mask)
                        for t in range(self.tables):
                            band = int(bands[t] ^ umask)
                            for p in parts:
                                probed += 1
                                bucket = buckets.get((p, t, band))
                                if bucket is not None:
                                    chunks.append(bucket)
                                    gathered += len(bucket)
                    if gathered >= need:
                        break
            if self._probes is not None:
                self._probes.inc(probed)
            if not chunks:
                return np.empty(0, dtype=np.int64)
            rows = np.concatenate(
                [np.asarray(c, dtype=np.int64) for c in chunks]
            )
            rows = np.unique(rows)  # dedup + deterministic (row-sorted)
            rows = rows[self._alive[rows]]
            cap = self.config.shortlist_cap
            if len(rows) > cap:
                rows = rows[:cap]
            return rows

    def _query_rows(
        self,
        proj: np.ndarray,
        n: int,
        allowed_partitions: Iterable[str] | None,
        kind: str,
    ) -> np.ndarray:
        bands = self.family.pack_bands((proj > 0.0)[None, :])[0]
        need = max(self.config.min_shortlist, self.config.oversample * n)
        rows = self.probe_rows(
            bands, need, allowed_partitions, margins=np.abs(proj)
        )
        if self._queries is not None:
            self._queries.labels(kind=kind).inc()
        if self._shortlist_hist is not None:
            self._shortlist_hist.observe(len(rows))
        return rows

    def _shortlist_ids(
        self,
        proj: np.ndarray,
        n: int,
        exclude: set[str] | None,
        allowed_partitions: Iterable[str] | None,
        kind: str,
    ) -> list[str]:
        rows = self._query_rows(proj, n, allowed_partitions, kind)
        ids = self._ids_arr[rows].tolist()
        if exclude:
            ids = [vid for vid in ids if vid not in exclude]
        ids.sort()
        return ids

    def query_user_rows(
        self,
        x_u: np.ndarray,
        n: int,
        allowed_partitions: Iterable[str] | None = None,
    ) -> np.ndarray:
        """Shortlist as sorted *row* indices for a user query.

        The zero-materialisation variant of :meth:`query_user` for re-rank
        loops that hold a row-aligned factor matrix (e.g. the one the index
        was bulk-loaded from): re-rank by slicing rows, then map only the
        winning rows through :meth:`ids_for_rows`.  Rows are stable until
        the next :meth:`bulk_load`.
        """
        return self._query_rows(
            self._user_projection(x_u), n, allowed_partitions, "user"
        )

    def query_item_rows(
        self,
        y: np.ndarray,
        n: int,
        allowed_partitions: Iterable[str] | None = None,
    ) -> np.ndarray:
        """Row-index variant of :meth:`query_item`."""
        return self._query_rows(
            self._item_projection(y), n, allowed_partitions, "item"
        )

    def ids_for_rows(self, rows: np.ndarray) -> list[str]:
        """Video ids of index rows (as returned by the ``*_rows`` queries)."""
        with self._lock:
            return self._ids_arr[np.asarray(rows, dtype=np.int64)].tolist()

    def query_user(
        self,
        x_u: np.ndarray,
        n: int,
        exclude: set[str] | None = None,
        allowed_partitions: Iterable[str] | None = None,
    ) -> list[str]:
        """Id-sorted shortlist for a user vector (MIPS over Eq. 2)."""
        return self._shortlist_ids(
            self._user_projection(x_u), n, exclude, allowed_partitions, "user"
        )

    def query_item(
        self,
        y: np.ndarray,
        n: int,
        exclude: set[str] | None = None,
        allowed_partitions: Iterable[str] | None = None,
    ) -> list[str]:
        """Id-sorted shortlist of items similar to a seed item vector."""
        return self._shortlist_ids(
            self._item_projection(y), n, exclude, allowed_partitions, "item"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def bucket_occupancy(self) -> dict:
        """Occupancy histogram of the inverted lists (stale entries included)."""
        with self._lock:
            sizes = np.array(
                [len(b) for b in self._buckets.values()], dtype=np.int64
            )
        if not len(sizes):
            return {"buckets": 0, "mean": 0.0, "p50": 0, "p90": 0, "max": 0}
        return {
            "buckets": int(len(sizes)),
            "mean": float(sizes.mean()),
            "p50": int(np.percentile(sizes, 50)),
            "p90": int(np.percentile(sizes, 90)),
            "max": int(sizes.max()),
        }

    def stats(self) -> dict:
        with self._lock:
            return {
                "indexed": self._n_alive,
                "interned": len(self._ids),
                "tables": self.tables,
                "band_bits": self.band_bits,
                "partitions": len(self._part_names),
                "stale_entries": self._stale,
                "bias_scale": self._bias_scale,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AnnIndex(f={self.f}, tables={self.tables}, "
            f"band_bits={self.band_bits}, indexed={len(self)})"
        )
