"""The paper's core contribution: online adjustable MF + real-time top-N.

Module map (paper section in parentheses):

* :mod:`~repro.core.actions` — action weighting (§3.2, Table 1, Eq. 6)
* :mod:`~repro.core.feedback` — binary rating + confidence (§3.2, Eq. 7)
* :mod:`~repro.core.mf` — biased matrix factorization (§3.1, Eqs. 2-5)
* :mod:`~repro.core.online` — Algorithm 1, adjustable updates (§3.3, Eq. 8)
* :mod:`~repro.core.variants` — Binary/Conf/Combine models (§6.1.2)
* :mod:`~repro.core.similarity` — similarity factors + fusion (§4.2)
* :mod:`~repro.core.simtable` — similar-video tables (§4.2)
* :mod:`~repro.core.history` — user histories (§5.1)
* :mod:`~repro.core.candidates` — candidate selection (§4.1)
* :mod:`~repro.core.recommender` — the Figure 1 pipeline (§4.1)
* :mod:`~repro.core.demographic` — DB algorithm + filtering (§5.2.1)
* :mod:`~repro.core.grouped` — demographic training (§5.2.2)
"""

from .actions import LinearPlaytimeWeigher, LogPlaytimeWeigher, view_rate
from .annindex import AnnIndex, RandomHyperplanes, auto_band_bits, top_n_by_score
from .candidates import Candidate, CandidateSelector
from .demographic import (
    DemographicRecommender,
    HotVideoTracker,
    merge_recommendations,
)
from .feedback import Feedback, RatingMode, extract_feedback
from .grouped import GroupedRecommender
from .history import UserHistoryStore
from .arena import FactorArena
from .mf import MFModel, MFUpdate
from .online import OnlineTrainer, TrainerStats
from .shm_arena import SharedFactorArena, SharedModelState
from .recommender import RealtimeRecommender, Recommendation
from .reservoir import Reservoir, ReservoirTrainer
from .similarity import (
    SimilarityScorer,
    cf_similarity,
    damping,
    fuse,
    type_similarity,
)
from .simtable import SimilarVideoTable, generate_pairs
from .variants import (
    ALL_VARIANTS,
    BINARY_MODEL,
    COMBINE_MODEL,
    CONF_MODEL,
    ModelVariant,
    variant_by_name,
)

__all__ = [
    "AnnIndex",
    "RandomHyperplanes",
    "auto_band_bits",
    "top_n_by_score",
    "LogPlaytimeWeigher",
    "LinearPlaytimeWeigher",
    "view_rate",
    "Feedback",
    "RatingMode",
    "extract_feedback",
    "FactorArena",
    "SharedFactorArena",
    "SharedModelState",
    "MFModel",
    "MFUpdate",
    "OnlineTrainer",
    "TrainerStats",
    "ModelVariant",
    "BINARY_MODEL",
    "CONF_MODEL",
    "COMBINE_MODEL",
    "ALL_VARIANTS",
    "variant_by_name",
    "SimilarityScorer",
    "cf_similarity",
    "type_similarity",
    "damping",
    "fuse",
    "SimilarVideoTable",
    "generate_pairs",
    "UserHistoryStore",
    "Candidate",
    "CandidateSelector",
    "RealtimeRecommender",
    "Recommendation",
    "Reservoir",
    "ReservoirTrainer",
    "HotVideoTracker",
    "DemographicRecommender",
    "merge_recommendations",
    "GroupedRecommender",
]
