"""Video-pair similarity factors and their fusion (paper §4.2, Eqs. 9-12).

Three factors contribute to the relevance of a video pair:

* **CF similarity** (Eq. 9) — the inner product of the MF latent vectors;
* **type similarity** (Eq. 10) — 1 if the two videos share a fine-grained
  type, else 0;
* **time factor** (Eq. 11) — a damping ``d = 2^(-dt/xi)`` that forgets
  stale similarities as their last supporting user action recedes.

The overall relevance (Eq. 12) is ``sim = d * ((1-beta)*s1 + beta*s2)``.
"""

from __future__ import annotations

import numpy as np

from ..config import SimilarityConfig
from ..data.schema import Video


def cf_similarity(y_i: np.ndarray, y_j: np.ndarray) -> float:
    """Eq. 9: latent-factor similarity ``s1 = y_i . y_j``."""
    return float(np.dot(y_i, y_j))


def type_similarity(video_i: Video, video_j: Video) -> float:
    """Eq. 10: 1 when the fine-grained types match, else 0."""
    return 1.0 if video_i.kind == video_j.kind else 0.0


def damping(elapsed: float, xi: float) -> float:
    """Eq. 11: ``d = 2^(-dt/xi)`` — halves every ``xi`` seconds.

    ``elapsed`` is the time since the similarity's last update; negative
    values (clock skew) are clamped to zero so damping never exceeds 1.
    """
    if xi <= 0:
        raise ValueError(f"damping half-life xi must be positive, got {xi}")
    return float(2.0 ** (-max(0.0, elapsed) / xi))


def fuse(s1: float, s2: float, beta: float) -> float:
    """The convex combination ``(1-beta)*s1 + beta*s2`` inside Eq. 12."""
    if not 0 <= beta <= 1:
        raise ValueError(f"fusion weight beta must be in [0, 1], got {beta}")
    return (1.0 - beta) * s1 + beta * s2


class SimilarityScorer:
    """Computes the fused, damped relevance of Eq. 12 for video pairs.

    The scorer is stateless; the per-pair update timestamps live in the
    :class:`~repro.core.simtable.SimilarVideoTable` that calls it.
    """

    def __init__(self, config: SimilarityConfig | None = None) -> None:
        self.config = config or SimilarityConfig()

    def raw_relevance(
        self,
        video_i: Video,
        y_i: np.ndarray,
        video_j: Video,
        y_j: np.ndarray,
    ) -> float:
        """The undamped fusion ``(1-beta)*s1 + beta*s2`` at update time."""
        s1 = cf_similarity(y_i, y_j)
        s2 = type_similarity(video_i, video_j)
        return fuse(s1, s2, self.config.beta)

    def damped(self, raw: float, elapsed: float) -> float:
        """Apply Eq. 11's decay to a stored raw relevance."""
        return raw * damping(elapsed, self.config.xi)

    def relevance(
        self,
        video_i: Video,
        y_i: np.ndarray,
        video_j: Video,
        y_j: np.ndarray,
        elapsed: float = 0.0,
    ) -> float:
        """Full Eq. 12 in one call (used when scoring a fresh pair)."""
        return self.damped(self.raw_relevance(video_i, y_i, video_j, y_j), elapsed)
