"""Implicit-feedback action weighting (paper §3.2, Table 1, Eq. 6).

Different user actions represent different degrees of interest; the system
assigns each action a *weight* interpreted downstream as the confidence of a
binary rating.  Impressions weigh 0 (display is not evidence); clicks, plays
and social actions carry fixed weights; PlayTime actions are weighted by the
percentile view time via ``w = a + b * log10(vrate)``, with view rates below
the 0.1 floor treated like a bare Play — the paper deems those "inefficient"
signals.

``LogPlaytimeWeigher`` is the paper's choice; ``LinearPlaytimeWeigher``
implements the rejected alternative ``w = a + b * vrate`` that §3.2 reports
testing, kept for the ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol

from ..config import ActionWeightConfig
from ..data.schema import ActionType, UserAction, Video
from ..errors import DataError


class ActionWeigher(Protocol):
    """Maps an action (plus its video, for durations) to a weight ``w >= 0``."""

    def weight(self, action: UserAction, video: Video | None = None) -> float:
        """Return the confidence weight ``w_ui`` of this action."""
        ...  # pragma: no cover - protocol body


def view_rate(action: UserAction, video: Video | None) -> float:
    """The view rate ``vrate = t_ui / t_i`` of a PLAYTIME action, in (0, 1].

    The paper divides viewing time by the full video length "to eliminate
    the variation on time length of videos of various types".  Watching
    beyond the nominal duration (replays) clamps to 1.
    """
    if action.action is not ActionType.PLAYTIME:
        raise DataError(f"view_rate is only defined for PLAYTIME, got {action.action}")
    if video is None:
        raise DataError(
            f"PLAYTIME weighting needs the video duration (video {action.video_id!r})"
        )
    return min(1.0, action.view_time / video.duration)


class _BaseWeigher:
    """Shared fixed-weight table; subclasses define the PlayTime curve."""

    def __init__(self, config: ActionWeightConfig | None = None) -> None:
        self.config = config or ActionWeightConfig()
        self._fixed: Mapping[ActionType, float] = {
            ActionType.IMPRESS: self.config.impress,
            ActionType.CLICK: self.config.click,
            ActionType.PLAY: self.config.play,
            ActionType.COMMENT: self.config.comment,
            ActionType.LIKE: self.config.like,
            ActionType.SHARE: self.config.share,
        }

    def weight(self, action: UserAction, video: Video | None = None) -> float:
        if action.action is ActionType.PLAYTIME:
            return self._playtime_weight(view_rate(action, video))
        return self._fixed[action.action]

    def _playtime_weight(self, vrate: float) -> float:
        raise NotImplementedError


class LogPlaytimeWeigher(_BaseWeigher):
    """Eq. 6: ``w = a + b * log10(vrate)``, floored at ``vrate = 0.1``.

    A full view scores ``a``; the floor view rate scores ``a - b`` (with the
    defaults, the ``[1.5, 2.5]`` span of Table 1).  View rates below the
    floor are "inefficient" and fall back to the Play weight.
    """

    def _playtime_weight(self, vrate: float) -> float:
        cfg = self.config
        if vrate < cfg.vrate_floor:
            return cfg.play
        return cfg.a + cfg.b * math.log10(vrate)


class LinearPlaytimeWeigher(_BaseWeigher):
    """The alternative ``w = a + b * vrate`` the paper tested and rejected.

    Scaled so that the output range matches the log weigher's
    ``[a - b, a]`` span over ``vrate`` in ``[floor, 1]``, making the two
    directly comparable in the ablation.
    """

    def _playtime_weight(self, vrate: float) -> float:
        cfg = self.config
        if vrate < cfg.vrate_floor:
            return cfg.play
        scaled = (vrate - cfg.vrate_floor) / (1.0 - cfg.vrate_floor)
        return (cfg.a - cfg.b) + cfg.b * scaled
