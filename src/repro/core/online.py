"""Adjustable online updating strategy — Algorithm 1 (paper §3.3).

The model is updated at each new user action in a single step, no
iterations.  The influence of an action is proportional to its confidence:
the learning rate is ``eta_ui = eta0 + alpha * w_ui`` (Eq. 8), so
low-confidence actions (likely noise) barely move the model while
high-confidence ones (long watches, comments) move it decisively.  Actions
with ``r_ui = 0`` (impressions) never update the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol

from ..config import OnlineConfig
from ..data.schema import ActionType, UserAction, Video
from ..errors import DataError
from .actions import ActionWeigher, LogPlaytimeWeigher
from .feedback import Feedback, extract_feedback
from .mf import MFModel, MFUpdate
from .variants import COMBINE_MODEL, ModelVariant

if TYPE_CHECKING:
    from ..obs import Observability


class ActionLog(Protocol):
    """Anything that can durably record an action before it is applied.

    Structurally matches :class:`repro.reliability.ActionWAL` without
    importing it — core stays free of the reliability package.
    """

    def append(self, action: UserAction) -> int:
        """Persist one action; return its log position."""
        ...  # pragma: no cover - protocol body


@dataclass(slots=True)
class TrainerStats:
    """Counters over a trainer's lifetime."""

    seen: int = 0
    updated: int = 0
    skipped_zero: int = 0
    skipped_invalid: int = 0
    abs_error_total: float = field(default=0.0)

    @property
    def mean_abs_error(self) -> float:
        return self.abs_error_total / self.updated if self.updated else 0.0


class OnlineTrainer:
    """Drives an :class:`~repro.core.mf.MFModel` with a stream of actions.

    ``videos`` supplies durations for PlayTime view rates; PLAYTIME actions
    on unknown videos are counted as invalid and skipped, mirroring the
    spout's "filters the unqualified data tuples" step (§5.1).
    """

    def __init__(
        self,
        model: MFModel,
        videos: Mapping[str, Video] | None = None,
        weigher: ActionWeigher | None = None,
        variant: ModelVariant = COMBINE_MODEL,
        config: OnlineConfig | None = None,
        wal: ActionLog | None = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.model = model
        self.videos = videos or {}
        self.weigher = weigher or LogPlaytimeWeigher()
        self.variant = variant
        self.config = config or OnlineConfig()
        self.wal = wal
        self.stats = TrainerStats()
        self._tracer = obs.tracer if obs is not None else None
        self._actions_counter = (
            obs.registry.counter(
                "trainer_actions_total",
                "Actions processed by the online trainer, by result",
                labelnames=("result",),
            )
            if obs is not None
            else None
        )

    def _count(self, result: str) -> None:
        if self._actions_counter is not None:
            self._actions_counter.labels(result=result).inc()

    def learning_rate(self, confidence: float) -> float:
        """Eq. 8, clamped at ``max_eta`` for stability."""
        if self.variant.adjustable:
            eta = self.config.eta0 + self.config.alpha * confidence
        else:
            eta = self.config.eta0
        return min(eta, self.config.max_eta)

    def feedback_for(self, action: UserAction) -> Feedback:
        """The ``(r_ui, w_ui)`` this trainer's variant assigns to an action."""
        video = self.videos.get(action.video_id)
        return extract_feedback(
            action, self.weigher, self.variant.rating_mode, video
        )

    def process(self, action: UserAction) -> MFUpdate | None:
        """Handle one action; return the applied update, or ``None``.

        ``None`` means the action carried no positive evidence (an
        impression) or was invalid (PLAYTIME without a known duration).
        Either way ``mu`` bookkeeping still happens for valid actions.

        With a write-ahead log attached the action is logged *before* any
        state changes, so crash recovery can replay it
        (:mod:`repro.reliability.replay`).
        """
        if self._tracer is not None and self._tracer.current_span() is not None:
            with self._tracer.span("trainer.process"):
                return self._process(action)
        return self._process(action)

    def _process(self, action: UserAction) -> MFUpdate | None:
        if self.wal is not None:
            self.wal.append(action)
        self.stats.seen += 1
        try:
            feedback = self.feedback_for(action)
        except DataError:
            self.stats.skipped_invalid += 1
            self._count("skipped_invalid")
            return None
        self.model.observe_rating(feedback.rating)
        if not feedback.is_positive:
            self.stats.skipped_zero += 1
            self._count("skipped_zero")
            return None
        eta = self.learning_rate(feedback.confidence)
        update = self.model.sgd_step(
            action.user_id, action.video_id, feedback.rating, eta
        )
        self.stats.updated += 1
        self.stats.abs_error_total += abs(update.error)
        self._count("updated")
        return update

    def process_batch(self, actions: list[UserAction]) -> list[MFUpdate | None]:
        """Process a micro-batch of actions with batched store traffic.

        Semantically identical to calling :meth:`process` per action in
        order — same WAL appends, same stats, same counters, same model
        parameters (the SGD steps replay sequentially through a
        :class:`~repro.core.mf.MFBatchSession` overlay) — but vectors,
        biases and ``mu`` are read once up front and written once at the
        end.  A batch of one is exactly the sequential code path.
        """
        if not actions:
            return []
        if len(actions) == 1:
            return [self.process(actions[0])]
        for action in actions:
            if self.wal is not None:
                self.wal.append(action)
            self.stats.seen += 1
        session = self.model.batch_session(
            (action.user_id for action in actions),
            (action.video_id for action in actions),
        )
        results: list[MFUpdate | None] = []
        for action in actions:
            try:
                feedback = self.feedback_for(action)
            except DataError:
                self.stats.skipped_invalid += 1
                self._count("skipped_invalid")
                results.append(None)
                continue
            session.observe_rating(feedback.rating)
            if not feedback.is_positive:
                self.stats.skipped_zero += 1
                self._count("skipped_zero")
                results.append(None)
                continue
            eta = self.learning_rate(feedback.confidence)
            update = session.sgd_step(
                action.user_id, action.video_id, feedback.rating, eta
            )
            self.stats.updated += 1
            self.stats.abs_error_total += abs(update.error)
            self._count("updated")
            results.append(update)
        session.commit()
        return results

    def process_stream(self, actions: Iterable[UserAction]) -> int:
        """Process a whole stream in order; return the number of updates."""
        before = self.stats.updated
        for action in actions:
            self.process(action)
        return self.stats.updated - before

    def is_playtime_capable(self, action: UserAction) -> bool:
        """Whether this trainer can weight ``action`` (duration known)."""
        return (
            action.action is not ActionType.PLAYTIME
            or action.video_id in self.videos
        )
