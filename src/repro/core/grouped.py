"""Demographic training (paper §5.2.2): one model per demographic group.

The recommendation algorithm runs *within* each demographic user group:
every group gets its own MF model, similar-video tables and hot lists, so a
video has one vector per group and pair similarities are computed from
group-local co-watching.  The group sub-matrices are denser than the global
matrix (Table 4) and capture group-specific rating patterns — the source of
the ~10-20 % improvement in Figure 3.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..clock import Clock
from ..config import ReproConfig
from ..data.schema import GLOBAL_GROUP, User, UserAction, Video
from .recommender import RealtimeRecommender, Recommendation
from .variants import COMBINE_MODEL, ModelVariant


class GroupedRecommender:
    """Routes actions and requests to per-demographic-group recommenders.

    Group recommenders are created lazily on first contact.  Users whose
    group is unknown (unregistered or absent from ``users``) route to the
    global group's recommender, so the system always has an answer.
    """

    def __init__(
        self,
        videos: Mapping[str, Video],
        users: Mapping[str, User],
        config: ReproConfig | None = None,
        variant: ModelVariant = COMBINE_MODEL,
        clock: Clock | None = None,
        enable_demographic: bool = False,
    ) -> None:
        self.videos = videos
        self.users = users
        self.config = config or ReproConfig()
        self.variant = variant
        self.clock = clock
        self.enable_demographic = enable_demographic
        self._groups: dict[str, RealtimeRecommender] = {}

    def group_for(self, user_id: str) -> str:
        user = self.users.get(user_id)
        return user.demographic_group if user else GLOBAL_GROUP

    def recommender_for_group(self, group: str) -> RealtimeRecommender:
        """The group's recommender, created on first use."""
        if group not in self._groups:
            self._groups[group] = RealtimeRecommender(
                self.videos,
                users=self.users,
                config=self.config,
                variant=self.variant,
                clock=self.clock,
                enable_demographic=self.enable_demographic,
            )
        return self._groups[group]

    def recommender_for_user(self, user_id: str) -> RealtimeRecommender:
        return self.recommender_for_group(self.group_for(user_id))

    def observe(self, action: UserAction) -> None:
        """Route one action to its user's group model."""
        self.recommender_for_user(action.user_id).observe(action)

    def observe_stream(self, actions: Iterable[UserAction]) -> int:
        count = 0
        for action in actions:
            self.observe(action)
            count += 1
        return count

    def recommend(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[Recommendation]:
        """Serve a request from the user's group model."""
        return self.recommender_for_user(user_id).recommend(
            user_id, current_video, n=n, now=now
        )

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Like :meth:`recommend` but returning just the video ids."""
        return [
            r.video_id
            for r in self.recommend(user_id, current_video, n=n, now=now)
        ]

    def groups(self) -> list[str]:
        """Groups that have received at least one action or request."""
        return list(self._groups)
