"""Contiguous factor storage for the MF model.

The KV layout stores one entry per vector — ideal for the paper's
distributed storage (§5.1) where any worker addresses any key, but every
``predict_many`` then pays one dict lookup *and* one small-array dispatch
per candidate.  A :class:`FactorArena` instead interns entity ids to rows
of one growable ``(capacity, f)`` float64 matrix (plus a parallel bias
vector), so batch reads become numpy gathers and scoring a candidate set
is a single matmul.

One arena holds one entity kind (users or videos).  It lives as a single
value inside the model's KV namespace, which keeps the rest of the system
honest: checkpoints capture it through the ordinary
``snapshot_entries``/``restore_entries`` path (one entry instead of
thousands, no per-key loop), fault injection and instrumentation wrappers
see every arena access as a normal store operation, and a recovered store
drops in transparently.

Thread safety: all methods take the arena's own lock, and pickling goes
through :meth:`__getstate__`, which copies the compacted arrays under that
lock — a checkpoint taken while a writer is mid-batch sees a consistent
row set.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

import numpy as np


class FactorArena:
    """Interned ``id -> (vector row, bias)`` storage over contiguous arrays.

    Rows are assigned in first-touch order and never move; growth doubles
    the capacity and copies (amortised O(1) per insert).  An id may carry
    a bias without a vector (the KV layout allows the same); membership
    queries and counts follow the *vector*, matching the per-key layout
    where ``has_user`` means "has a learned ``x_u``".
    """

    def __init__(self, f: int, initial_capacity: int = 64) -> None:
        if f < 1:
            raise ValueError(f"factor dimensionality must be >= 1, got {f}")
        if initial_capacity < 1:
            raise ValueError(
                f"initial_capacity must be >= 1, got {initial_capacity}"
            )
        self.f = f
        self._rows: dict[str, int] = {}
        self._ids: list[str] = []
        self._vecs = np.zeros((initial_capacity, f), dtype=np.float64)
        self._biases = np.zeros(initial_capacity, dtype=np.float64)
        self._has_vec = np.zeros(initial_capacity, dtype=bool)
        self._n_vec = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _grow(self, need: int) -> None:
        capacity = len(self._biases)
        if need <= capacity:
            return
        new_capacity = max(capacity * 2, need)
        for name in ("_vecs", "_biases", "_has_vec"):
            old = getattr(self, name)
            shape = (new_capacity,) + old.shape[1:]
            fresh = np.zeros(shape, dtype=old.dtype)
            fresh[: len(self._ids)] = old[: len(self._ids)]
            setattr(self, name, fresh)

    def _intern(self, entity_id: str) -> int:
        row = self._rows.get(entity_id)
        if row is None:
            row = len(self._ids)
            self._grow(row + 1)
            self._rows[entity_id] = row
            self._ids.append(entity_id)
        return row

    def _check_dim(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.f,):
            raise ValueError(
                f"vector shape {vector.shape} does not match arena f={self.f}"
            )
        return vector

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of entities with a learned vector."""
        with self._lock:
            return self._n_vec

    def __contains__(self, entity_id: str) -> bool:
        with self._lock:
            row = self._rows.get(entity_id)
            return row is not None and bool(self._has_vec[row])

    def ids(self) -> list[str]:
        """Ids with a vector, in first-touch order."""
        with self._lock:
            return [
                entity_id
                for entity_id in self._ids
                if self._has_vec[self._rows[entity_id]]
            ]

    def vector(self, entity_id: str) -> np.ndarray | None:
        """A copy of the entity's vector, or ``None`` when unlearned.

        Copies keep the KV layout's read semantics: a vector handed out
        earlier does not change under the caller when training continues.
        """
        with self._lock:
            row = self._rows.get(entity_id)
            if row is None or not self._has_vec[row]:
                return None
            return self._vecs[row].copy()

    def bias(self, entity_id: str, default: float = 0.0) -> float:
        with self._lock:
            row = self._rows.get(entity_id)
            return default if row is None else float(self._biases[row])

    def vectors_many(self, entity_ids: list[str]) -> list[np.ndarray | None]:
        """Per-id vector copies (``None`` for unlearned), one lock pass."""
        with self._lock:
            out: list[np.ndarray | None] = []
            for entity_id in entity_ids:
                row = self._rows.get(entity_id)
                if row is None or not self._has_vec[row]:
                    out.append(None)
                else:
                    out.append(self._vecs[row].copy())
            return out

    def vectors_matrix(self, entity_ids: list[str]) -> np.ndarray:
        """An ``(n, f)`` gather with zero rows for unlearned ids."""
        n = len(entity_ids)
        with self._lock:
            idx = np.empty(n, dtype=np.int64)
            for position, entity_id in enumerate(entity_ids):
                row = self._rows.get(entity_id, -1)
                if row >= 0 and not self._has_vec[row]:
                    row = -1
                idx[position] = row
            out = self._vecs[np.where(idx >= 0, idx, 0)]
            out[idx < 0] = 0.0
            return out

    def biases_array(self, entity_ids: list[str]) -> np.ndarray:
        """An ``(n,)`` gather of biases with 0.0 for unknown ids."""
        n = len(entity_ids)
        with self._lock:
            idx = np.fromiter(
                (self._rows.get(entity_id, -1) for entity_id in entity_ids),
                dtype=np.int64,
                count=n,
            )
            out = self._biases[np.where(idx >= 0, idx, 0)]
            out[idx < 0] = 0.0
            return out

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def set_vector(self, entity_id: str, vector: np.ndarray) -> None:
        vector = self._check_dim(vector)
        with self._lock:
            row = self._intern(entity_id)
            self._vecs[row] = vector
            if not self._has_vec[row]:
                self._has_vec[row] = True
                self._n_vec += 1

    def set_bias(self, entity_id: str, bias: float) -> None:
        with self._lock:
            row = self._intern(entity_id)
            self._biases[row] = bias

    def put(self, entity_id: str, vector: np.ndarray, bias: float) -> None:
        """Write vector and bias together (the common SGD-commit shape)."""
        vector = self._check_dim(vector)
        with self._lock:
            row = self._intern(entity_id)
            self._vecs[row] = vector
            self._biases[row] = bias
            if not self._has_vec[row]:
                self._has_vec[row] = True
                self._n_vec += 1

    def put_many(
        self, items: Iterable[tuple[str, np.ndarray, float]]
    ) -> None:
        """Apply many ``(id, vector, bias)`` writes under one lock pass."""
        with self._lock:
            for entity_id, vector, bias in items:
                vector = self._check_dim(vector)
                row = self._intern(entity_id)
                self._vecs[row] = vector
                self._biases[row] = bias
                if not self._has_vec[row]:
                    self._has_vec[row] = True
                    self._n_vec += 1

    def setdefault_vector(
        self, entity_id: str, factory
    ) -> np.ndarray:
        """Return the entity's vector, installing ``factory()`` if unlearned."""
        with self._lock:
            row = self._intern(entity_id)
            if not self._has_vec[row]:
                self._vecs[row] = self._check_dim(factory())
                self._has_vec[row] = True
                self._n_vec += 1
            return self._vecs[row].copy()

    def delete(self, entity_id: str) -> bool:
        """Forget an entity's vector (the row itself is retained)."""
        with self._lock:
            row = self._rows.get(entity_id)
            if row is None or not self._has_vec[row]:
                return False
            self._has_vec[row] = False
            self._vecs[row] = 0.0
            self._biases[row] = 0.0
            self._n_vec -= 1
            return True

    # ------------------------------------------------------------------
    # Bulk export / import (save, load, migration)
    # ------------------------------------------------------------------

    def export_rows(
        self,
    ) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray]:
        """Compacted copies of ``(ids, vectors, biases, has_vector)``.

        Row-aligned over *all* interned ids (bias-only rows included), so
        a consumer can reconstruct the arena exactly.
        """
        with self._lock:
            n = len(self._ids)
            return (
                list(self._ids),
                self._vecs[:n].copy(),
                self._biases[:n].copy(),
                self._has_vec[:n].copy(),
            )

    def dense_rows(
        self,
    ) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(ids, vectors, biases, has_vector)`` row views.

        Unlike :meth:`export_rows` the arrays are *views* into the arena's
        backing storage — no copy, which is what lets an ANN index bulk
        build over a million-row arena without doubling its memory.  The
        views are read-only snapshots in the structural sense only: rows
        never move and existing rows are not reallocated by growth (growth
        swaps in a new backing array, leaving old views intact), but a
        concurrent writer may still update row *contents* in place.  Use
        for bulk read paths that tolerate torn single rows (index builds),
        not for checkpoints.
        """
        with self._lock:
            n = len(self._ids)
            return (
                list(self._ids),
                self._vecs[:n],
                self._biases[:n],
                self._has_vec[:n],
            )

    def items(self) -> Iterator[tuple[str, np.ndarray, float]]:
        """Iterate ``(id, vector copy, bias)`` for learned ids."""
        ids, vecs, biases, has_vec = self.export_rows()
        for row, entity_id in enumerate(ids):
            if has_vec[row]:
                yield entity_id, vecs[row].copy(), float(biases[row])

    # ------------------------------------------------------------------
    # Pickle support (checkpointing)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        ids, vecs, biases, has_vec = self.export_rows()
        return {
            "f": self.f,
            "ids": ids,
            "vecs": vecs,
            "biases": biases,
            "has_vec": has_vec,
        }

    def __setstate__(self, state: dict) -> None:
        self.f = state["f"]
        self._ids = list(state["ids"])
        self._rows = {
            entity_id: row for row, entity_id in enumerate(self._ids)
        }
        n = max(len(self._ids), 1)
        self._vecs = np.zeros((n, self.f), dtype=np.float64)
        self._biases = np.zeros(n, dtype=np.float64)
        self._has_vec = np.zeros(n, dtype=bool)
        count = len(self._ids)
        self._vecs[:count] = state["vecs"]
        self._biases[:count] = state["biases"]
        self._has_vec[:count] = state["has_vec"]
        self._n_vec = int(np.count_nonzero(self._has_vec[:count]))
        self._lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FactorArena(f={self.f}, interned={len(self._ids)}, "
            f"learned={self._n_vec})"
        )
