"""The real-time recommender facade — the pipeline of Figure 1 (paper §4.1).

A :class:`RealtimeRecommender` composes everything: the online MF model and
its adjustable trainer, the user-history store, the similar-video tables,
the candidate selector, and (optionally) the demographic complement.  Two
entry points:

* :meth:`observe` — ingest one user action: update history, train the MF
  model in a single step, refresh the similar-video tables for the pairs
  the action touches, and bump demographic hot lists.
* :meth:`recommend` — serve one request: pick seed videos (the currently
  watched one, or the user's recent history), expand candidates from the
  similar-video tables, predict preferences with Eq. 2, rank, and merge in
  demographic results.

Request latency is recorded per call; the paper's production deployment
reports millisecond latencies, which the latency benchmark checks on this
implementation too.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..clock import Clock, SystemClock
from ..config import ReproConfig
from ..data.schema import User, UserAction, Video
from ..data.stream import ENGAGEMENT_ACTIONS
from ..kvstore import InMemoryKVStore, KVStore
from ..obs.kv import InstrumentedKVStore
from ..storm.metrics import LatencyStats

if TYPE_CHECKING:
    from ..obs import Observability
from .actions import ActionWeigher, LogPlaytimeWeigher
from .annindex import AnnIndex
from .candidates import CandidateSelector
from .demographic import DemographicRecommender, merge_recommendations
from .history import UserHistoryStore
from .mf import MFModel
from .online import ActionLog, OnlineTrainer
from .simtable import SimilarVideoTable, generate_pairs
from .variants import COMBINE_MODEL, ModelVariant


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One recommended video with its predicted preference."""

    video_id: str
    score: float


class RealtimeRecommender:
    """End-to-end real-time top-N video recommender.

    ``videos`` is the catalogue (needed for durations and types).  Passing
    ``users`` enables the demographic optimizations; without it the system
    degrades to pure MF with a global hot fallback.
    """

    def __init__(
        self,
        videos: Mapping[str, Video],
        users: Mapping[str, User] | None = None,
        config: ReproConfig | None = None,
        variant: ModelVariant = COMBINE_MODEL,
        weigher: ActionWeigher | None = None,
        clock: Clock | None = None,
        store: KVStore | None = None,
        enable_demographic: bool = True,
        wal: "ActionLog | None" = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.videos = videos
        self.users = users or {}
        self.config = config or ReproConfig()
        self.clock = clock or SystemClock()
        self.variant = variant
        self.obs = obs
        backing = store if store is not None else InMemoryKVStore()
        if obs is not None and not isinstance(backing, InstrumentedKVStore):
            backing = obs.instrument_store(backing)
        self._tracer = obs.tracer if obs is not None else None
        self._now = (
            obs.perf_clock.now if obs is not None else time.perf_counter
        )
        self._latency_hist = (
            obs.registry.histogram(
                "recommender_request_latency_seconds",
                "Latency of RealtimeRecommender.recommend calls",
            )
            if obs is not None
            else None
        )

        self.model = MFModel(self.config.mf, store=backing)
        self.weigher = weigher or LogPlaytimeWeigher(self.config.weights)
        self.trainer = OnlineTrainer(
            self.model,
            videos=videos,
            weigher=self.weigher,
            variant=variant,
            config=self.config.online,
            wal=wal,
            obs=obs,
        )
        self.history = UserHistoryStore(store=backing)
        self.table = SimilarVideoTable(
            videos,
            self.model,
            config=self.config.similarity,
            clock=self.clock,
            store=backing,
        )
        self.selector = CandidateSelector(self.table, self.config.recommend)
        # Two-stage retrieval (DESIGN.md "Candidate retrieval index"): in
        # "ann"/"hybrid" mode an LSH index over the learned video factors
        # produces the shortlist the exact Eq. 2 re-rank scores.  "table"
        # mode (default) is the paper's original path and the correctness
        # oracle.
        self.index: AnnIndex | None = None
        if self.config.retrieval.mode != "table":
            self.index = AnnIndex(
                self.config.mf.f,
                videos=videos,
                config=self.config.retrieval,
                obs=obs,
                expected_videos=len(videos) or None,
            )
        self.demographic: DemographicRecommender | None = None
        if enable_demographic:
            self.demographic = DemographicRecommender(
                self.users, clock=self.clock
            )
        self.request_latency = LatencyStats()

    # ------------------------------------------------------------------
    # Ingestion (User Action Processing in Figure 1)
    # ------------------------------------------------------------------

    def observe(self, action: UserAction) -> None:
        """Fold one user action into every stateful component.

        Order matters: the MF step runs first so the pair similarities are
        computed from the *post-update* vectors, then the pairs between the
        acted-on video and the user's prior history are refreshed, and only
        then is the video pushed onto the history (so it does not pair with
        itself).
        """
        update = self.trainer.process(action)
        if update is not None and self.index is not None:
            # Incremental index maintenance: the index re-hashes the video
            # only every check_every-th upsert (signature drift, not every
            # SGD step) — see AnnIndex.upsert.
            self.index.upsert(action.video_id, update.y_i, update.b_i)
        if action.action in ENGAGEMENT_ACTIONS:
            recent = self.history.recent(
                action.user_id, self.config.similarity.candidate_pool
            )
            for video_i, video_j in generate_pairs(action.video_id, recent):
                self.table.offer_pair(video_i, video_j, now=action.timestamp)
            self.history.record(action)
            self.observe_demographic(action)

    def observe_demographic(self, action: UserAction) -> None:
        """Fold one action into the demographic hot lists *only*.

        Recovery hook: demographic state lives in memory, not in the KV
        store, so a checkpoint restore leaves it empty — replaying the
        checkpointed WAL prefix through this method rebuilds it exactly
        (the weights depend only on the action and static video metadata)
        without re-applying anything to KV-backed state.
        """
        if self.demographic is None or action.action not in ENGAGEMENT_ACTIONS:
            return
        weight = self.weigher.weight(
            action, self.videos.get(action.video_id)
        ) if self.trainer.is_playtime_capable(action) else 1.0
        self.demographic.record(action, weight=weight)
        if self.index is not None:
            # Group -> partition affinity for index pruning; in-memory
            # derived state, rebuilt by the same WAL replay as the hot
            # lists.
            self.index.observe_group(
                self.demographic.group_for(action.user_id), action.video_id
            )

    def rebuild_index(self) -> dict | None:
        """(Re)build the ANN index from the model's current factors.

        The recovery hook for the retrieval index: after a checkpoint
        restore the KV-backed factor arena is authoritative and the index
        is rebuilt from it (`AnnIndex.build_from_model`), serving the same
        shortlists as the pre-crash index.  Returns the build report (cost
        included), or ``None`` when no index is configured.
        """
        if self.index is None:
            return None
        with self._span("ann.rebuild"):
            return self.index.build_from_model(self.model)

    def observe_stream(self, actions) -> int:
        """Observe a whole (time-ordered) stream; return the action count."""
        count = 0
        for action in actions:
            self.observe(action)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Serving (Figure 1 right-hand side)
    # ------------------------------------------------------------------

    def seeds_for(
        self, user_id: str, current_video: str | None = None
    ) -> list[str]:
        """Seed videos for a request (§4.1).

        The currently watched video when the request comes from the
        "related videos" scenario; otherwise the user's recent history
        ("Guess You Like").
        """
        if current_video is not None:
            return [current_video]
        return self.history.recent(user_id, self.config.recommend.max_seeds)

    def recommend(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[Recommendation]:
        """Generate the real-time top-N list for one request."""
        with self._span("recommender.recommend"):
            return self._recommend(user_id, current_video, n=n, now=now)

    def _span(self, name: str):
        """A child span when a trace is already active, else a no-op.

        Gated on an ambient span so bulk offline evaluation (which calls
        :meth:`recommend` thousands of times outside any request) does not
        flood the tracer.
        """
        if self._tracer is not None and self._tracer.current_span() is not None:
            return self._tracer.span(name)
        return nullcontext()

    def _ann_shortlist(
        self,
        user_id: str,
        seeds: list[str],
        exclude: set[str],
        top_n: int,
    ) -> list[str]:
        """Stage-1 ANN shortlist for one request (id-sorted).

        Warm users are one MIPS query with their own vector.  Cold users
        (no learned ``x_u``) fall back to item-to-item queries around the
        seed videos; the seed vectors are fetched through a *single*
        deduplicated batch read rather than one fetch per seed.
        """
        index = self.index
        assert index is not None
        blocked = exclude | set(seeds)
        allowed = None
        if (
            self.config.retrieval.partition_pruning
            and self.demographic is not None
        ):
            allowed = index.allowed_partitions(
                self.demographic.group_for(user_id)
            )
        x_u = self.model.user_vector(user_id)
        if x_u is not None:
            return index.query_user(
                x_u, top_n, exclude=blocked, allowed_partitions=allowed
            )
        unique_seeds = list(dict.fromkeys(seeds))
        if not unique_seeds:
            return []
        shortlist: list[str] = []
        seen: set[str] = set()
        for vec in self.model.video_vectors_many(unique_seeds):
            if vec is None:
                continue
            for vid in index.query_item(
                vec, top_n, exclude=blocked, allowed_partitions=allowed
            ):
                if vid not in seen:
                    seen.add(vid)
                    shortlist.append(vid)
        return shortlist

    def _recommend(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[Recommendation]:
        started = self._now()
        top_n = n if n is not None else self.config.recommend.top_n
        timestamp = self.clock.now() if now is None else now

        with self._span("candidates.select"):
            # One history read serves both seed selection and the watched
            # filter (mutually consistent, half the store traffic).
            snapshot = self.history.snapshot(
                user_id, self.config.recommend.max_seeds
            )
            seeds = (
                [current_video]
                if current_video is not None
                else snapshot.recent
            )
            exclude: set[str] = set()
            if self.config.recommend.exclude_watched:
                exclude = set(snapshot.watched)
            mode = self.config.retrieval.mode
            candidates = (
                []
                if mode == "ann"
                else self.selector.select(seeds, exclude=exclude, now=timestamp)
            )

        video_ids = [c.video_id for c in candidates]
        if self.index is not None:
            # Stage 1 of the two-stage path: the ANN shortlist ("ann"
            # replaces the table expansion, "hybrid" unions with it); the
            # exact predict_many below is stage 2.
            with self._span("ann.query"):
                shortlist = self._ann_shortlist(user_id, seeds, exclude, top_n)
            present = set(video_ids)
            video_ids.extend(
                vid for vid in shortlist if vid not in present
            )

        ranked: list[Recommendation] = []
        if video_ids:
            with self._span("mf.predict"):
                scores = self.model.predict_many(user_id, video_ids)
            order = sorted(
                range(len(video_ids)),
                key=lambda idx: (-scores[idx], video_ids[idx]),
            )
            ranked = [
                Recommendation(video_ids[idx], float(scores[idx]))
                for idx in order
            ]

        final_ids = [r.video_id for r in ranked]
        if self.demographic is not None:
            db_list = self.demographic.recommend_filtered(
                user_id,
                top_n,
                blocked=exclude | set(seeds),
                now=timestamp,
            )
            # Cold/inactive users with no MF candidates fall back entirely
            # to the demographic hot list; otherwise merge a fraction.
            if not final_ids:
                final_ids = db_list
            else:
                final_ids = merge_recommendations(
                    final_ids,
                    db_list,
                    top_n,
                    self.config.recommend.demographic_slots,
                )
        score_of = {r.video_id: r.score for r in ranked}
        result = [
            Recommendation(vid, score_of.get(vid, 0.0))
            for vid in final_ids[:top_n]
        ]
        elapsed = self._now() - started
        self.request_latency.record(elapsed)
        if self._latency_hist is not None:
            self._latency_hist.observe(elapsed)
        return result

    def recommend_ids(
        self,
        user_id: str,
        current_video: str | None = None,
        n: int | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Like :meth:`recommend` but returning just the video ids."""
        return [
            r.video_id
            for r in self.recommend(user_id, current_video, n=n, now=now)
        ]
