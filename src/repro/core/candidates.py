"""Candidate video selection (paper §4.1).

Scoring the whole catalogue per request is "a disaster" at Tencent scale;
instead, candidates are gathered by expanding the similar-video lists of a
handful of *seed* videos — the video currently being watched, or the user's
recent history.  The selector deduplicates across seeds (keeping the best
supporting similarity), filters out the seeds themselves and already-watched
videos, and caps the pool size so the ranking stage stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RecommendConfig
from .simtable import SimilarVideoTable


@dataclass(frozen=True, slots=True)
class Candidate:
    """A candidate video with its best supporting seed similarity."""

    video_id: str
    seed_id: str
    similarity: float


class CandidateSelector:
    """Expands seed videos into a bounded, deduplicated candidate pool."""

    def __init__(
        self,
        table: SimilarVideoTable,
        config: RecommendConfig | None = None,
    ) -> None:
        self.table = table
        self.config = config or RecommendConfig()

    def select(
        self,
        seeds: list[str],
        exclude: set[str] | None = None,
        now: float | None = None,
    ) -> list[Candidate]:
        """Gather candidates for the given seeds, best-similarity first.

        ``exclude`` is the watched set (plus anything else the caller wants
        suppressed); seeds are always excluded — recommending the video the
        user is currently watching is useless.
        """
        cfg = self.config
        excluded = set(exclude or ())
        excluded.update(seeds)
        best: dict[str, Candidate] = {}
        # Dedup before the cap: a video repeated in the user's history must
        # neither waste a seed slot nor be fetched twice from the store.
        used = list(dict.fromkeys(seeds))[: cfg.max_seeds]
        for seed, ranked_list in zip(
            used, self.table.neighbors_many(used, now=now)
        ):
            for video_id, similarity in ranked_list:
                if video_id in excluded:
                    continue
                current = best.get(video_id)
                if current is None or similarity > current.similarity:
                    best[video_id] = Candidate(video_id, seed, similarity)
        ranked = sorted(
            best.values(), key=lambda c: (-c.similarity, c.video_id)
        )
        return ranked[: cfg.max_candidates]
