"""Reservoir-replay online training — the related-work alternative (§2.2).

The paper contrasts its pure single-pass updating with online approaches
that "keep a representative sample of the data set in a reservoir to
retrain the model" (Diaz-Aviles et al., refs [12, 13]).  This module
implements that alternative as an extension so the trade-off can be
measured: a :class:`ReservoirTrainer` maintains a fixed-size uniform sample
of past positive actions (Vitter's Algorithm R) and, for every new action,
additionally replays a few reservoir entries through the model.

Compared to Algorithm 1 this buys extra convergence per new observation at
the cost of memory and per-action latency — exactly the trade the paper
declined for "large streaming data".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..data.schema import UserAction
from .online import OnlineTrainer


@dataclass(slots=True)
class ReservoirStats:
    """Counters for the replay mechanism."""

    stored: int = 0
    replayed: int = 0


class Reservoir:
    """A fixed-size uniform sample of a stream (Vitter's Algorithm R)."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: list[UserAction] = []
        self._seen = 0
        self._rng = random.Random(seed)

    def offer(self, item: UserAction) -> None:
        """Consider one stream element for inclusion."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._items[slot] = item

    def sample(self, k: int) -> list[UserAction]:
        """Draw up to ``k`` elements uniformly (without replacement)."""
        if not self._items:
            return []
        k = min(k, len(self._items))
        return self._rng.sample(self._items, k)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def seen(self) -> int:
        return self._seen


class ReservoirTrainer:
    """Wraps an :class:`OnlineTrainer` with reservoir replay.

    Every positive action is (a) processed normally, (b) offered to the
    reservoir, and (c) followed by ``replays`` additional updates drawn
    from the reservoir.  With ``replays = 0`` this degrades exactly to
    Algorithm 1.
    """

    def __init__(
        self,
        trainer: OnlineTrainer,
        capacity: int = 1000,
        replays: int = 2,
        seed: int = 0,
    ) -> None:
        if replays < 0:
            raise ValueError(f"replays must be >= 0, got {replays}")
        self.trainer = trainer
        self.reservoir = Reservoir(capacity, seed=seed)
        self.replays = replays
        self.stats = ReservoirStats()

    @property
    def model(self):
        return self.trainer.model

    def process(self, action: UserAction):
        """Process one action plus its replay budget; return the primary
        update (or ``None`` as in :meth:`OnlineTrainer.process`)."""
        update = self.trainer.process(action)
        if update is None:
            return None
        self.reservoir.offer(action)
        self.stats.stored = len(self.reservoir)
        for replayed in self.reservoir.sample(self.replays):
            if replayed is action:
                continue
            self.trainer.process(replayed)
            self.stats.replayed += 1
        return update

    def process_stream(self, actions) -> int:
        """Process a whole stream; return the number of primary updates."""
        count = 0
        for action in actions:
            if self.process(action) is not None:
                count += 1
        return count
