"""Supervision of topology workers: bounded restarts with backoff.

Storm restarts failed workers and replays their unacked tuples; this
module gives the in-process executors the same shape of guarantee.  When a
bolt raises, a :class:`Supervisor` decides whether the executor should
recreate that worker (fresh instance from the component factory) and retry
the same tuple, or give up and fall back to the executor's configured
failure mode.  Because the tuple is retried — not dropped — a topology
running under supervision loses no delivered tuples to transient faults;
the cost is at-least-once side effects for bolts that partially executed
before failing (documented in DESIGN.md).

Restart budgets are per worker over the run, so a genuinely poisoned
component cannot restart forever; backoff grows exponentially and is
injectable (tests pass a no-op sleep).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff.

    ``max_restarts`` caps restarts *per worker*; restart ``k`` (0-based)
    sleeps ``backoff_base * backoff_factor**k`` seconds, capped at
    ``backoff_cap``.
    """

    max_restarts: int = 5
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, restart_index: int) -> float:
        """Sleep before restart number ``restart_index`` (0-based)."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor**restart_index,
        )


class Supervisor:
    """Tracks worker failures and applies a :class:`RetryPolicy`.

    Thread-safe: the threaded executor consults it from every bolt thread.
    One supervisor instance is scoped to one executor run.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._restarts: dict[tuple[str, int], int] = {}
        self._gave_up: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    def should_restart(
        self, component: str, worker: int, exc: BaseException
    ) -> bool:
        """Consume one unit of ``(component, worker)``'s restart budget.

        Returns ``True`` (after sleeping the backoff) when the executor
        should recreate the worker and retry the tuple, ``False`` when the
        budget is exhausted.
        """
        key = (component, worker)
        with self._lock:
            used = self._restarts.get(key, 0)
            if used >= self.policy.max_restarts:
                self._gave_up[key] = self._gave_up.get(key, 0) + 1
                return False
            self._restarts[key] = used + 1
        self._sleep(self.policy.backoff(used))
        return True

    def restarts(self, component: str | None = None) -> int:
        """Total restarts granted (for one component, or overall)."""
        with self._lock:
            return sum(
                count
                for (name, _), count in self._restarts.items()
                if component is None or name == component
            )

    def gave_up(self, component: str | None = None) -> int:
        """How many times a worker's budget ran out (tuple abandoned)."""
        with self._lock:
            return sum(
                count
                for (name, _), count in self._gave_up.items()
                if component is None or name == component
            )

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Plain-dict summary per component (for dashboards/tests)."""
        out: dict[str, dict[str, int]] = {}
        with self._lock:
            for (name, _), count in self._restarts.items():
                entry = out.setdefault(name, {"restarts": 0, "gave_up": 0})
                entry["restarts"] += count
            for (name, _), count in self._gave_up.items():
                entry = out.setdefault(name, {"restarts": 0, "gave_up": 0})
                entry["gave_up"] += count
        return out
