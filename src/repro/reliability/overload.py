"""Overload protection primitives: admission control and circuit breaking.

The paper's deployment absorbs "more than 1 billion user requests every
day, with maximum 0.1 million requests in one second" (§6.2) — a peak no
serving tier survives by queueing alone.  This module provides the three
classic controls the serving layer composes (admission → deadline →
breaker → fallback, see DESIGN.md "Overload semantics"):

* :class:`TokenBucket` — a deterministic rate limiter.  Tokens refill at
  ``rate`` per second on the injected clock and cap at ``capacity``; a
  request is admitted iff a token is available.  With a
  :class:`~repro.clock.VirtualClock` the refill schedule is exact, so
  saturation tests are bit-for-bit reproducible.
* :class:`ConcurrencyLimiter` — a non-blocking cap on in-flight requests.
* :class:`AdmissionController` — combines both; rejections carry a reason
  (``"rate"`` or ``"concurrency"``) and are counted.
* :class:`CircuitBreaker` — the closed → open → half-open state machine.
  ``failure_threshold`` consecutive failures open the circuit; while open
  every call fails fast (no backend invocation) until ``reset_timeout``
  seconds pass, then a bounded number of half-open probes decide between
  closing and re-opening.

Everything here takes an injected clock and no RNG, so overload behaviour
in tests is deterministic.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..clock import Clock, SystemClock
from ..errors import CircuitOpenError

if TYPE_CHECKING:
    from ..obs import MetricsRegistry


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    ``rate`` tokens are added per second of *clock* time, up to
    ``capacity``; the bucket starts full.  :meth:`try_acquire` is
    non-blocking — overload is shed, never queued.
    """

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._clock = clock or SystemClock()
        self._tokens = self.capacity
        self._last_refill = self._clock.now()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; return whether they were granted.

        The comparison carries a tiny epsilon so that refill amounts
        accumulated over many small clock steps (e.g. exactly 0.1 tokens
        per arrival) are not defeated by float rounding.
        """
        with self._lock:
            self._refill_locked()
            if self._tokens + 1e-9 >= tokens:
                self._tokens = max(0.0, self._tokens - tokens)
                return True
            return False

    @property
    def available(self) -> float:
        """Current token count (after refill) — for tests and dashboards."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class ConcurrencyLimiter:
    """Non-blocking cap on concurrently admitted requests."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self._inflight = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= self.limit:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching try_acquire()")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight


#: Reason codes attached to shed admissions.
SHED_RATE = "rate"
SHED_CONCURRENCY = "concurrency"


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``admitted=False`` carries the shed reason; an admitted decision holds
    the concurrency slot until :meth:`AdmissionController.release` is
    called (the router does this in a ``finally``).
    """

    admitted: bool
    reason: str | None = None


class AdmissionController:
    """Admission control in front of a serving endpoint.

    Composes an optional rate limit (requests per second with burst
    ``burst``) and an optional concurrency cap.  The rate check runs
    first: a request shed by rate never consumes a concurrency slot.
    """

    def __init__(
        self,
        rate: float | None = None,
        burst: float | None = None,
        max_concurrency: int | None = None,
        clock: Clock | None = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if rate is None and max_concurrency is None:
            raise ValueError("need at least one of rate / max_concurrency")
        self._decisions = (
            registry.counter(
                "admission_decisions_total",
                "Admission control outcomes, by decision",
                labelnames=("decision",),
            )
            if registry is not None
            else None
        )
        self._bucket = (
            TokenBucket(rate, capacity=burst, clock=clock)
            if rate is not None
            else None
        )
        self._limiter = (
            ConcurrencyLimiter(max_concurrency)
            if max_concurrency is not None
            else None
        )
        self.admitted = 0
        self.shed_rate = 0
        self.shed_concurrency = 0
        self._lock = threading.Lock()

    def try_admit(self) -> AdmissionDecision:
        """Admit or shed one request; admitted requests must be released."""
        if self._bucket is not None and not self._bucket.try_acquire():
            with self._lock:
                self.shed_rate += 1
            self._count("shed_rate")
            return AdmissionDecision(False, SHED_RATE)
        if self._limiter is not None and not self._limiter.try_acquire():
            with self._lock:
                self.shed_concurrency += 1
            self._count("shed_concurrency")
            return AdmissionDecision(False, SHED_CONCURRENCY)
        with self._lock:
            self.admitted += 1
        self._count("admitted")
        return AdmissionDecision(True)

    def _count(self, decision: str) -> None:
        if self._decisions is not None:
            self._decisions.labels(decision=decision).inc()

    def release(self) -> None:
        """Return the concurrency slot of an admitted request."""
        if self._limiter is not None:
            self._limiter.release()

    @property
    def shed(self) -> int:
        with self._lock:
            return self.shed_rate + self.shed_concurrency


class BreakerState(enum.Enum):
    """Circuit breaker states (classic three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open circuit breaker with an injected clock.

    * **closed** — calls flow through; ``failure_threshold`` *consecutive*
      failures trip the breaker open (a success resets the streak).
    * **open** — :meth:`allow` returns ``False`` (callers fail fast with
      :class:`~repro.errors.CircuitOpenError` via :meth:`call`) until
      ``reset_timeout`` seconds of clock time have passed.
    * **half-open** — up to ``half_open_max_probes`` trial calls are let
      through; ``success_threshold`` consecutive successes close the
      breaker, any failure re-opens it (and restarts the timeout).

    Thread-safe; all transitions are driven by :meth:`allow`,
    :meth:`record_success` and :meth:`record_failure`, so the state machine
    is fully deterministic under a :class:`~repro.clock.VirtualClock`.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        success_threshold: int = 1,
        half_open_max_probes: int = 1,
        clock: Clock | None = None,
        name: str = "breaker",
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.success_threshold = success_threshold
        self.half_open_max_probes = half_open_max_probes
        self.name = name
        self._clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at = 0.0
        self._probes = 0
        self.opened_count = 0
        self.fast_failures = 0
        if registry is not None:
            self._transitions = registry.counter(
                "breaker_transitions_total",
                "Circuit breaker state transitions, by breaker and new state",
                labelnames=("name", "to"),
            )
            self._state_gauge = registry.gauge(
                "breaker_state",
                "Current breaker state (0=closed, 1=half_open, 2=open)",
                labelnames=("name",),
            )
            self._state_gauge.labels(name=name).set(0)
        else:
            self._transitions = None
            self._state_gauge = None

    #: Numeric encoding of breaker states for the ``breaker_state`` gauge.
    _STATE_VALUES = {
        BreakerState.CLOSED: 0,
        BreakerState.HALF_OPEN: 1,
        BreakerState.OPEN: 2,
    }

    def _record_transition_locked(self, to: BreakerState) -> None:
        if self._transitions is not None:
            self._transitions.labels(name=self.name, to=to.value).inc()
            self._state_gauge.labels(name=self.name).set(
                self._STATE_VALUES[to]
            )

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock.now() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes = 0
            self._consecutive_successes = 0
            self._record_transition_locked(BreakerState.HALF_OPEN)

    def _open_locked(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock.now()
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self.opened_count += 1
        self._record_transition_locked(BreakerState.OPEN)

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts half-open probes)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probes < self.half_open_max_probes:
                    self._probes += 1
                    return True
            self.fast_failures += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._consecutive_successes += 1
                if self._consecutive_successes >= self.success_threshold:
                    self._state = BreakerState.CLOSED
                    self._consecutive_successes = 0
                    self._record_transition_locked(BreakerState.CLOSED)
            elif self._state is BreakerState.OPEN:
                # A straggler from before the trip finished; ignore.
                pass

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._open_locked()
                return
            if self._state is BreakerState.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._open_locked()

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without invoking
        ``fn`` when the breaker is open (or half-open with its probe budget
        spent); otherwise records success/failure from the call's outcome
        and re-raises any failure.
        """
        if not self.allow():
            raise CircuitOpenError(self.name)
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
