"""Write-ahead log of user actions, with segment rotation.

Every action is appended to the log *before* it mutates any model state, so
after a crash the actions newer than the last checkpoint can be replayed
into a restored store — Storm's "replay unacked tuples" guarantee (§5.1),
rebuilt on a plain append-only file.

Record format is one line per action::

    <seq>\t<timestamp>\t<user>\t<video>\t<action>\t<view_time>\n

i.e. a monotonically increasing sequence number followed by the raw-log
encoding :meth:`repro.data.schema.UserAction.to_log_line` already defines —
the same format the :class:`~repro.topology.spout.ActionSpout` parses.

Segments are named ``wal-<first_seq>.log`` and rotated once they reach
``segment_max_records`` records, so replay after a checkpoint can skip
whole segments by filename.  A torn final line (crash mid-append) is
detected and ignored during replay; corruption anywhere *before* the tail
raises :class:`~repro.errors.WALError`, because silently skipping interior
records would break at-least-once recovery.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from ..data.schema import UserAction
from ..errors import DataError, WALError

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(stem)


class ActionWAL:
    """Append-only, segment-rotated action log.

    ``fsync=True`` forces every append to disk (crash-durable but slow);
    the default flushes to the OS on each append, which survives process
    crashes though not power loss.  :meth:`suspend` makes appends no-ops,
    which recovery uses so replaying an action through a WAL-wired trainer
    does not re-log it.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        segment_max_records: int = 10_000,
        fsync: bool = False,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError(
                f"segment_max_records must be >= 1, got {segment_max_records}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_max_records = segment_max_records
        self.fsync = fsync
        self._handle: IO[str] | None = None
        self._segment_records = 0
        self._suspended = 0
        self._last_seq = self._scan_last_seq()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    def append(self, action: UserAction) -> int:
        """Log one action; return its sequence number.

        While suspended (during replay) nothing is written and the current
        :attr:`last_seq` is returned unchanged.
        """
        if self._suspended:
            return self._last_seq
        seq = self._last_seq + 1
        if self._handle is None or self._segment_records >= self.segment_max_records:
            self._rotate(seq)
        assert self._handle is not None
        self._handle.write(f"{seq}\t{action.to_log_line()}\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._segment_records += 1
        self._last_seq = seq
        return seq

    def _rotate(self, first_seq: int) -> None:
        """Seal the current segment and open ``wal-<first_seq>.log``.

        The outgoing segment is fsynced before it is closed, and the WAL
        directory is fsynced after the new file is created — without the
        directory fsync, a power loss can forget the new segment's very
        *existence* even though its records were flushed.
        """
        if self._handle is not None:
            if self.fsync:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._handle.close()
        path = self.root / _segment_name(first_seq)
        self._handle = open(path, "a", encoding="utf-8")
        if self.fsync:
            self._fsync_dir()
        self._segment_records = 0

    def _fsync_dir(self) -> None:
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """Context manager under which :meth:`append` is a no-op."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ActionWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment files, oldest first."""
        return sorted(
            (
                path
                for path in self.root.iterdir()
                if path.name.startswith(_SEGMENT_PREFIX)
                and path.name.endswith(_SEGMENT_SUFFIX)
            ),
            key=_segment_first_seq,
        )

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, UserAction]]:
        """Yield ``(seq, action)`` for every record with ``seq > after_seq``.

        Whole segments older than ``after_seq`` are skipped by filename.  A
        torn record at the very tail of the newest segment is dropped; any
        other malformed or out-of-order record raises
        :class:`~repro.errors.WALError`.
        """
        segments = self.segments()
        # A segment can be skipped when the *next* segment starts at or
        # below the cut point — then nothing in it is > after_seq.
        selected: list[Path] = []
        for idx, path in enumerate(segments):
            next_first = (
                _segment_first_seq(segments[idx + 1])
                if idx + 1 < len(segments)
                else None
            )
            if next_first is not None and next_first <= after_seq + 1:
                continue
            selected.append(path)

        expected = None
        for s_idx, path in enumerate(selected):
            last_segment = s_idx == len(selected) - 1
            lines = path.read_text(encoding="utf-8").split("\n")
            for l_idx, line in enumerate(lines):
                if not line:
                    continue
                last_line = last_segment and l_idx >= len(lines) - 2
                try:
                    seq_str, payload = line.split("\t", 1)
                    seq = int(seq_str)
                    action = UserAction.from_log_line(payload)
                except (ValueError, DataError) as exc:
                    if last_line:
                        return  # torn tail from a crash mid-append
                    raise WALError(
                        f"corrupt WAL record in {path.name}: {line!r}"
                    ) from exc
                if expected is not None and seq != expected:
                    raise WALError(
                        f"WAL sequence gap in {path.name}: "
                        f"expected {expected}, found {seq}"
                    )
                expected = seq + 1
                if seq > after_seq:
                    yield seq, action

    def _scan_last_seq(self) -> int:
        """Recover the append position from the newest segment on open."""
        segments = self.segments()
        if not segments:
            return 0
        last = 0
        for seq, _ in self.replay(
            after_seq=max(0, _segment_first_seq(segments[-1]) - 1)
        ):
            last = seq
        if last == 0:
            # Newest segment held only a torn record; fall back to its name.
            last = max(0, _segment_first_seq(segments[-1]) - 1)
        return last
