"""Crash recovery: restore the last checkpoint, replay the WAL tail.

Recovery semantics are **at-least-once relative to the log**: every action
is WAL-appended before it mutates model state, so after a crash the
restored store misses at most the actions logged after the last checkpoint
— and exactly those are replayed.  An action whose crash interrupted its
(non-atomic) application is replayed in full against the *checkpoint*
state, so no partial update survives; re-applying an action that was also
partially applied before the checkpointed state was captured cannot happen
because checkpoints are only taken between actions.

What recovery restores is everything that lives in the checkpointed KV
store: MF vectors and biases, the ``mu`` accumulator, user histories, and
similar-video tables.  State held outside the store (in-memory trainer
counters, metrics) restarts from zero — it is observability, not model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..data.schema import UserAction
from ..errors import StaleCheckpointError
from ..kvstore import KVStore, drop_caches, unwrap_durable
from .checkpoint import CheckpointInfo, CheckpointManager
from .wal import ActionWAL


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover` call did."""

    checkpoint: CheckpointInfo | None
    replayed: int
    last_seq: int
    stale_checkpoint: bool = False

    @property
    def from_scratch(self) -> bool:
        return self.checkpoint is None


class RecoveryManager:
    """Couples a :class:`CheckpointManager` with an :class:`ActionWAL`.

    One instance per durable root; the same object serves both the running
    system (periodic :meth:`checkpoint` calls) and the post-crash restart
    (:meth:`recover` into a fresh store).
    """

    def __init__(self, checkpoints: CheckpointManager, wal: ActionWAL) -> None:
        self.checkpoints = checkpoints
        self.wal = wal

    def checkpoint(
        self,
        store: KVStore,
        created_at: float = 0.0,
        incremental: bool = False,
    ) -> CheckpointInfo:
        """Snapshot ``store`` tagged with the WAL's current position.

        Call between actions (never mid-action): the snapshot must be a
        consistent cut of the store that corresponds exactly to "all
        actions up to ``wal.last_seq`` applied".  With ``incremental=True``
        the store must wrap a :class:`~repro.kvstore.durable.DurableKVStore`
        and the checkpoint only *references* its sealed segments — O(1) in
        dataset size.
        """
        create = (
            self.checkpoints.create_incremental
            if incremental
            else self.checkpoints.create
        )
        return create(store, wal_seq=self.wal.last_seq, created_at=created_at)

    def recover(
        self,
        store: KVStore,
        apply: Callable[[UserAction], object],
    ) -> RecoveryReport:
        """Rebuild state into ``store``; return what happened.

        ``apply`` re-feeds one logged action through the model — typically
        ``OnlineTrainer.process`` or ``RealtimeRecommender.observe``.  The
        WAL is suspended for the duration so an ``apply`` that itself logs
        to this WAL does not duplicate records.

        If the newest checkpoint is incremental and has gone stale
        (compaction deleted a referenced segment), the durable tier is
        cleared and *everything* is replayed from the WAL — the log holds
        every acked action from sequence 1, so the end state is identical,
        just slower to reach.
        """
        stale = False
        try:
            info = self.checkpoints.restore_latest(store)
        except StaleCheckpointError:
            stale = True
            info = None
            durable = unwrap_durable(store)
            if durable is not None:
                durable.clear()
            drop_caches(store)
        after_seq = info.wal_seq if info is not None else 0
        replayed = 0
        last_seq = after_seq
        with self.wal.suspend():
            for seq, action in self.wal.replay(after_seq=after_seq):
                apply(action)
                replayed += 1
                last_seq = seq
        return RecoveryReport(
            checkpoint=info,
            replayed=replayed,
            last_seq=last_seq,
            stale_checkpoint=stale,
        )
