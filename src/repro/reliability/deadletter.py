"""Dead-letter queue for rejected ingest tuples.

"The spout ... filters the unqualified data tuples" (§5.1) — but in a
production pipeline *silently* dropping bad input is itself a failure
mode: a duplicated action double-trains the model, a stale replay skews
the similarity damping, and nobody can audit what was thrown away.  The
:class:`DeadLetterStore` makes every rejection observable: each dropped
tuple is recorded with a machine-readable reason code, an optional human
detail string, and the event time, and the queue is both inspectable
(tests assert exact reason codes) and replayable (a fixed upstream can
re-feed the quarantined payloads).

Optionally mirrors every record to a JSONL file so rejected traffic
survives a process crash and can be inspected with standard tools
(``jq``, ``grep``)."""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

_log = logging.getLogger(__name__)

from ..clock import Clock, SystemClock
from ..data.schema import UserAction

#: Reason codes for dead-lettered tuples (stable strings — asserted in tests).
REASON_MALFORMED = "malformed"
REASON_DUPLICATE = "duplicate"
REASON_LATE = "late"

ALL_REASONS = (REASON_MALFORMED, REASON_DUPLICATE, REASON_LATE)


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One quarantined payload: what was dropped, why, and when."""

    reason: str
    payload: Any
    detail: str = ""
    recorded_at: float = 0.0


def _serialise_payload(payload: Any) -> str:
    if isinstance(payload, UserAction):
        return payload.to_log_line()
    return str(payload)


class DeadLetterStore:
    """Thread-safe, bounded, optionally disk-backed dead-letter queue.

    ``max_records`` bounds memory: when full, the *oldest* records are
    evicted (the JSONL mirror, if configured, keeps everything).  Use
    :meth:`records` / :meth:`counts` for inspection and :meth:`replay` to
    drain the queue back through a handler once the upstream defect is
    fixed.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_records: int = 100_000,
        clock: Clock | None = None,
    ) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self._records: list[DeadLetter] = []
        self._max_records = max_records
        self._clock = clock or SystemClock()
        self._path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()

    def _repair_torn_tail(self) -> None:
        """Truncate a torn final line left by a crash mid-append.

        The mirror is append-only JSONL, so the only damage a crash can do
        is an incomplete last line.  Cutting back to the last newline keeps
        every complete record and lets appends resume cleanly; anything
        rarer (interior corruption) is left for :meth:`load_jsonl` to skip.
        """
        assert self._path is not None
        try:
            data = self._path.read_bytes()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no newline at all
        _log.warning(
            "dead-letter mirror %s has a torn final line (%d bytes); truncating",
            self._path,
            len(data) - keep,
        )
        with self._path.open("r+b") as fh:
            fh.truncate(keep)

    def add(self, reason: str, payload: Any, detail: str = "") -> DeadLetter:
        """Quarantine one payload under ``reason``; return the record."""
        record = DeadLetter(
            reason=reason,
            payload=payload,
            detail=detail,
            recorded_at=self._clock.now(),
        )
        line = None
        if self._path is not None:
            line = json.dumps(
                {
                    "reason": record.reason,
                    "detail": record.detail,
                    "recorded_at": record.recorded_at,
                    "payload": _serialise_payload(payload),
                },
                sort_keys=True,
            )
        with self._lock:
            self._records.append(record)
            if len(self._records) > self._max_records:
                del self._records[: len(self._records) - self._max_records]
        if line is not None and self._path is not None:
            with self._lock:
                with self._path.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        return record

    def records(self, reason: str | None = None) -> list[DeadLetter]:
        """All records (optionally filtered by reason), oldest first."""
        with self._lock:
            records = list(self._records)
        if reason is not None:
            records = [r for r in records if r.reason == reason]
        return records

    def counts(self) -> dict[str, int]:
        """Record count per reason code (only reasons actually seen)."""
        out: dict[str, int] = {}
        with self._lock:
            for record in self._records:
                out[record.reason] = out.get(record.reason, 0) + 1
        return out

    def replay(
        self,
        handler: Callable[[Any], None],
        reasons: Iterable[str] | None = None,
    ) -> int:
        """Drain quarantined payloads back through ``handler``.

        Only records whose reason is in ``reasons`` (default: all) are
        replayed; replayed records are removed from the queue, the rest
        stay.  Returns the number of payloads replayed.  A handler that
        raises stops the replay with already-handled records removed.
        """
        wanted = set(reasons) if reasons is not None else None
        with self._lock:
            to_replay = [
                r
                for r in self._records
                if wanted is None or r.reason in wanted
            ]
            self._records = [
                r
                for r in self._records
                if not (wanted is None or r.reason in wanted)
            ]
        replayed = 0
        try:
            for record in to_replay:
                handler(record.payload)
                replayed += 1
        except Exception:
            # Put back what was not yet handled (including the failing
            # record), preserving order.
            with self._lock:
                self._records = to_replay[replayed:] + self._records
            raise
        return replayed

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @staticmethod
    def load_jsonl(path: str | Path) -> list[dict[str, Any]]:
        """Read a disk mirror back as plain dicts (the inspection story).

        A torn final line (crash mid-append, mirror not yet reopened) is
        skipped with a warning; a malformed line *before* the tail still
        raises, because that is corruption, not a crash artifact.
        """
        out: list[dict[str, Any]] = []
        lines = Path(path).read_text(encoding="utf-8").split("\n")
        for idx, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                if idx >= len(lines) - 2:
                    _log.warning(
                        "skipping torn final line in dead-letter mirror %s",
                        path,
                    )
                    break
                raise
        return out
