"""Atomic on-disk checkpoints of KV-store state.

The paper's production system survives worker crashes because Storm replays
unacked tuples and the model state lives in external storage (§5.1-5.2).
This module provides the durable half of that story for this repo's
in-process KV store: a :class:`CheckpointManager` snapshots every live
entry — MF vectors, biases, the ``mu`` accumulator, user histories,
similar-video tables — into a versioned directory and restores it into a
fresh store.

On-disk layout (all under the manager's root directory)::

    ckpt-00000001/
        entries.pkl     # pickled list of EntrySnapshot records
        manifest.json   # id, wal_seq, entry count, sha256 of entries.pkl
    ckpt-00000002/
        ...

A checkpoint is *atomic by construction*: entries are written into a
``tmp-*`` staging directory, the manifest (with a checksum over the entry
payload) is written last, and only then is the directory renamed to its
final ``ckpt-*`` name.  A crash mid-write leaves a ``tmp-*`` directory that
restore ignores; a manifest whose checksum does not match its payload is
rejected with :class:`~repro.errors.CheckpointError`.

Values are serialised with :mod:`pickle` — checkpoints are trusted local
state written and read by the same process family, and the stored values
(numpy arrays, tuples, dicts) have no stable text encoding.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..errors import CheckpointError
from ..kvstore import EntrySnapshot, KVStore

_PREFIX = "ckpt-"
_TMP_PREFIX = "tmp-"
_ENTRIES_FILE = "entries.pkl"
_MANIFEST_FILE = "manifest.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class CheckpointInfo:
    """Manifest of one completed checkpoint.

    ``metadata`` carries caller-supplied, JSON-serialisable annotations —
    e.g. the model backend (``{"mf_backend": "arena"}``) so operators can
    see at a glance which parameter layout a snapshot holds.  It travels
    in the manifest only; restore semantics never depend on it.
    """

    checkpoint_id: int
    path: str
    wal_seq: int
    n_entries: int
    created_at: float
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{_PREFIX}{self.checkpoint_id:08d}"


class CheckpointManager:
    """Writes, lists, restores, and prunes checkpoints under one root.

    ``retain`` bounds how many completed checkpoints are kept; older ones
    are pruned after each successful :meth:`create`.  ``fsync=False`` skips
    the per-file fsync (faster, used by tests); the rename-after-manifest
    protocol still guarantees no torn checkpoint is ever restored.
    """

    def __init__(
        self, root: str | os.PathLike, retain: int = 3, fsync: bool = True
    ) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self.fsync = fsync

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def create(
        self,
        store: KVStore,
        wal_seq: int = 0,
        created_at: float = 0.0,
        metadata: Mapping[str, object] | None = None,
    ) -> CheckpointInfo:
        """Snapshot ``store`` as the next checkpoint; return its manifest.

        ``wal_seq`` records the last WAL sequence number already reflected
        in the snapshot, so recovery knows where replay must resume.
        ``metadata`` (JSON-serialisable mapping) is stored verbatim in the
        manifest and surfaced on :class:`CheckpointInfo`.
        """
        checkpoint_id = self._next_id()
        metadata = dict(metadata or {})
        entries = store.snapshot_entries()
        payload = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)

        staging = self.root / f"{_TMP_PREFIX}{checkpoint_id:08d}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            self._write_file(staging / _ENTRIES_FILE, payload)
            manifest = {
                "format": _FORMAT_VERSION,
                "checkpoint_id": checkpoint_id,
                "wal_seq": wal_seq,
                "n_entries": len(entries),
                "created_at": created_at,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "metadata": metadata,
            }
            self._write_file(
                staging / _MANIFEST_FILE,
                json.dumps(manifest, indent=2).encode("utf-8"),
            )
            final = self.root / f"{_PREFIX}{checkpoint_id:08d}"
            os.rename(staging, final)
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise CheckpointError(f"failed to write checkpoint: {exc}") from exc
        self._prune()
        return CheckpointInfo(
            checkpoint_id=checkpoint_id,
            path=str(final),
            wal_seq=wal_seq,
            n_entries=len(entries),
            created_at=created_at,
            metadata=metadata,
        )

    def _write_file(self, path: Path, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------

    def list(self) -> list[CheckpointInfo]:
        """Completed checkpoints, oldest first.  Torn ``tmp-*`` directories
        and directories without a manifest are skipped silently."""
        infos: list[CheckpointInfo] = []
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or not path.name.startswith(_PREFIX):
                continue
            manifest_path = path / _MANIFEST_FILE
            if not manifest_path.exists():
                continue
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            infos.append(
                CheckpointInfo(
                    checkpoint_id=int(manifest["checkpoint_id"]),
                    path=str(path),
                    wal_seq=int(manifest["wal_seq"]),
                    n_entries=int(manifest["n_entries"]),
                    created_at=float(manifest["created_at"]),
                    metadata=dict(manifest.get("metadata", {})),
                )
            )
        infos.sort(key=lambda info: info.checkpoint_id)
        return infos

    def latest(self) -> CheckpointInfo | None:
        """The most recent completed checkpoint, or ``None``."""
        infos = self.list()
        return infos[-1] if infos else None

    def _next_id(self) -> int:
        existing = [info.checkpoint_id for info in self.list()]
        return (max(existing) + 1) if existing else 1

    # ------------------------------------------------------------------
    # Restoring
    # ------------------------------------------------------------------

    def restore(self, info: CheckpointInfo, store: KVStore) -> int:
        """Load checkpoint ``info`` into ``store``; return entries loaded.

        Verifies the payload checksum against the manifest before touching
        the store, so a corrupt checkpoint never half-loads.
        """
        path = Path(info.path)
        manifest_path = path / _MANIFEST_FILE
        entries_path = path / _ENTRIES_FILE
        try:
            manifest = json.loads(manifest_path.read_text())
            payload = entries_path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint {info.name} unreadable: {exc}"
            ) from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest["sha256"]:
            raise CheckpointError(
                f"checkpoint {info.name} corrupt: checksum mismatch"
            )
        entries: list[EntrySnapshot] = pickle.loads(payload)
        return store.restore_entries(entries)

    def restore_latest(self, store: KVStore) -> CheckpointInfo | None:
        """Restore the newest checkpoint into ``store``.

        Returns its manifest, or ``None`` when no checkpoint exists (the
        caller then recovers from the WAL alone).
        """
        info = self.latest()
        if info is None:
            return None
        self.restore(info, store)
        return info

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def _prune(self) -> None:
        infos = self.list()
        for info in infos[: max(0, len(infos) - self.retain)]:
            shutil.rmtree(info.path, ignore_errors=True)
