"""Atomic on-disk checkpoints of KV-store state.

The paper's production system survives worker crashes because Storm replays
unacked tuples and the model state lives in external storage (§5.1-5.2).
This module provides the durable half of that story for this repo's
in-process KV store: a :class:`CheckpointManager` snapshots every live
entry — MF vectors, biases, the ``mu`` accumulator, user histories,
similar-video tables — into a versioned directory and restores it into a
fresh store.

On-disk layout (all under the manager's root directory)::

    ckpt-00000001/
        entries.pkl     # pickled list of EntrySnapshot records
        manifest.json   # id, wal_seq, entry count, sha256 of entries.pkl
    ckpt-00000002/
        manifest.json   # incremental: references sealed durable segments
    ...

A checkpoint is *atomic by construction*: entries are written into a
``tmp-*`` staging directory, the manifest (with a checksum over the entry
payload) is written last, and only then is the directory renamed to its
final ``ckpt-*`` name.  A crash mid-write leaves a ``tmp-*`` directory that
restore ignores; a manifest whose checksum does not match its payload is
rejected with :class:`~repro.errors.CheckpointError`.

Two checkpoint kinds share that protocol:

* ``kind="full"`` (:meth:`CheckpointManager.create`) — every live entry
  pickled into ``entries.pkl``; restores into any store.
* ``kind="segments"`` (:meth:`CheckpointManager.create_incremental`) —
  for a :class:`~repro.kvstore.durable.DurableKVStore`-backed tier, the
  manifest just *references* the sealed segment files (name + size) that
  already hold the state durably; nothing is re-pickled, so checkpoint
  cost is O(manifest) instead of O(dataset).  Restore rolls the durable
  store back to exactly that segment set (deleting newer segments) and
  drops any caches layered above it.  Compaction deletes referenced
  segments, so older incremental checkpoints go stale —
  :class:`~repro.errors.StaleCheckpointError` tells recovery to fall
  back to a full WAL replay.

Values are serialised with :mod:`pickle` — checkpoints are trusted local
state written and read by the same process family, and the stored values
(numpy arrays, tuples, dicts) have no stable text encoding.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..errors import CheckpointError, DurableStoreError, StaleCheckpointError
from ..kvstore import EntrySnapshot, KVStore, drop_caches, unwrap_durable

_PREFIX = "ckpt-"
_TMP_PREFIX = "tmp-"
_ENTRIES_FILE = "entries.pkl"
_MANIFEST_FILE = "manifest.json"
_FORMAT_VERSION = 1

KIND_FULL = "full"
KIND_SEGMENTS = "segments"


def _segments_digest(segments: list[dict]) -> str:
    """Canonical checksum over an incremental checkpoint's segment list."""
    canonical = json.dumps(segments, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


@dataclass(frozen=True, slots=True)
class CheckpointInfo:
    """Manifest of one completed checkpoint.

    ``metadata`` carries caller-supplied, JSON-serialisable annotations —
    e.g. the model backend (``{"mf_backend": "arena"}``) so operators can
    see at a glance which parameter layout a snapshot holds.  It travels
    in the manifest only; restore semantics never depend on it.
    """

    checkpoint_id: int
    path: str
    wal_seq: int
    n_entries: int
    created_at: float
    metadata: Mapping[str, object] = field(default_factory=dict)
    kind: str = KIND_FULL

    @property
    def name(self) -> str:
        return f"{_PREFIX}{self.checkpoint_id:08d}"

    @property
    def incremental(self) -> bool:
        return self.kind == KIND_SEGMENTS


class CheckpointManager:
    """Writes, lists, restores, and prunes checkpoints under one root.

    ``retain`` bounds how many completed checkpoints are kept; older ones
    are pruned after each successful :meth:`create`.  ``fsync=False`` skips
    the per-file fsync (faster, used by tests); the rename-after-manifest
    protocol still guarantees no torn checkpoint is ever restored.
    """

    def __init__(
        self, root: str | os.PathLike, retain: int = 3, fsync: bool = True
    ) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self.fsync = fsync

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def create(
        self,
        store: KVStore,
        wal_seq: int = 0,
        created_at: float = 0.0,
        metadata: Mapping[str, object] | None = None,
    ) -> CheckpointInfo:
        """Snapshot ``store`` as the next checkpoint; return its manifest.

        ``wal_seq`` records the last WAL sequence number already reflected
        in the snapshot, so recovery knows where replay must resume.
        ``metadata`` (JSON-serialisable mapping) is stored verbatim in the
        manifest and surfaced on :class:`CheckpointInfo`.
        """
        checkpoint_id = self._next_id()
        metadata = dict(metadata or {})
        entries = store.snapshot_entries()
        payload = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)

        staging = self.root / f"{_TMP_PREFIX}{checkpoint_id:08d}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            self._write_file(staging / _ENTRIES_FILE, payload)
            manifest = {
                "format": _FORMAT_VERSION,
                "kind": KIND_FULL,
                "checkpoint_id": checkpoint_id,
                "wal_seq": wal_seq,
                "n_entries": len(entries),
                "created_at": created_at,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "metadata": metadata,
            }
            self._write_file(
                staging / _MANIFEST_FILE,
                json.dumps(manifest, indent=2).encode("utf-8"),
            )
            final = self.root / f"{_PREFIX}{checkpoint_id:08d}"
            os.rename(staging, final)
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise CheckpointError(f"failed to write checkpoint: {exc}") from exc
        self._prune()
        return CheckpointInfo(
            checkpoint_id=checkpoint_id,
            path=str(final),
            wal_seq=wal_seq,
            n_entries=len(entries),
            created_at=created_at,
            metadata=metadata,
            kind=KIND_FULL,
        )

    def create_incremental(
        self,
        store: KVStore,
        wal_seq: int = 0,
        created_at: float = 0.0,
        metadata: Mapping[str, object] | None = None,
    ) -> CheckpointInfo:
        """Checkpoint a durable-backed store by *referencing* its segments.

        ``store`` must be (or wrap) a
        :class:`~repro.kvstore.durable.DurableKVStore`.  The active
        segment is sealed first, so the referenced files are immutable and
        fsynced; the manifest then records their names and sizes plus a
        checksum over that list.  Cost is independent of dataset size —
        no entry is re-pickled.
        """
        durable = unwrap_durable(store)
        if durable is None:
            raise CheckpointError(
                "incremental checkpoints need a DurableKVStore backing tier "
                f"(got {type(store).__name__})"
            )
        checkpoint_id = self._next_id()
        metadata = dict(metadata or {})
        durable.seal_active()
        segments = [
            {"name": name, "bytes": size}
            for name, size in durable.sealed_segments()
        ]
        n_entries = len(durable)

        staging = self.root / f"{_TMP_PREFIX}{checkpoint_id:08d}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            manifest = {
                "format": _FORMAT_VERSION,
                "kind": KIND_SEGMENTS,
                "checkpoint_id": checkpoint_id,
                "wal_seq": wal_seq,
                "n_entries": n_entries,
                "created_at": created_at,
                "segments": segments,
                "sha256": _segments_digest(segments),
                "metadata": metadata,
            }
            self._write_file(
                staging / _MANIFEST_FILE,
                json.dumps(manifest, indent=2).encode("utf-8"),
            )
            final = self.root / f"{_PREFIX}{checkpoint_id:08d}"
            os.rename(staging, final)
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise CheckpointError(f"failed to write checkpoint: {exc}") from exc
        self._prune()
        return CheckpointInfo(
            checkpoint_id=checkpoint_id,
            path=str(final),
            wal_seq=wal_seq,
            n_entries=n_entries,
            created_at=created_at,
            metadata=metadata,
            kind=KIND_SEGMENTS,
        )

    def _write_file(self, path: Path, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------

    def list(self) -> list[CheckpointInfo]:
        """Completed checkpoints, oldest first.  Torn ``tmp-*`` directories
        and directories without a manifest are skipped silently."""
        infos: list[CheckpointInfo] = []
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or not path.name.startswith(_PREFIX):
                continue
            manifest_path = path / _MANIFEST_FILE
            if not manifest_path.exists():
                continue
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            infos.append(
                CheckpointInfo(
                    checkpoint_id=int(manifest["checkpoint_id"]),
                    path=str(path),
                    wal_seq=int(manifest["wal_seq"]),
                    n_entries=int(manifest["n_entries"]),
                    created_at=float(manifest["created_at"]),
                    metadata=dict(manifest.get("metadata", {})),
                    kind=str(manifest.get("kind", KIND_FULL)),
                )
            )
        infos.sort(key=lambda info: info.checkpoint_id)
        return infos

    def latest(self) -> CheckpointInfo | None:
        """The most recent completed checkpoint, or ``None``."""
        infos = self.list()
        return infos[-1] if infos else None

    def _next_id(self) -> int:
        existing = [info.checkpoint_id for info in self.list()]
        return (max(existing) + 1) if existing else 1

    # ------------------------------------------------------------------
    # Restoring
    # ------------------------------------------------------------------

    def restore(self, info: CheckpointInfo, store: KVStore) -> int:
        """Load checkpoint ``info`` into ``store``; return entries loaded.

        Verifies the payload checksum against the manifest before touching
        the store, so a corrupt checkpoint never half-loads.  Incremental
        (``kind="segments"``) checkpoints restore by rolling the durable
        backing tier back to the referenced segment set; a referenced
        segment that is missing or resized (compaction ran after the
        checkpoint) raises :class:`~repro.errors.StaleCheckpointError`
        with the store untouched.
        """
        path = Path(info.path)
        manifest_path = path / _MANIFEST_FILE
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint {info.name} unreadable: {exc}"
            ) from exc
        if manifest.get("kind", KIND_FULL) == KIND_SEGMENTS:
            return self._restore_segments(info, manifest, store)

        entries_path = path / _ENTRIES_FILE
        try:
            payload = entries_path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint {info.name} unreadable: {exc}"
            ) from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest["sha256"]:
            raise CheckpointError(
                f"checkpoint {info.name} corrupt: checksum mismatch"
            )
        entries: list[EntrySnapshot] = pickle.loads(payload)
        return store.restore_entries(entries)

    def _restore_segments(
        self, info: CheckpointInfo, manifest: dict, store: KVStore
    ) -> int:
        segments = list(manifest.get("segments", []))
        if _segments_digest(segments) != manifest["sha256"]:
            raise CheckpointError(
                f"checkpoint {info.name} corrupt: segment-list checksum mismatch"
            )
        durable = unwrap_durable(store)
        if durable is None:
            raise CheckpointError(
                f"checkpoint {info.name} is incremental but the target store "
                f"({type(store).__name__}) has no DurableKVStore backing tier"
            )
        # Verify the referenced files before touching any state: sealed
        # segments are immutable, so a size mismatch means the file is not
        # the one the checkpoint saw (and a missing one means compaction
        # removed it after the checkpoint was taken).
        problems = []
        for segment in segments:
            seg_path = durable.root / str(segment["name"])
            if not seg_path.is_file():
                problems.append(f"{segment['name']} missing")
            elif seg_path.stat().st_size != int(segment["bytes"]):
                problems.append(
                    f"{segment['name']} is {seg_path.stat().st_size} bytes, "
                    f"expected {segment['bytes']}"
                )
        if problems:
            raise StaleCheckpointError(
                f"checkpoint {info.name} references segments that no longer "
                f"match: {'; '.join(problems)}"
            )
        try:
            count = durable.restore_to_segments(
                [str(segment["name"]) for segment in segments]
            )
        except DurableStoreError as exc:
            raise StaleCheckpointError(
                f"checkpoint {info.name} could not be restored: {exc}"
            ) from exc
        # Layers above the durable tier may hold values from before the
        # rollback; make them re-read through.
        drop_caches(store)
        return count

    def restore_latest(self, store: KVStore) -> CheckpointInfo | None:
        """Restore the newest checkpoint into ``store``.

        Returns its manifest, or ``None`` when no checkpoint exists (the
        caller then recovers from the WAL alone).
        """
        info = self.latest()
        if info is None:
            return None
        self.restore(info, store)
        return info

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def _prune(self) -> None:
        infos = self.list()
        for info in infos[: max(0, len(infos) - self.retain)]:
            shutil.rmtree(info.path, ignore_errors=True)
