"""Deterministic fault injection for topologies and the KV store.

Chaos testing only proves something when the chaos is reproducible: every
fault source here is driven either by a per-worker counter (crash every Nth
tuple) or by a per-worker RNG seeded from ``(plan.seed, component,
worker)``, so a failing run can be replayed exactly.

Three fault surfaces:

* **worker crashes** — :class:`ChaosBolt` raises
  :class:`~repro.errors.InjectedFault` on a schedule *before* delegating,
  simulating a worker dying with a tuple in hand; under a
  :class:`~repro.reliability.Supervisor` the executor restarts the worker
  and retries the tuple.
* **tuple drops / duplicates** — emitted tuples are suppressed or doubled
  at a seeded rate, exercising downstream idempotence (history dedup,
  last-write-wins vector storage).
* **transient KV errors** — :class:`FlakyKVStore` wraps any store and makes
  every Nth operation raise :class:`~repro.errors.TransientKVError`,
  simulating a shard timing out.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..errors import InjectedFault, TransientKVError
from ..hashing import stable_hash
from ..kvstore import Key, KVStore
from ..storm import Bolt, Collector, ComponentContext, StreamTuple, Topology
from ..storm.topology import ComponentSpec


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A reproducible chaos schedule.

    ``crash_every`` maps component names to a period: that component's
    workers raise on their Nth, 2Nth, ... delivered tuple.  ``drop_rate``
    and ``duplicate_rate`` apply to every emitted tuple of every wrapped
    bolt.
    """

    seed: int = 0
    crash_every: Mapping[str, int] = field(default_factory=dict)
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    redeliver_rate: float = 0.0

    def __post_init__(self) -> None:
        for name, period in self.crash_every.items():
            if period < 1:
                raise ValueError(
                    f"crash_every[{name!r}] must be >= 1, got {period}"
                )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1), got {self.duplicate_rate}"
            )
        if not 0.0 <= self.redeliver_rate < 1.0:
            raise ValueError(
                f"redeliver_rate must be in [0, 1), got {self.redeliver_rate}"
            )


class ChaosBolt(Bolt):
    """Wraps a real bolt with the plan's crash/drop/duplicate faults.

    The crash fires before the inner bolt runs, so a retried tuple is not
    half-processed twice by the same instance.  A restarted worker is a
    fresh :class:`ChaosBolt` whose counter starts over — exactly like a
    rescheduled Storm worker.
    """

    def __init__(self, inner: Bolt, component: str, plan: FaultPlan) -> None:
        self.inner = inner
        self.component = component
        self.plan = plan
        self._count = 0
        self._rng = random.Random(stable_hash((plan.seed, component)))

    def prepare(self, ctx: ComponentContext) -> None:
        self._rng = random.Random(
            stable_hash((self.plan.seed, self.component, ctx.worker_index))
        )
        self.inner.prepare(ctx)

    def _deliver_once(self, tup: StreamTuple, collector: Collector) -> None:
        staging = Collector()
        self.inner.process(tup, staging)
        for emitted in staging.drain():
            roll = self._rng.random()
            if roll < self.plan.drop_rate:
                continue
            collector.emit(emitted, stream=emitted.stream)
            if roll < self.plan.drop_rate + self.plan.duplicate_rate:
                collector.emit(emitted, stream=emitted.stream)

    def flush(self, collector: Collector) -> None:
        # End-of-stream flush passes through un-faulted: the crash/drop
        # schedules are defined over delivered tuples, not flushes.
        self.inner.flush(collector)

    def cleanup(self) -> None:
        self.inner.cleanup()

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        self._count += 1
        period = self.plan.crash_every.get(self.component)
        if period is not None and self._count % period == 0:
            raise InjectedFault(
                f"injected crash in {self.component!r} at tuple {self._count}"
            )
        self._deliver_once(tup, collector)
        # At-least-once redelivery: the same input tuple is handed to the
        # bolt a second time, as if an upstream ack was lost and the tuple
        # replayed — the fault the ingest dedup window exists to absorb.
        if (
            self.plan.redeliver_rate
            and self._rng.random() < self.plan.redeliver_rate
        ):
            self._deliver_once(tup, collector)


def wrap_topology(
    topology: Topology,
    plan: FaultPlan,
    components: Iterable[str] | None = None,
) -> Topology:
    """Interpose :class:`ChaosBolt` around bolts of ``topology``.

    ``components`` restricts the chaos to the named bolts (default: every
    bolt) — e.g. inject redeliveries only at the ingest stage.
    """
    wanted = set(components) if components is not None else None

    def _wrap(spec: ComponentSpec) -> Callable[[], Bolt]:
        inner_factory = spec.factory
        if wanted is not None and spec.name not in wanted:
            return inner_factory
        return lambda: ChaosBolt(inner_factory(), spec.name, plan)

    return topology.with_wrapped_bolts(_wrap)


class FlakyKVStore(KVStore):
    """A store whose operations fail transiently on a fixed schedule.

    Every ``error_every``-th operation (across get/put/update/CAS/delete)
    raises :class:`~repro.errors.TransientKVError` *before* touching the
    underlying store, so a retried operation sees unchanged state.
    ``error_every=0`` disables injection; :meth:`fail_next` forces the next
    operation to fail regardless, for targeted tests.
    """

    def __init__(self, inner: KVStore, error_every: int = 0) -> None:
        if error_every < 0:
            raise ValueError(f"error_every must be >= 0, got {error_every}")
        self.inner = inner
        self.error_every = error_every
        self.errors_raised = 0
        self._ops = 0
        self._force_fail = 0
        self._lock = threading.Lock()

    def fail_next(self, n: int = 1) -> None:
        """Make the next ``n`` operations raise unconditionally."""
        with self._lock:
            self._force_fail += n

    def _maybe_fail(self, op: str, key: Any) -> None:
        with self._lock:
            self._ops += 1
            fail = False
            if self._force_fail > 0:
                self._force_fail -= 1
                fail = True
            elif self.error_every and self._ops % self.error_every == 0:
                fail = True
            if fail:
                self.errors_raised += 1
        if fail:
            raise TransientKVError(
                f"injected transient failure on {op}({key!r})"
            )

    # -- KVStore API (fault check, then delegate) --------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        self._maybe_fail("get", key)
        return self.inner.get(key, default)

    def get_strict(self, key: Key) -> Any:
        self._maybe_fail("get_strict", key)
        return self.inner.get_strict(key)

    def put(self, key: Key, value: Any, ttl: float | None = None) -> int:
        self._maybe_fail("put", key)
        return self.inner.put(key, value, ttl=ttl)

    def delete(self, key: Key) -> bool:
        self._maybe_fail("delete", key)
        return self.inner.delete(key)

    def update(self, key: Key, fn: Callable[[Any], Any], default: Any = None) -> Any:
        self._maybe_fail("update", key)
        return self.inner.update(key, fn, default=default)

    def compare_and_set(self, key: Key, value: Any, expected_version: int) -> int:
        self._maybe_fail("compare_and_set", key)
        return self.inner.compare_and_set(key, value, expected_version)

    def version(self, key: Key) -> int:
        return self.inner.version(key)

    def __contains__(self, key: Key) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> Iterator[Key]:
        return self.inner.keys()

    def snapshot_entries(self):
        return self.inner.snapshot_entries()

    def restore_entries(self, entries):
        return self.inner.restore_entries(entries)
