"""Fault tolerance: checkpoints, WAL replay, fault injection, supervision.

The paper's production deployment leans on Storm's fault tolerance — failed
tuples are replayed, and the model state in external KV storage survives
worker crashes (§5.1-5.2).  This package rebuilds that guarantee for the
in-process substrate:

* :mod:`~repro.reliability.checkpoint` — atomic, versioned on-disk
  snapshots of the whole KV store;
* :mod:`~repro.reliability.wal` — a segment-rotated write-ahead log of
  user actions;
* :mod:`~repro.reliability.replay` — crash recovery = restore last
  checkpoint + replay the WAL tail (at-least-once);
* :mod:`~repro.reliability.supervisor` — bounded worker restarts with
  exponential backoff, honoured by both executors;
* :mod:`~repro.reliability.faults` — seeded, deterministic chaos: worker
  crashes, tuple drops/duplicates/redeliveries, transient KV errors;
* :mod:`~repro.reliability.overload` — admission control (token bucket +
  concurrency cap) and circuit breakers, the serve-under-load half of
  robustness;
* :mod:`~repro.reliability.deadletter` — the quarantine for rejected
  ingest tuples, with reason codes, inspection and replay.

Recovery semantics are documented in DESIGN.md ("Fault-tolerance
subsystem"), overload semantics in DESIGN.md ("Overload semantics"); the
chaos/recovery test suites live in ``tests/reliability`` and
``tests/overload``.
"""

from .checkpoint import (
    KIND_FULL,
    KIND_SEGMENTS,
    CheckpointInfo,
    CheckpointManager,
)
from .deadletter import (
    REASON_DUPLICATE,
    REASON_LATE,
    REASON_MALFORMED,
    DeadLetter,
    DeadLetterStore,
)
from .faults import ChaosBolt, FaultPlan, FlakyKVStore, wrap_topology
from .overload import (
    AdmissionController,
    AdmissionDecision,
    BreakerState,
    CircuitBreaker,
    ConcurrencyLimiter,
    TokenBucket,
)
from .replay import RecoveryManager, RecoveryReport
from .supervisor import RetryPolicy, Supervisor
from .wal import ActionWAL

__all__ = [
    "CheckpointManager",
    "CheckpointInfo",
    "KIND_FULL",
    "KIND_SEGMENTS",
    "ActionWAL",
    "RecoveryManager",
    "RecoveryReport",
    "RetryPolicy",
    "Supervisor",
    "FaultPlan",
    "ChaosBolt",
    "FlakyKVStore",
    "wrap_topology",
    "TokenBucket",
    "ConcurrencyLimiter",
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "BreakerState",
    "DeadLetterStore",
    "DeadLetter",
    "REASON_MALFORMED",
    "REASON_DUPLICATE",
    "REASON_LATE",
]
