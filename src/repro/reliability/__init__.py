"""Fault tolerance: checkpoints, WAL replay, fault injection, supervision.

The paper's production deployment leans on Storm's fault tolerance — failed
tuples are replayed, and the model state in external KV storage survives
worker crashes (§5.1-5.2).  This package rebuilds that guarantee for the
in-process substrate:

* :mod:`~repro.reliability.checkpoint` — atomic, versioned on-disk
  snapshots of the whole KV store;
* :mod:`~repro.reliability.wal` — a segment-rotated write-ahead log of
  user actions;
* :mod:`~repro.reliability.replay` — crash recovery = restore last
  checkpoint + replay the WAL tail (at-least-once);
* :mod:`~repro.reliability.supervisor` — bounded worker restarts with
  exponential backoff, honoured by both executors;
* :mod:`~repro.reliability.faults` — seeded, deterministic chaos: worker
  crashes, tuple drops/duplicates, transient KV errors.

Recovery semantics are documented in DESIGN.md ("Fault-tolerance
subsystem"); the chaos/recovery test suite lives in ``tests/reliability``.
"""

from .checkpoint import CheckpointInfo, CheckpointManager
from .faults import ChaosBolt, FaultPlan, FlakyKVStore, wrap_topology
from .replay import RecoveryManager, RecoveryReport
from .supervisor import RetryPolicy, Supervisor
from .wal import ActionWAL

__all__ = [
    "CheckpointManager",
    "CheckpointInfo",
    "ActionWAL",
    "RecoveryManager",
    "RecoveryReport",
    "RetryPolicy",
    "Supervisor",
    "FaultPlan",
    "ChaosBolt",
    "FlakyKVStore",
    "wrap_topology",
]
