"""Utilities shared by the paper-reproduction benchmarks."""

from __future__ import annotations

from pathlib import Path

from _emit import bench_smoke

from repro.clock import VirtualClock
from repro.config import ReproConfig
from repro.core import RealtimeRecommender
from repro.core.variants import grid_searched_rates
from repro.data import SyntheticWorld
from repro.data.synthetic import paper_world_config

RESULTS_DIR = Path(__file__).parent / "results"

#: The world every offline benchmark runs on.
PAPER_SEED = 2016
EXTRA_SEEDS = (7, 99)


def smoke_scaled(full: int, smoke: int) -> int:
    """``smoke`` when REPRO_BENCH_SMOKE is set, else ``full``.

    The CI bench-smoke job runs every harnessed benchmark at reduced
    scale just to prove the path works and the emitted JSON validates;
    nightly/full runs use the paper-scale numbers.
    """
    return smoke if bench_smoke() else full


def variant_config(variant, f: int = 16, init_scale: float = 0.03) -> ReproConfig:
    """The grid-searched configuration for one §6.1.2 variant."""
    eta0, alpha = grid_searched_rates(variant)
    return ReproConfig().with_overrides(
        online={"eta0": eta0, "alpha": alpha},
        mf={"f": f, "init_scale": init_scale},
        weights={"click": 0.5},
    )


def build_world(seed: int = PAPER_SEED, **overrides) -> SyntheticWorld:
    if bench_smoke():
        overrides.setdefault("n_users", 80)
        overrides.setdefault("n_videos", 100)
    return SyntheticWorld(paper_world_config(seed=seed, **overrides))


def train_variant(
    world, train_actions, variant, enable_demographic=False, obs=None
):
    """Train one fresh RealtimeRecommender on a stream (single pass)."""
    recommender = RealtimeRecommender(
        world.videos,
        users=world.users,
        config=variant_config(variant),
        variant=variant,
        clock=VirtualClock(0.0),
        enable_demographic=enable_demographic,
        obs=obs,
    )
    recommender.observe_stream(train_actions)
    return recommender


def report(name: str, text: str) -> None:
    """Print a benchmark's table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def format_rows(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
