"""Request latency — real-time recommendation generation (§4.1, §6).

Paper: the production system answers recommendation requests "with latency
of milliseconds" thanks to the candidate-selection design (similar-video
tables avoid scoring the whole catalogue).  This benchmark measures the
end-to-end `recommend()` latency on a trained system and checks it stays in
the millisecond band; it also verifies the design claim directly by timing
the naive full-catalogue scoring alternative.
"""

import time

import numpy as np

from repro.serving import RecRequest, RequestRouter

from _emit import emit_bench
from _helpers import format_rows, report, smoke_scaled


def test_recommendation_request_latency(
    benchmark, paper_world, paper_split, trained_variants, obs_trained
):
    recommender = trained_variants["CombineModel"]
    users = [u for u in list(paper_world.users) if recommender.history.recent(u)]
    now = max(a.timestamp for a in paper_split.train) + 1
    cursor = {"i": 0}

    def serve_one():
        user = users[cursor["i"] % len(users)]
        cursor["i"] += 1
        return recommender.recommend_ids(user, n=10, now=now)

    benchmark(serve_one)

    # Measure a latency distribution explicitly for the report.
    samples = []
    for user in users[: smoke_scaled(200, 60)]:
        started = time.perf_counter()
        recommender.recommend_ids(user, n=10, now=now)
        samples.append((time.perf_counter() - started) * 1000.0)

    # The naive alternative: score every video in the catalogue.
    naive = []
    all_videos = list(paper_world.videos)
    for user in users[: smoke_scaled(50, 20)]:
        started = time.perf_counter()
        scores = recommender.model.predict_many(user, all_videos)
        np.argsort(-scores)[:10]
        naive.append((time.perf_counter() - started) * 1000.0)

    rows = [
        {
            "path": "candidate tables (paper design)",
            "p50_ms": round(float(np.percentile(samples, 50)), 3),
            "p99_ms": round(float(np.percentile(samples, 99)), 3),
            "mean_ms": round(float(np.mean(samples)), 3),
        },
        {
            "path": "naive full-catalogue scoring",
            "p50_ms": round(float(np.percentile(naive, 50)), 3),
            "p99_ms": round(float(np.percentile(naive, 99)), 3),
            "mean_ms": round(float(np.mean(naive)), 3),
        },
    ]
    report("request_latency", format_rows(rows))

    # Per-stage latency attribution: route a batch of requests through an
    # obs-enabled recommender so the tracer can break the end-to-end time
    # into router -> recommender -> candidate select / MF predict / KV.
    obs, traced_recommender = obs_trained
    traced_router = RequestRouter(traced_recommender, obs=obs)
    traced_users = [
        u
        for u in list(paper_world.users)
        if traced_recommender.history.recent(u)
    ]
    for user in traced_users[: smoke_scaled(200, 50)]:
        traced_router.handle(RecRequest(user_id=user, n=10, timestamp=now))
    spans = obs.tracer.stage_latencies()
    assert "router.handle" in spans and "recommender.recommend" in spans

    emit_bench(
        "latency",
        metrics={
            "p50_ms": float(np.percentile(samples, 50)),
            "p95_ms": float(np.percentile(samples, 95)),
            "p99_ms": float(np.percentile(samples, 99)),
            "mean_ms": float(np.mean(samples)),
            "naive_p50_ms": float(np.percentile(naive, 50)),
            "naive_p99_ms": float(np.percentile(naive, 99)),
        },
        params={"requests_sampled": len(samples), "top_n": 10},
        spans=spans,
    )

    # Millisecond-class serving, as in production.
    assert np.percentile(samples, 99) < 100.0
    assert np.mean(samples) < 20.0
