"""Request latency — real-time recommendation generation (§4.1, §6).

Paper: the production system answers recommendation requests "with latency
of milliseconds" thanks to the candidate-selection design (similar-video
tables avoid scoring the whole catalogue).  This benchmark measures the
end-to-end `recommend()` latency on a trained system and checks it stays in
the millisecond band; it also verifies the design claim directly by timing
the naive full-catalogue scoring alternative.
"""

import time

import numpy as np

from repro.clock import VirtualClock
from repro.core import COMBINE_MODEL

from _helpers import build_world, format_rows, report, train_variant


def test_recommendation_request_latency(benchmark, paper_world, paper_split, trained_variants):
    recommender = trained_variants["CombineModel"]
    users = [u for u in list(paper_world.users) if recommender.history.recent(u)]
    now = max(a.timestamp for a in paper_split.train) + 1
    cursor = {"i": 0}

    def serve_one():
        user = users[cursor["i"] % len(users)]
        cursor["i"] += 1
        return recommender.recommend_ids(user, n=10, now=now)

    benchmark(serve_one)

    # Measure a latency distribution explicitly for the report.
    samples = []
    for user in users[:200]:
        started = time.perf_counter()
        recommender.recommend_ids(user, n=10, now=now)
        samples.append((time.perf_counter() - started) * 1000.0)

    # The naive alternative: score every video in the catalogue.
    naive = []
    all_videos = list(paper_world.videos)
    for user in users[:50]:
        started = time.perf_counter()
        scores = recommender.model.predict_many(user, all_videos)
        np.argsort(-scores)[:10]
        naive.append((time.perf_counter() - started) * 1000.0)

    rows = [
        {
            "path": "candidate tables (paper design)",
            "p50_ms": round(float(np.percentile(samples, 50)), 3),
            "p99_ms": round(float(np.percentile(samples, 99)), 3),
            "mean_ms": round(float(np.mean(samples)), 3),
        },
        {
            "path": "naive full-catalogue scoring",
            "p50_ms": round(float(np.percentile(naive, 50)), 3),
            "p99_ms": round(float(np.percentile(naive, 99)), 3),
            "mean_ms": round(float(np.mean(naive)), 3),
        },
    ]
    report("request_latency", format_rows(rows))

    # Millisecond-class serving, as in production.
    assert np.percentile(samples, 99) < 100.0
    assert np.mean(samples) < 20.0
