"""Ablation — Algorithm 1's pure single-pass updating vs reservoir replay.

§2.2/§3.3: some online learners keep "a representative sample of the data
set in a reservoir to retrain the model", "which however is not
appropriate for large streaming data"; the paper's algorithm updates once
per action instead.  This ablation quantifies the trade: reservoir replay
multiplies the per-action training work by (1 + replays) for a modest
quality delta — the single-pass design gets most of the quality at a
fraction of the cost.
"""

import time

from repro.clock import VirtualClock
from repro.core import COMBINE_MODEL, RealtimeRecommender, ReservoirTrainer
from repro.eval import evaluate

from _helpers import format_rows, report, variant_config


class _ReplayRecommender(RealtimeRecommender):
    """RealtimeRecommender whose trainer replays from a reservoir."""

    def __init__(self, *args, replays=2, capacity=2000, **kwargs):
        super().__init__(*args, **kwargs)
        self.trainer = ReservoirTrainer(
            self.trainer, capacity=capacity, replays=replays
        )


def test_ablation_single_pass_vs_reservoir(
    benchmark, paper_world, paper_split, genuine_liked
):
    cfg = variant_config(COMBINE_MODEL)

    def measure(recommender):
        started = time.perf_counter()
        result = evaluate(
            recommender,
            paper_split.train,
            paper_split.test,
            videos=paper_world.videos,
            liked=genuine_liked,
        )
        elapsed = time.perf_counter() - started
        trainer = recommender.trainer
        # ReservoirTrainer wraps the OnlineTrainer; unwrap for stats.
        inner = getattr(trainer, "trainer", trainer)
        return result, elapsed, inner.stats.updated

    def run():
        single = RealtimeRecommender(
            paper_world.videos,
            users=paper_world.users,
            config=cfg,
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )
        replay = _ReplayRecommender(
            paper_world.videos,
            users=paper_world.users,
            config=cfg,
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
            enable_demographic=False,
            replays=2,
        )
        return {
            "single-pass (Algorithm 1)": measure(single),
            "reservoir replay (x3 work)": measure(replay),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "strategy": name,
            **result.summary(),
            "sgd_updates": updates,
            "train+eval_seconds": round(seconds, 1),
        }
        for name, (result, seconds, updates) in results.items()
    ]
    report("ablation_reservoir", format_rows(rows))

    single_result, _, single_updates = results["single-pass (Algorithm 1)"]
    replay_result, _, replay_updates = results["reservoir replay (x3 work)"]
    # The paper's position: single-pass keeps competitive quality...
    assert single_result.recall(10) >= replay_result.recall(10) * 0.8
    # ...while the reservoir multiplies the per-action training work
    # (deterministic SGD-step count; wall time is machine-load dependent).
    assert replay_updates > 1.5 * single_updates
