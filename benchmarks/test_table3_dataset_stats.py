"""Table 3 — dataset statistics after cleaning.

Paper: one week of Tencent Video data, cleaned to users with > 50 actions
and videos with > 50 related actions; reports #users, #videos, #actions,
#test actions; the implied sparsity is 0.48 %.

Here: the calibrated synthetic week, cleaned with the same rule (thresholds
scaled to the world's size), reporting the same row.  The shape to check:
after cleaning, a dense core remains whose sparsity is well below the
per-group sparsities of Table 4.
"""

from repro.data import dataset_stats, filter_active, split_by_day

from _helpers import format_rows, report

#: The paper keeps entities with >50 actions out of ~1e9/day; our world has
#: ~1e5 actions total, so thresholds scale down accordingly.
MIN_USER_ACTIONS = 40
MIN_VIDEO_ACTIONS = 40


def test_table3_dataset_statistics(benchmark, paper_actions):
    def run():
        cleaned = filter_active(
            paper_actions,
            min_user_actions=MIN_USER_ACTIONS,
            min_video_actions=MIN_VIDEO_ACTIONS,
        )
        split = split_by_day(cleaned, train_days=6)
        return cleaned, dataset_stats(split.train, split.test)

    cleaned, stats = benchmark.pedantic(run, rounds=1, iterations=1)

    row = stats.as_row()
    report(
        "table3_dataset_stats",
        format_rows(
            [row],
            columns=[
                "users",
                "videos",
                "actions",
                "test_actions",
                "sparsity_percent",
                "pair_sparsity_percent",
            ],
        ),
    )

    # Shape checks: cleaning kept a meaningful, denser core.
    assert stats.n_users > 0
    assert stats.n_videos > 0
    assert len(cleaned) < len(paper_actions)
    raw_train = split_by_day(list(paper_actions), train_days=6).train
    raw_stats = dataset_stats(raw_train)
    assert stats.sparsity >= raw_stats.sparsity
    # The user-video matrix remains sparse in the classical (unique pair)
    # sense even though actions repeat heavily (re-watching).
    assert stats.pair_sparsity_percent < 50.0
