"""Table 4 — per-demographic-group dataset statistics.

Paper: the three largest demographic groups have far denser user-video
matrices than the global one (average group sparsity 1.45 % vs global
0.48 %, roughly a 3x ratio) — the reason demographic training works
(§6.1.1).

Shape to reproduce: every one of the three largest demographic groups is
denser than the global matrix, on both density measures.  This effect
needs group-concentrated viewing over a catalogue no single group covers,
so this benchmark uses a wider, type-concentrated variant of the world
(800 videos, 16 types, sharper per-user type preferences).
"""

from repro.data import dataset_stats, group_stats

from _helpers import build_world, format_rows, report


def test_table4_group_statistics(benchmark):
    world = build_world(
        n_videos=800,
        n_types=16,
        type_temperature=8.0,
        popularity_mix=0.05,
        rewatch_mix=0.4,
        days=6,
    )
    actions = world.generate_actions()

    def run():
        global_stats = dataset_stats(actions)
        groups = group_stats(actions, world.users, top_k=3)
        return global_stats, groups

    global_stats, groups = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [{"group": "Global", **global_stats.as_row()}]
    for name, stats in groups.items():
        rows.append({"group": name, **stats.as_row()})
    report(
        "table4_group_stats",
        format_rows(
            rows,
            columns=[
                "group",
                "users",
                "videos",
                "actions",
                "sparsity_percent",
                "pair_sparsity_percent",
            ],
        ),
    )

    assert len(groups) == 3
    for name, stats in groups.items():
        assert stats.sparsity > global_stats.sparsity, (
            f"group {name} should be denser than global (action density)"
        )
        assert stats.pair_sparsity > global_stats.pair_sparsity, (
            f"group {name} should be denser than global (pair density)"
        )
    average = sum(s.sparsity for s in groups.values()) / 3
    # Paper reports ~3x; we require a clear >1.25x densification.
    assert average > 1.25 * global_stats.sparsity
