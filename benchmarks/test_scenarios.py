"""Scenario sweep — the four adversarial regimes x the four live-test arms.

The paper's live experiment (§6.2) ran on benign organic traffic; the
scenario engine stresses the same four arms under the regimes where
real-time updating is supposed to pay off: a flash crowd, daily catalog
churn with cold items, a diurnal traffic wave, and a mid-stream preference
drift.  Two invariants are asserted per scenario:

* **quality** — the paper's CTR ordering (Hot < AR ~ SimHash < rMF)
  survives the disturbance;
* **ops** — the serving plane under the scenario's offered-load profile
  reports a valid, finite envelope (shed rate, accepted p99, breaker
  trips, post-event recovery time).

Every run emits one schema-versioned ``BENCH_scenarios.json`` with the
flattened metrics of all four scenarios, which CI validates and archives.
"""

from repro.eval.scenarios import (
    SCENARIO_LIBRARY,
    run_scenario,
    validate_scenario_report,
)

from _emit import emit_bench
from _helpers import format_rows, report, smoke_scaled

DAYS = smoke_scaled(8, 6)
N_USERS = 120
N_VIDEOS = 160
ARMS = ("Hot", "AR", "SimHash", "rMF")


def test_scenario_sweep(benchmark):
    reports = {}

    def run_all():
        for name, factory in sorted(SCENARIO_LIBRARY.items()):
            reports[name] = run_scenario(
                factory(), days=DAYS, n_users=N_USERS, n_videos=N_VIDEOS
            )
        return reports

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    ctr_rows = []
    ops_rows = []
    metrics = {}
    for name, scenario_report in sorted(reports.items()):
        doc = scenario_report.to_doc()
        assert validate_scenario_report(doc) == []
        metrics.update(scenario_report.flat_metrics())

        row = {"scenario": name}
        for arm in ARMS:
            ctr = doc["arms"][arm]["overall_ctr"]
            row[arm] = round(ctr, 4) if ctr is not None else "-"
        row["ordering_ok"] = doc["ctr_ordering_ok"]
        ctr_rows.append(row)

        ops = doc["ops"]
        ops_rows.append(
            {
                "scenario": name,
                "shed_rate": round(ops["shed_rate"], 4),
                "peak_shed": round(ops["peak_window_shed_rate"], 4),
                "p99_ms": round(ops["accepted_p99_ms"], 3),
                "breaker_trips": int(ops["breaker_trips"]),
                "recovery_s": int(ops["recovery_seconds"]),
            }
        )

    report(
        "scenarios_ctr",
        format_rows(
            ctr_rows, columns=["scenario", *ARMS, "ordering_ok"]
        ),
    )
    report("scenarios_ops", format_rows(ops_rows))
    emit_bench(
        "scenarios",
        metrics,
        params={"days": DAYS, "n_users": N_USERS, "n_videos": N_VIDEOS},
    )

    # The published ordering must survive every adversarial regime.
    for name, scenario_report in reports.items():
        assert scenario_report.ctr_ordering_ok, (
            f"CTR ordering broke under {name}: "
            f"{ {a: s['overall_ctr'] for a, s in scenario_report.arms.items()} }"
        )
    # Scenarios with a traffic spike must actually stress admission.
    assert reports["flash_crowd"].ops["peak_window_shed_rate"] > 0.0
    assert reports["diurnal_wave"].ops["peak_window_shed_rate"] > 0.0
