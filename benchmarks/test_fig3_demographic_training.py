"""Figure 3 — demographic training (per-group models) vs global training.

Paper: group-models beat the global model on both recall and rank for the
three largest demographic groups — average improvement >10 %, max ~20 % —
because the per-group matrices are denser (Table 4) and the models more
fine-grained.

Here: a GroupedRecommender (one CombineModel per demographic group) against
a single global CombineModel, both trained online on the same stream, each
group's test users evaluated on both.  Shape checks: group-models improve
recall@10 in every one of the three largest groups, with a clear average
improvement.  (On our world the densification is strong, so the measured
improvement exceeds the paper's ~10-20 %.)
"""

from repro.clock import VirtualClock
from repro.core import COMBINE_MODEL, GroupedRecommender
from repro.data import group_stats
from repro.eval import average_rank, interest_lists_by_user, recall_curve

from _helpers import format_rows, report, train_variant, variant_config


def test_fig3_demographic_vs_global_training(
    benchmark, paper_world, paper_split, genuine_liked, trained_variants
):
    now = min(a.timestamp for a in paper_split.test)
    global_model = trained_variants["CombineModel"]
    top_groups = list(
        group_stats(paper_split.train, paper_world.users, top_k=3)
    )
    interest = interest_lists_by_user(paper_split.test, videos=paper_world.videos)

    def run():
        grouped = GroupedRecommender(
            paper_world.videos,
            paper_world.users,
            config=variant_config(COMBINE_MODEL),
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
        )
        grouped.observe_stream(paper_split.train)
        return grouped

    grouped = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    improvements = []
    for group in top_groups:
        members = [
            u
            for u in genuine_liked
            if paper_world.users.get(u)
            and paper_world.users[u].demographic_group == group
        ]
        liked = {u: genuine_liked[u] for u in members}
        interests = {u: interest.get(u, []) for u in members}
        grouped_recs = {
            u: [r.video_id for r in grouped.recommend(u, n=10, now=now)]
            for u in members
        }
        global_recs = {
            u: global_model.recommend_ids(u, n=10, now=now) for u in members
        }
        g_recall = recall_curve(grouped_recs, liked)[10]
        G_recall = recall_curve(global_recs, liked)[10]
        rows.append(
            {
                "group": group,
                "users": len(members),
                "grouped_recall@10": round(g_recall, 4),
                "global_recall@10": round(G_recall, 4),
                "grouped_rank": round(average_rank(grouped_recs, interests), 4),
                "global_rank": round(average_rank(global_recs, interests), 4),
            }
        )
        if G_recall > 0:
            improvements.append((g_recall - G_recall) / G_recall)

    report("fig3_demographic_training", format_rows(rows))

    # Shape: every group improves on recall, clearly on average.
    for row in rows:
        assert row["grouped_recall@10"] > row["global_recall@10"], (
            f"group {row['group']}: demographic training should win"
        )
    assert improvements
    assert sum(improvements) / len(improvements) > 0.10
