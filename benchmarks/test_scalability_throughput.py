"""Scalability — topology throughput as worker parallelism grows (§5.1, §6).

Paper: the Storm implementation processes billions of tuples per day on a
100-node cluster; the design argument is that fields grouping lets every
stage scale out without locks.  Our substrate is in-process threads under
the GIL, so absolute numbers are laptop-scale and near-flat in wall time —
the reproducible *shape* is that adding workers never breaks correctness
(same number of tuples processed, zero failures) and spreads work across
all workers.
"""

import time

import pytest

from repro.clock import VirtualClock
from repro.storm import ThreadedExecutor
from repro.topology import (
    COMPUTE_MF,
    GET_ITEM_PAIRS,
    ITEM_PAIR_SIM,
    MF_STORAGE,
    RESULT_STORAGE,
    USER_HISTORY,
    build_recommendation_topology,
)

from _emit import emit_bench
from _helpers import build_world, format_rows, report, smoke_scaled

N_ACTIONS = smoke_scaled(8000, 1500)
_results: list[dict] = []


@pytest.fixture(scope="module")
def stream():
    world = build_world(n_users=120, n_videos=150, days=2)
    return world, world.generate_actions()[:N_ACTIONS]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_topology_throughput(benchmark, stream, workers):
    world, actions = stream
    parallelism = {
        USER_HISTORY: workers,
        COMPUTE_MF: workers,
        MF_STORAGE: workers,
        GET_ITEM_PAIRS: workers,
        ITEM_PAIR_SIM: workers,
        RESULT_STORAGE: workers,
    }

    elapsed = {"seconds": 0.0}

    def run():
        topo, system = build_recommendation_topology(
            list(actions),
            world.videos,
            users=world.users,
            clock=VirtualClock(0.0),
            parallelism=parallelism,
        )
        started = time.perf_counter()
        result = ThreadedExecutor(topo).run(timeout=300.0)
        elapsed["seconds"] = time.perf_counter() - started
        return result

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    snapshot = metrics.snapshot()

    # Correctness never degrades with parallelism.
    assert snapshot["spout"]["emitted"] == N_ACTIONS
    assert snapshot[COMPUTE_MF]["processed"] == N_ACTIONS
    for component, stats in snapshot.items():
        assert stats["failed"] == 0, f"{component} had failures"

    # Work actually spreads across workers.
    per_worker = metrics.component(COMPUTE_MF).per_worker_processed
    assert len(per_worker) == workers

    invocations = int(sum(s["processed"] for s in snapshot.values()))
    _results.append(
        {
            "workers": workers,
            "tuples": N_ACTIONS,
            "bolt_invocations": invocations,
            "seconds": round(elapsed["seconds"], 3),
            "tuples_per_s": round(N_ACTIONS / max(elapsed["seconds"], 1e-9), 1),
        }
    )
    if workers == 4:
        report("scalability_throughput", format_rows(_results))
        emit_bench(
            "throughput",
            metrics={
                **{
                    f"tuples_per_s_w{row['workers']}": row["tuples_per_s"]
                    for row in _results
                },
                **{
                    f"bolt_invocations_per_s_w{row['workers']}": round(
                        row["bolt_invocations"] / max(row["seconds"], 1e-9), 1
                    )
                    for row in _results
                },
            },
            params={"tuples": N_ACTIONS, "executor": "threaded"},
        )
