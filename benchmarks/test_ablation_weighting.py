"""Ablation — Eq. 6's logarithmic PlayTime weighting vs the linear
alternative the paper tested and rejected (§3.2: "we have tested some
alternatives such as w = a + b * vrate, and Equation 6 gave the best
performance").

Both weighers feed the same CombineModel pipeline; the only difference is
how the view rate maps to a confidence weight.  Shape check: the log
weighting is at least as good as the linear one (non-inferiority band —
the gap in the paper is small, and so is ours).
"""

from repro.clock import VirtualClock
from repro.core import (
    COMBINE_MODEL,
    LinearPlaytimeWeigher,
    LogPlaytimeWeigher,
    RealtimeRecommender,
)
from repro.eval import evaluate

from _helpers import format_rows, report, variant_config


def test_ablation_log_vs_linear_weighting(
    benchmark, paper_world, paper_split, genuine_liked
):
    cfg = variant_config(COMBINE_MODEL)

    def train(weigher_cls):
        recommender = RealtimeRecommender(
            paper_world.videos,
            users=paper_world.users,
            config=cfg,
            variant=COMBINE_MODEL,
            weigher=weigher_cls(cfg.weights),
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )
        return evaluate(
            recommender,
            paper_split.train,
            paper_split.test,
            videos=paper_world.videos,
            liked=genuine_liked,
        )

    def run():
        return {
            "log (Eq. 6)": train(LogPlaytimeWeigher),
            "linear (rejected)": train(LinearPlaytimeWeigher),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {"weighting": name, **result.summary()}
        for name, result in results.items()
    ]
    report("ablation_weighting", format_rows(rows))

    log_recall = results["log (Eq. 6)"].recall(10)
    linear_recall = results["linear (rejected)"].recall(10)
    assert log_recall > 0
    # Non-inferiority: Eq. 6 at least matches the linear alternative.
    assert log_recall >= linear_recall * 0.95
