"""Model plane — scalar vs batched scoring and training (vectorized plane).

Two comparisons back the batched model plane with numbers:

* **Scoring** — ``predict_many`` on the arena backend (one bias gather +
  one ``(N, f) @ f`` matmul) against the per-candidate scalar loop it
  replaced, at 1k and 10k candidates.  The refactor's acceptance bar is
  >= 5x at 10k candidates.
* **Training** — ``OnlineTrainer.process_batch`` (prefetch + overlay +
  one atomic commit per micro-batch) against per-action ``process`` on
  the same action stream.  Both run the byte-identical SGD trajectory,
  so any speedup is pure storage-plane win.

Emits ``BENCH_model_plane.json``; CI's bench-smoke job fails the build
if the batched paths stop being faster.
"""

import time

import numpy as np

from repro.config import MFConfig
from repro.core import MFModel, OnlineTrainer
from repro.kvstore import InMemoryKVStore

from _emit import emit_bench
from _helpers import build_world, format_rows, report, smoke_scaled

F = 16
RNG_SEED = 413


def _populated_model(backend: str, n_videos: int) -> MFModel:
    """A model with one user and ``n_videos`` video factors installed."""
    rng = np.random.default_rng(RNG_SEED)
    model = MFModel(MFConfig(f=F, backend=backend), store=InMemoryKVStore())
    items = [("user", "u0", rng.normal(0, 0.1, F), 0.05)]
    items += [
        (
            "video",
            f"v{i}",
            rng.normal(0, 0.1, F),
            float(rng.normal(0, 0.05)),
        )
        for i in range(n_videos)
    ]
    model.put_params_many(items)
    model._meta.put("mu", (1.5 * 64, 64))
    return model


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_model_plane_scoring_and_training_throughput():
    # --- Scoring: scalar loop vs one vectorized predict_many ------------
    n_candidates = 10_000
    model = _populated_model("arena", n_candidates)
    kv_model = _populated_model("kv", n_candidates)
    candidates = [f"v{i}" for i in range(n_candidates)]

    scoring_rows = []
    metrics: dict[str, float] = {}
    for count in (1_000, n_candidates):
        subset = candidates[:count]
        scalar_s = _best_of(
            3, lambda: [model.predict("u0", v) for v in subset]
        )
        batched_s = _best_of(
            10, lambda: model.predict_many("u0", subset)
        )
        kv_batched_s = _best_of(
            5, lambda: kv_model.predict_many("u0", subset)
        )
        # Same numbers (to BLAS accumulation order), only faster.
        np.testing.assert_allclose(
            model.predict_many("u0", subset),
            np.array([model.predict("u0", v) for v in subset]),
            rtol=1e-14,
            atol=0.0,
        )
        speedup = scalar_s / batched_s
        scoring_rows.append(
            {
                "candidates": count,
                "scalar_ms": round(scalar_s * 1000.0, 3),
                "batched_ms": round(batched_s * 1000.0, 3),
                "kv_batched_ms": round(kv_batched_s * 1000.0, 3),
                "speedup": round(speedup, 1),
            }
        )
        metrics[f"scalar_ms_{count}"] = scalar_s * 1000.0
        metrics[f"batched_ms_{count}"] = batched_s * 1000.0
        metrics[f"kv_batched_ms_{count}"] = kv_batched_s * 1000.0
        metrics[f"predict_many_speedup_{count}"] = speedup

    # --- Training: per-action process vs micro-batched process_batch ----
    world = build_world()
    actions = list(world.generate_actions())[: smoke_scaled(4_000, 1_500)]
    batch_size = 256

    def _train(batched: bool) -> float:
        trained = MFModel(
            MFConfig(f=F, backend="arena"), store=InMemoryKVStore()
        )
        trainer = OnlineTrainer(trained, videos=world.videos)
        started = time.perf_counter()
        if batched:
            for start in range(0, len(actions), batch_size):
                trainer.process_batch(actions[start : start + batch_size])
        else:
            for action in actions:
                trainer.process(action)
        return time.perf_counter() - started

    per_action_s = min(_train(batched=False) for _ in range(2))
    batched_train_s = min(_train(batched=True) for _ in range(2))
    per_action_aps = len(actions) / per_action_s
    batched_aps = len(actions) / batched_train_s
    train_speedup = batched_aps / per_action_aps
    metrics.update(
        {
            "train_per_action_aps": per_action_aps,
            "train_batched_aps": batched_aps,
            "train_speedup": train_speedup,
        }
    )

    report(
        "model_plane",
        format_rows(scoring_rows)
        + "\n\n"
        + format_rows(
            [
                {
                    "training path": "per-action process()",
                    "actions_per_s": round(per_action_aps, 0),
                },
                {
                    "training path": f"process_batch(size={batch_size})",
                    "actions_per_s": round(batched_aps, 0),
                },
            ]
        ),
    )
    emit_bench(
        "model_plane",
        metrics=metrics,
        params={
            "f": F,
            "candidates": n_candidates,
            "train_actions": len(actions),
            "train_batch_size": batch_size,
            "backend": "arena",
        },
    )

    # The refactor's reason to exist: batched scoring >= 5x at 10k
    # candidates, micro-batched training strictly faster.
    assert metrics[f"predict_many_speedup_{n_candidates}"] >= 5.0
    assert train_speedup > 1.0
