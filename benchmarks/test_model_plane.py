"""Model plane — scalar vs batched scoring and training (vectorized plane).

Two comparisons back the batched model plane with numbers:

* **Scoring** — ``predict_many`` on the arena backend (one bias gather +
  one ``(N, f) @ f`` matmul) against the per-candidate scalar loop it
  replaced, at 1k and 10k candidates.  The refactor's acceptance bar is
  >= 5x at 10k candidates.
* **Training** — ``OnlineTrainer.process_batch`` (prefetch + overlay +
  one atomic commit per micro-batch) against per-action ``process`` on
  the same action stream.  Both run the byte-identical SGD trajectory,
  so any speedup is pure storage-plane win.

Emits ``BENCH_model_plane.json``; CI's bench-smoke job fails the build
if the batched paths stop being faster.
"""

import os
import random
import time

import numpy as np

from repro.config import MFConfig
from repro.core import MFModel, OnlineTrainer, SharedModelState
from repro.kvstore import InMemoryKVStore
from repro.storm import Bolt, ProcessExecutor, Spout, StreamTuple, TopologyBuilder

from _emit import emit_bench
from _helpers import build_world, format_rows, report, smoke_scaled

F = 16
RNG_SEED = 413

# --- Multi-core scaling: SGD workers over a shared factor arena ---------
MP_F = 32
MP_GROUPS = 16
MP_ENTITIES = 2_048  # users + videos pre-interned across all groups
MP_CHUNK = 256


def _populated_model(backend: str, n_videos: int) -> MFModel:
    """A model with one user and ``n_videos`` video factors installed."""
    rng = np.random.default_rng(RNG_SEED)
    model = MFModel(MFConfig(f=F, backend=backend), store=InMemoryKVStore())
    items = [("user", "u0", rng.normal(0, 0.1, F), 0.05)]
    items += [
        (
            "video",
            f"v{i}",
            rng.normal(0, 0.1, F),
            float(rng.normal(0, 0.05)),
        )
        for i in range(n_videos)
    ]
    model.put_params_many(items)
    model._meta.put("mu", (1.5 * 64, 64))
    return model


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class _ChunkSpout(Spout):
    """Pre-built chunks of (user, video, rating) actions, keyed by group."""

    def __init__(self, chunks) -> None:
        self._chunks = chunks
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= len(self._chunks):
            return None
        group, actions = self._chunks[self._i]
        self._i += 1
        return StreamTuple({"g": group, "actions": actions})


class _SgdChunkBolt(Bolt):
    def __init__(self, state: SharedModelState) -> None:
        self._state = state
        self._model: MFModel | None = None

    def prepare(self, ctx) -> None:
        self._model = MFModel(MFConfig(f=MP_F, seed=RNG_SEED), shared=self._state)

    def process(self, tup, collector) -> None:
        model = self._model
        for user_id, video_id, rating in tup["actions"]:
            model.sgd_step(user_id, video_id, rating, eta=0.02)


def _mp_action_chunks(n_actions: int):
    """Seeded action chunks, each chunk confined to one entity group."""
    rng = random.Random(RNG_SEED)
    per_group = MP_ENTITIES // (2 * MP_GROUPS)  # users == videos per group
    chunks = []
    for start in range(0, n_actions, MP_CHUNK):
        g = rng.randrange(MP_GROUPS)
        actions = [
            (
                f"g{g}-u{rng.randrange(per_group)}",
                f"g{g}-v{rng.randrange(per_group)}",
                float(rng.randrange(2)),
            )
            for _ in range(min(MP_CHUNK, n_actions - start))
        ]
        chunks.append((g, actions))
    return chunks


def _mp_run(chunks, workers: int) -> float:
    """Actions/sec pushing every chunk through ``workers`` SGD processes."""
    state = SharedModelState.create(f=MP_F)
    try:
        # Pre-intern every entity so the measured loop takes only the
        # steady-state shared-lock write path, never the intern path.
        rng = np.random.default_rng(RNG_SEED)
        per_group = MP_ENTITIES // (2 * MP_GROUPS)
        for kind, prefix in (("user", "u"), ("video", "v")):
            state.arena(kind).put_many(
                [
                    (
                        f"g{g}-{prefix}{i}",
                        rng.normal(0, 0.1, MP_F),
                        0.0,
                    )
                    for g in range(MP_GROUPS)
                    for i in range(per_group)
                ]
            )
        state.mu_set(0.5 * 64, 64)

        builder = TopologyBuilder()
        builder.set_spout("spout", lambda: _ChunkSpout(chunks))
        builder.set_bolt(
            "sgd", lambda: _SgdChunkBolt(state), parallelism=workers
        ).fields_grouping("spout", ["g"])
        executor = ProcessExecutor(builder.build())
        n_actions = sum(len(actions) for _, actions in chunks)
        started = time.perf_counter()
        executor.run(timeout=600)
        return n_actions / (time.perf_counter() - started)
    finally:
        state.unlink()


def _mp_scaling_metrics() -> dict[str, float]:
    chunks = _mp_action_chunks(smoke_scaled(12_000, 3_000))
    metrics = {}
    for workers in (1, 2, 4):
        metrics[f"mp_actions_per_s_w{workers}"] = _mp_run(chunks, workers)
    metrics["mp_speedup_4w"] = (
        metrics["mp_actions_per_s_w4"] / metrics["mp_actions_per_s_w1"]
    )
    return metrics


def test_model_plane_scoring_and_training_throughput():
    # --- Scoring: scalar loop vs one vectorized predict_many ------------
    n_candidates = 10_000
    model = _populated_model("arena", n_candidates)
    kv_model = _populated_model("kv", n_candidates)
    candidates = [f"v{i}" for i in range(n_candidates)]

    scoring_rows = []
    metrics: dict[str, float] = {}
    for count in (1_000, n_candidates):
        subset = candidates[:count]
        scalar_s = _best_of(
            3, lambda: [model.predict("u0", v) for v in subset]
        )
        batched_s = _best_of(
            10, lambda: model.predict_many("u0", subset)
        )
        kv_batched_s = _best_of(
            5, lambda: kv_model.predict_many("u0", subset)
        )
        # Same numbers (to BLAS accumulation order), only faster.
        np.testing.assert_allclose(
            model.predict_many("u0", subset),
            np.array([model.predict("u0", v) for v in subset]),
            rtol=1e-14,
            atol=0.0,
        )
        speedup = scalar_s / batched_s
        scoring_rows.append(
            {
                "candidates": count,
                "scalar_ms": round(scalar_s * 1000.0, 3),
                "batched_ms": round(batched_s * 1000.0, 3),
                "kv_batched_ms": round(kv_batched_s * 1000.0, 3),
                "speedup": round(speedup, 1),
            }
        )
        metrics[f"scalar_ms_{count}"] = scalar_s * 1000.0
        metrics[f"batched_ms_{count}"] = batched_s * 1000.0
        metrics[f"kv_batched_ms_{count}"] = kv_batched_s * 1000.0
        metrics[f"predict_many_speedup_{count}"] = speedup

    # --- Training: per-action process vs micro-batched process_batch ----
    world = build_world()
    actions = list(world.generate_actions())[: smoke_scaled(4_000, 1_500)]
    batch_size = 256

    def _train(batched: bool) -> float:
        trained = MFModel(
            MFConfig(f=F, backend="arena"), store=InMemoryKVStore()
        )
        trainer = OnlineTrainer(trained, videos=world.videos)
        started = time.perf_counter()
        if batched:
            for start in range(0, len(actions), batch_size):
                trainer.process_batch(actions[start : start + batch_size])
        else:
            for action in actions:
                trainer.process(action)
        return time.perf_counter() - started

    per_action_s = min(_train(batched=False) for _ in range(2))
    batched_train_s = min(_train(batched=True) for _ in range(2))
    per_action_aps = len(actions) / per_action_s
    batched_aps = len(actions) / batched_train_s
    train_speedup = batched_aps / per_action_aps
    metrics.update(
        {
            "train_per_action_aps": per_action_aps,
            "train_batched_aps": batched_aps,
            "train_speedup": train_speedup,
        }
    )

    # --- Multi-core scaling: process-parallel SGD over the shared arena -
    mp_metrics = _mp_scaling_metrics()
    metrics.update(mp_metrics)

    report(
        "model_plane",
        format_rows(scoring_rows)
        + "\n\n"
        + format_rows(
            [
                {
                    "training path": "per-action process()",
                    "actions_per_s": round(per_action_aps, 0),
                },
                {
                    "training path": f"process_batch(size={batch_size})",
                    "actions_per_s": round(batched_aps, 0),
                },
            ]
        )
        + "\n\n"
        + format_rows(
            [
                {
                    "sgd workers": workers,
                    "actions_per_s": round(
                        mp_metrics[f"mp_actions_per_s_w{workers}"], 0
                    ),
                }
                for workers in (1, 2, 4)
            ]
        ),
    )
    emit_bench(
        "model_plane",
        metrics=metrics,
        params={
            "f": F,
            "candidates": n_candidates,
            "train_actions": len(actions),
            "train_batch_size": batch_size,
            "backend": "arena",
            "mp_f": MP_F,
            "mp_groups": MP_GROUPS,
            "mp_entities": MP_ENTITIES,
            "mp_chunk": MP_CHUNK,
            "cpus": os.cpu_count() or 1,
        },
    )

    # The refactor's reason to exist: batched scoring >= 5x at 10k
    # candidates, micro-batched training strictly faster.
    assert metrics[f"predict_many_speedup_{n_candidates}"] >= 5.0
    assert train_speedup > 1.0
    # Process parallelism needs real cores to pay off; on starved CI
    # boxes we still emit the curve but only gate where it's meaningful.
    if (os.cpu_count() or 1) >= 4:
        assert mp_metrics["mp_speedup_4w"] >= 2.0
