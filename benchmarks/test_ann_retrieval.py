"""ANN retrieval — sublinear candidate retrieval vs brute-force MIPS.

The paper's serving path is linear in the candidate pool; DESIGN.md's
"Candidate retrieval index" replaces it with LSH-bucketed two-stage
retrieval (shortlist -> exact re-rank).  This benchmark sweeps catalog
size on a clustered synthetic factor catalog (learned factors are
clustered and anisotropic, which is what makes LSH work at all) and pins
the contract:

* recall@100 against the exact brute-force oracle >= 0.95 at every size,
* brute-force latency grows ~linearly while the ANN path stays near-flat
  (its cost tracks the shortlist target, not the catalog),
* at the largest size the ANN path is >= 5x faster than brute force
  (full run) / faster than brute force (CI smoke run),
* demographic partition pruning probes strictly fewer buckets.

Emits ``BENCH_ann_retrieval.json`` for the perf-regression harness.
"""

import time

import numpy as np

from repro.config import RetrievalConfig
from repro.core import AnnIndex, top_n_by_score
from repro.data import Video
from repro.eval import retrieval_recall
from repro.obs import Observability

from _emit import bench_smoke, emit_bench
from _helpers import format_rows, report

F = 32
TOP_N = 100
SIZES = [20_000, 300_000] if bench_smoke() else [10_000, 100_000, 1_000_000]
N_QUERIES = 20 if bench_smoke() else 30
KINDS = ("music", "news", "sport", "film", "kids")

_results: list[dict] = []


def _catalog(n, seed=7):
    """Clustered factor catalog: C centers, tight per-cluster noise."""
    rng = np.random.default_rng(seed)
    n_centers = max(64, n // 100)
    centers = rng.standard_normal((n_centers, F)) * 0.25
    assign = rng.integers(0, n_centers, size=n)
    vectors = centers[assign] + rng.standard_normal((n, F)) * 0.06
    biases = rng.standard_normal(n) * 0.05
    ids = [f"v{i:07d}" for i in range(n)]
    return ids, vectors, biases, centers


def _queries(centers, rng):
    picks = centers[rng.integers(0, len(centers), N_QUERIES)]
    return picks + rng.standard_normal((N_QUERIES, F)) * 0.08


def test_ann_vs_brute_sweep():
    for n in SIZES:
        ids, vectors, biases, centers = _catalog(n)
        index = AnnIndex(F, expected_videos=n)
        started = time.perf_counter()
        build = index.bulk_load(ids, vectors, biases)
        build_seconds = time.perf_counter() - started

        rng = np.random.default_rng(123)
        recalls, ann_times, brute_times, shortlists = [], [], [], []
        for x in _queries(centers, rng):
            t0 = time.perf_counter()
            scores = vectors @ x + biases
            exact = top_n_by_score(ids, scores, TOP_N)
            brute_times.append(time.perf_counter() - t0)

            # Two-stage path over the row-aligned factor matrix: ANN
            # shortlist rows, exact re-rank, ids only for the winners.
            t0 = time.perf_counter()
            rows = index.query_user_rows(x, TOP_N)
            sub_scores = vectors[rows] @ x + biases[rows]
            top = top_n_by_score(rows.tolist(), sub_scores, TOP_N)
            approx_ids = index.ids_for_rows([row for row, _ in top])
            ann_times.append(time.perf_counter() - t0)

            shortlists.append(len(rows))
            recalls.append(
                retrieval_recall(
                    approx_ids, [vid for vid, _ in exact], TOP_N
                )
            )

        occupancy = index.bucket_occupancy()
        _results.append(
            {
                "n": n,
                "band_bits": build["band_bits"],
                "build_s": round(build_seconds, 2),
                "recall_at_100": round(float(np.mean(recalls)), 4),
                "shortlist_mean": round(float(np.mean(shortlists)), 1),
                "brute_p50_ms": round(
                    float(np.median(brute_times)) * 1e3, 3
                ),
                "ann_p50_ms": round(float(np.median(ann_times)) * 1e3, 3),
                "bucket_p90": occupancy["p90"],
            }
        )

    report("ann_retrieval", format_rows(_results))

    # -- recall gate: every size ------------------------------------------
    for row in _results:
        assert row["recall_at_100"] >= 0.95, (
            f"recall@100 {row['recall_at_100']} < 0.95 at n={row['n']}"
        )

    # -- latency gates at the largest size --------------------------------
    largest = _results[-1]
    speedup = largest["brute_p50_ms"] / max(largest["ann_p50_ms"], 1e-9)
    if bench_smoke():
        assert speedup > 1.0, (
            f"ANN not faster than brute at n={largest['n']}: {speedup:.2f}x"
        )
    else:
        assert speedup >= 5.0, (
            f"ANN speedup {speedup:.2f}x < 5x at n={largest['n']}"
        )

    # -- scaling shape: brute ~linear, ANN sublinear ----------------------
    smallest = _results[0]
    size_ratio = largest["n"] / smallest["n"]
    brute_ratio = largest["brute_p50_ms"] / max(
        smallest["brute_p50_ms"], 1e-9
    )
    ann_ratio = largest["ann_p50_ms"] / max(smallest["ann_p50_ms"], 1e-9)
    assert brute_ratio > size_ratio / 4, (
        f"brute force unexpectedly sublinear: {brute_ratio:.1f}x over a "
        f"{size_ratio:.0f}x catalog"
    )
    assert ann_ratio < size_ratio / 4, (
        f"ANN latency not sublinear: {ann_ratio:.1f}x over a "
        f"{size_ratio:.0f}x catalog"
    )

    # -- partition pruning probes fewer buckets ---------------------------
    n = SIZES[0]
    ids, vectors, biases, centers = _catalog(n)
    videos = {
        vid: Video(vid, KINDS[i % len(KINDS)], duration=100.0)
        for i, vid in enumerate(ids)
    }
    obs = Observability.create()
    index = AnnIndex(F, videos=videos, obs=obs, expected_videos=n)
    index.bulk_load(ids, vectors, biases)
    probes = obs.registry.get("ann_probes_total")
    query = _queries(centers, np.random.default_rng(5))[0]

    before = probes.value
    unpruned = index.query_user(query, TOP_N)
    unpruned_probes = probes.value - before

    before = probes.value
    pruned = index.query_user(
        query, TOP_N, allowed_partitions=[KINDS[0]]
    )
    pruned_probes = probes.value - before

    assert pruned_probes < unpruned_probes
    assert all(videos[vid].kind == KINDS[0] for vid in pruned)
    probe_ratio = pruned_probes / max(unpruned_probes, 1)

    emit_bench(
        "ann_retrieval",
        metrics={
            **{
                f"recall_at_100_n{row['n']}": row["recall_at_100"]
                for row in _results
            },
            **{
                f"brute_p50_ms_n{row['n']}": row["brute_p50_ms"]
                for row in _results
            },
            **{
                f"ann_p50_ms_n{row['n']}": row["ann_p50_ms"]
                for row in _results
            },
            **{
                f"build_seconds_n{row['n']}": row["build_s"]
                for row in _results
            },
            **{
                f"shortlist_mean_n{row['n']}": row["shortlist_mean"]
                for row in _results
            },
            "speedup_largest": round(speedup, 2),
            "pruned_probe_ratio": round(probe_ratio, 3),
        },
        params={
            "f": F,
            "top_n": TOP_N,
            "n_queries": N_QUERIES,
            "oversample": RetrievalConfig().oversample,
            "tables": RetrievalConfig().tables,
        },
    )
