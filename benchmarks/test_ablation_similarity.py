"""Ablation — the similarity factors of §4.2.

The paper fuses three factors into the similar-video tables: CF similarity
(Eq. 9), type similarity (Eq. 10) and time damping (Eq. 11).  This ablation
rebuilds the pipeline with each factor neutralised:

* ``beta = 0``   — pure CF similarity, no type factor;
* ``beta = 0.2`` — the shipped fusion;
* ``beta = 1``   — pure type similarity, no CF factor;
* ``xi -> inf``  — no forgetting (damping ~ 1 forever).

Shape checks: the shipped fusion is at least as good as either pure
extreme, and enabling damping does not hurt (the trending rotation in the
world is what damping is designed to track).
"""

from repro.clock import VirtualClock
from repro.core import COMBINE_MODEL, RealtimeRecommender
from repro.eval import evaluate

from _helpers import format_rows, report, variant_config


def _evaluate_with(paper_world, paper_split, genuine_liked, **sim_overrides):
    cfg = variant_config(COMBINE_MODEL).with_overrides(
        similarity=sim_overrides
    )
    recommender = RealtimeRecommender(
        paper_world.videos,
        users=paper_world.users,
        config=cfg,
        variant=COMBINE_MODEL,
        clock=VirtualClock(0.0),
        enable_demographic=False,
    )
    return evaluate(
        recommender,
        paper_split.train,
        paper_split.test,
        videos=paper_world.videos,
        liked=genuine_liked,
    )


def test_ablation_similarity_factors(
    benchmark, paper_world, paper_split, genuine_liked
):
    def run():
        return {
            "pure CF (beta=0)": _evaluate_with(
                paper_world, paper_split, genuine_liked, beta=0.0
            ),
            "fusion (beta=0.2)": _evaluate_with(
                paper_world, paper_split, genuine_liked, beta=0.2
            ),
            "pure type (beta=1)": _evaluate_with(
                paper_world, paper_split, genuine_liked, beta=1.0
            ),
            "no damping (xi=1e12)": _evaluate_with(
                paper_world, paper_split, genuine_liked, beta=0.2, xi=1e12
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {"configuration": name, **result.summary()}
        for name, result in results.items()
    ]
    report("ablation_similarity", format_rows(rows))

    fusion = results["fusion (beta=0.2)"].recall(10)
    assert fusion > 0
    # The fusion holds its own against both pure extremes (small margins).
    assert fusion >= results["pure CF (beta=0)"].recall(10) * 0.9
    assert fusion >= results["pure type (beta=1)"].recall(10) * 0.9
    # Forgetting stale similarities does not hurt.
    assert fusion >= results["no damping (xi=1e12)"].recall(10) * 0.9
