"""Table 2 — parameter settings obtained by grid search.

Paper: "Parameters used in our model are determined by using grid search to
obtain the optimal values" over f, lambda, a, b, eta_0, alpha, beta, xi.
The printed value row is unreadable in the source text, so the *procedure*
is the reproducible artefact: this benchmark runs the grid-search harness
over the online-update parameters (eta_0, alpha) — the pair that defines
the adjustable strategy — on a reduced world, and reports the winning
configuration alongside the defaults the library ships (which were fixed by
a larger offline calibration pass; see EXPERIMENTS.md).
"""

from repro.clock import VirtualClock
from repro.config import ReproConfig, TABLE2_PARAMETERS
from repro.core import COMBINE_MODEL, RealtimeRecommender
from repro.data import split_by_day
from repro.eval import grid_search

from _helpers import build_world, format_rows, report

GRID = {
    "eta0": [0.001, 0.004],
    "alpha": [0.0, 0.002, 0.004],
}


def test_table2_parameter_grid_search(benchmark):
    world = build_world(n_users=150, n_videos=200, days=5)
    split = split_by_day(world.generate_actions(), train_days=4)
    liked = world.genuinely_liked(split.test)

    def factory(eta0, alpha):
        cfg = ReproConfig().with_overrides(
            online={"eta0": eta0, "alpha": alpha},
            mf={"f": 16, "init_scale": 0.03},
            weights={"click": 0.5},
        )
        return RealtimeRecommender(
            world.videos,
            users=world.users,
            config=cfg,
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )

    def run():
        # recall computed against ground-truth liked sets: monkeypatch the
        # protocol's liked via a wrapper factory is unnecessary — the grid
        # harness uses observed weights; both orderings agree on this world.
        return grid_search(
            factory,
            GRID,
            split.train,
            split.test,
            videos=world.videos,
            metric_n=10,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = result.table()
    report("table2_gridsearch", format_rows(rows))

    # Shape checks: the grid ran exhaustively and produced a usable optimum.
    assert len(result.points) == len(GRID["eta0"]) * len(GRID["alpha"])
    assert result.best.score > 0
    best = result.best.params
    assert best["eta0"] in GRID["eta0"]
    assert best["alpha"] in GRID["alpha"]

    # The paper's Table 2 names exactly these eight parameters; our config
    # exposes every one of them (values in EXPERIMENTS.md).
    assert set(TABLE2_PARAMETERS) == {
        "f", "lambda", "a", "b", "eta_0", "alpha", "beta", "xi",
    }
