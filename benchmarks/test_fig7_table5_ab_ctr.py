"""Figure 7 + Table 5 — online A/B testing CTR over ten days.

Paper: live traffic split over four methods for ten days; CTR ordering is
Hot worst, AR ~ SimHash in the middle, rMF best in most cases; Table 5
reports the pairwise relative improvements.  Absolute CTRs are withheld as
proprietary — the *ordering* is the published result.

Here: the simulated A/B harness drives the same four methods (the batch
comparators retrained daily, exactly like production) over ten simulated
days of the calibrated world.  Shape checks: rMF's overall CTR beats every
comparator, Hot is the weakest of the model-driven arms' ceiling, and rMF
wins the plurality of days.
"""

from repro.baselines import (
    AssociationRuleRecommender,
    HotRecommender,
    SimHashCFRecommender,
)
from repro.clock import VirtualClock
from repro.core import COMBINE_MODEL, GroupedRecommender
from repro.eval import Experiment

from _helpers import build_world, format_rows, report, variant_config

DAYS = 10


def _arms(world):
    # The rMF arm is the *production* configuration of the paper: the
    # CombineModel trained per demographic group (§5.2.2) with demographic
    # filtering (§5.2.1) — exactly what Tencent deployed in the live test.
    rmf_config = variant_config(COMBINE_MODEL).with_overrides(
        recommend={"max_candidates": 20, "demographic_slots": 0.05}
    )
    return {
        "Hot": HotRecommender(clock=VirtualClock(0.0), exclude_watched=False),
        "AR": AssociationRuleRecommender(
            min_support=2, min_confidence=0.02, exclude_watched=False
        ),
        "SimHash": SimHashCFRecommender(
            min_similarity=0.55, exclude_watched=False
        ),
        "rMF": GroupedRecommender(
            world.videos,
            world.users,
            config=rmf_config,
            variant=COMBINE_MODEL,
            clock=VirtualClock(0.0),
            enable_demographic=True,
        ),
    }


def test_fig7_table5_ab_ctr(benchmark):
    world = build_world(n_users=200, n_videos=250, days=DAYS)
    # assignment="hash" is draw-for-draw the legacy ABTestHarness split,
    # so this migration changes no numbers.
    harness = Experiment(
        world,
        arms=_arms(world),
        days=DAYS,
        requests_per_user_per_day=1,
        top_n=10,
        seed=17,
        assignment="hash",
    )

    result = benchmark.pedantic(harness.run, rounds=1, iterations=1)

    daily = result.daily_ctr()
    rows = []
    for day in range(DAYS):
        row = {"day": day + 1}
        row.update(
            {
                # None marks a zero-impression day (batch arms before
                # their first retrain), distinct from a true 0.0 CTR.
                arm: round(series[day], 4) if series[day] is not None else "-"
                for arm, series in daily.items()
            }
        )
        rows.append(row)
    overall = result.overall_ctr()
    rows.append(
        {"day": "all", **{arm: round(ctr, 4) for arm, ctr in overall.items()}}
    )
    report(
        "fig7_ab_ctr",
        format_rows(rows, columns=["day", "Hot", "AR", "SimHash", "rMF"]),
    )

    improvements = result.improvement_table()
    imp_rows = [
        {
            "comparison": f"{a} vs {b}",
            "improvement_percent": round(100 * improvements[(a, b)], 2),
        }
        for (a, b) in (
            ("rMF", "Hot"),
            ("rMF", "AR"),
            ("rMF", "SimHash"),
            ("AR", "Hot"),
            ("SimHash", "Hot"),
        )
    ]
    report("table5_improvements", format_rows(imp_rows))

    # Shape: rMF best overall; every personalised method beats Hot.
    assert overall["rMF"] > overall["Hot"]
    assert overall["rMF"] >= overall["AR"]
    assert overall["rMF"] >= overall["SimHash"]
    # rMF wins more days than any other arm ("in most cases").
    wins = {arm: result.days_won(arm) for arm in overall}
    assert wins["rMF"] >= max(w for a, w in wins.items() if a != "rMF")
