"""Serving under load while training — the production envelope (§6).

Paper: the deployed system serves millions of requests per day at
millisecond latency *while* the model updates from ~1 TB of daily actions.
This benchmark drives concurrent request workers against a trained
recommender while a trainer thread streams new actions into it, and
checks the paper's operational claims at laptop scale: zero serving
errors, millisecond-class latency, and the model demonstrably advancing
during the run.
"""

from repro.clock import VirtualClock
from repro.reliability.overload import AdmissionController
from repro.serving import ARRIVAL_PROCESSES, LoadGenerator, RequestRouter

from _emit import emit_bench
from _helpers import format_rows, report, smoke_scaled

TOTAL_REQUESTS = smoke_scaled(2000, 300)
OFFERED_REQUESTS = smoke_scaled(3000, 600)


def test_serving_under_load_while_training(
    benchmark, paper_world, paper_split, trained_variants
):
    recommender = trained_variants["CombineModel"]
    router = RequestRouter(recommender)
    generator = LoadGenerator(
        router,
        list(paper_world.users),
        list(paper_world.videos),
        related_fraction=0.5,
        seed=11,
    )
    now = max(a.timestamp for a in paper_split.train) + 1
    seen_before = recommender.trainer.stats.seen

    def run():
        return generator.run(
            total_requests=TOTAL_REQUESTS,
            workers=4,
            now=now,
            training_stream=paper_split.test,
            observe=recommender.observe,
        )

    load = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "serving_load",
        format_rows(
            [
                {
                    "requests": load.requests,
                    "errors": load.errors,
                    "qps": round(load.qps, 1),
                    "mean_latency_ms": round(load.mean_latency_ms, 3),
                    "p99_latency_ms": round(load.p99_latency_ms, 3),
                    "actions_trained_during_run": load.trained_actions,
                }
            ]
        ),
    )

    emit_bench(
        "serving_load",
        metrics={
            "qps": float(load.qps),
            "mean_latency_ms": float(load.mean_latency_ms),
            "p99_latency_ms": float(load.p99_latency_ms),
            "errors": load.errors,
            "actions_trained_during_run": load.trained_actions,
        },
        params={"requests": TOTAL_REQUESTS, "workers": 4},
    )

    assert load.errors == 0
    assert load.requests == TOTAL_REQUESTS
    # Tens of milliseconds even with the trainer competing for the GIL;
    # without concurrent training the same path serves at <1 ms (see
    # test_request_latency.py).
    assert load.p99_latency_ms < 250.0
    assert load.trained_actions > 0  # the model really trained concurrently
    assert recommender.trainer.stats.seen > seen_before


def test_offered_load_arrival_shapes(benchmark, paper_world, trained_variants):
    """Open-loop offered load at capacity, across arrival processes.

    All three shapes come from the shared
    :func:`repro.serving.arrivals.arrival_times` schedule (the same helper
    the scenario runner's ops loop uses).  At an offered rate equal to the
    admission controller's sustained rate, uniform arrivals ride the token
    refill and shed nothing, while bursts of 32 against an 8-token bucket
    must shed — the adversarial shape token buckets exist for.
    """
    recommender = trained_variants["CombineModel"]
    rate = 200.0

    def run_all():
        results = {}
        for process in ARRIVAL_PROCESSES:
            clock = VirtualClock(0.0)
            router = RequestRouter(
                recommender,
                admission=AdmissionController(rate=rate, burst=8, clock=clock),
                clock=clock,
            )
            generator = LoadGenerator(
                router,
                list(paper_world.users),
                list(paper_world.videos),
                related_fraction=0.5,
                seed=23,
            )
            results[process] = generator.run_offered(
                OFFERED_REQUESTS, qps=rate, clock=clock, process=process
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        {
            "process": process,
            "requests": load.requests,
            "shed": load.shed,
            "shed_rate": round(load.shed / load.requests, 4),
            "errors": load.errors,
        }
        for process, load in results.items()
    ]
    report("serving_offered_arrivals", format_rows(rows))
    emit_bench(
        "serving_offered_arrivals",
        metrics={
            f"{process}_shed_rate": load.shed / load.requests
            for process, load in results.items()
        },
        params={"requests": OFFERED_REQUESTS, "qps": rate},
    )

    for load in results.values():
        assert load.errors == 0
        assert load.requests == OFFERED_REQUESTS
    # Uniform at capacity rides the refill; bursts overwhelm the bucket.
    assert results["uniform"].shed == 0
    assert results["burst"].shed > results["uniform"].shed
    assert results["burst"].shed > 0
