"""Serving under load while training — the production envelope (§6).

Paper: the deployed system serves millions of requests per day at
millisecond latency *while* the model updates from ~1 TB of daily actions.
This benchmark drives concurrent request workers against a trained
recommender while a trainer thread streams new actions into it, and
checks the paper's operational claims at laptop scale: zero serving
errors, millisecond-class latency, and the model demonstrably advancing
during the run.
"""

from repro.serving import LoadGenerator, RequestRouter

from _emit import emit_bench
from _helpers import format_rows, report, smoke_scaled

TOTAL_REQUESTS = smoke_scaled(2000, 300)


def test_serving_under_load_while_training(
    benchmark, paper_world, paper_split, trained_variants
):
    recommender = trained_variants["CombineModel"]
    router = RequestRouter(recommender)
    generator = LoadGenerator(
        router,
        list(paper_world.users),
        list(paper_world.videos),
        related_fraction=0.5,
        seed=11,
    )
    now = max(a.timestamp for a in paper_split.train) + 1
    seen_before = recommender.trainer.stats.seen

    def run():
        return generator.run(
            total_requests=TOTAL_REQUESTS,
            workers=4,
            now=now,
            training_stream=paper_split.test,
            observe=recommender.observe,
        )

    load = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "serving_load",
        format_rows(
            [
                {
                    "requests": load.requests,
                    "errors": load.errors,
                    "qps": round(load.qps, 1),
                    "mean_latency_ms": round(load.mean_latency_ms, 3),
                    "p99_latency_ms": round(load.p99_latency_ms, 3),
                    "actions_trained_during_run": load.trained_actions,
                }
            ]
        ),
    )

    emit_bench(
        "serving_load",
        metrics={
            "qps": float(load.qps),
            "mean_latency_ms": float(load.mean_latency_ms),
            "p99_latency_ms": float(load.p99_latency_ms),
            "errors": load.errors,
            "actions_trained_during_run": load.trained_actions,
        },
        params={"requests": TOTAL_REQUESTS, "workers": 4},
    )

    assert load.errors == 0
    assert load.requests == TOTAL_REQUESTS
    # Tens of milliseconds even with the trainer competing for the GIL;
    # without concurrent training the same path serves at <1 ms (see
    # test_request_latency.py).
    assert load.p99_latency_ms < 250.0
    assert load.trained_actions > 0  # the model really trained concurrently
    assert recommender.trainer.stats.seen > seen_before
