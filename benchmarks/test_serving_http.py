"""Serving over real sockets: saturation and coalescing (§6.2 on the wire).

The paper's deployment "handles millions of user requests every day, with
latency of milliseconds" — over a network boundary, not in-process calls.
This benchmark boots the asyncio HTTP gateway over a trained CombineModel
with wall-clock admission control, then drives it with the open-loop
socket load generator in two phases:

* **baseline** — well under admission capacity: every request served,
  latency dominated by the coalescing window.
* **overload** — 2× admission capacity: the token bucket sheds the
  excess as wire-visible 503s, while accepted requests stay within 2× of
  the baseline p99 and the collector measurably batches the concurrent
  arrivals (mean coalesced batch size > 1).

Emits ``BENCH_serving_http.json`` with throughput, latency percentiles
for both phases, shed behaviour, and the coalesced-batch-size histogram.
"""

from __future__ import annotations

from repro.obs import Observability
from repro.reliability.overload import AdmissionController
from repro.serving import (
    GatewayConfig,
    GatewayThread,
    HttpLoadGenerator,
    RequestRouter,
    ServingGateway,
    http_get_json,
)

from _emit import emit_bench
from _helpers import format_rows, report, smoke_scaled

#: Admission-controlled capacity (requests/second, wall clock).  Sized so
#: the 2× overload phase stays within what one Python process can *accept*
#: per second with the load generator sharing its GIL — the model itself
#: serves at ~0.4 ms/request, but each arrival also costs both event loops
#: connection work, and an offered rate past ~400/s measures interpreter
#: saturation rather than admission control.
ADMISSION_RATE = smoke_scaled(120.0, 100.0)
ADMISSION_BURST = ADMISSION_RATE * 0.1
#: Baseline offers 40% of capacity; overload offers 2× capacity.
BASELINE_QPS = ADMISSION_RATE * 0.4
OVERLOAD_QPS = ADMISSION_RATE * 2.0
BASELINE_REQUESTS = smoke_scaled(400, 120)
OVERLOAD_REQUESTS = smoke_scaled(720, 300)
#: The coalescing window; dominates uncontended latency by design, so the
#: baseline-vs-overload comparison measures queueing, not constant cost.
BATCH_WINDOW_MS = 15.0


def test_gateway_saturation_and_coalescing(paper_world, paper_split, trained_variants):
    recommender = trained_variants["CombineModel"]
    obs = Observability.create()
    admission = AdmissionController(
        rate=ADMISSION_RATE, burst=ADMISSION_BURST, registry=obs.registry
    )
    router = RequestRouter(recommender, admission=admission, obs=obs)
    config = GatewayConfig(batch_window_ms=BATCH_WINDOW_MS, batch_max=64)
    gateway = ServingGateway(router, config=config, obs=obs)
    now = max(a.timestamp for a in paper_split.train) + 1

    with GatewayThread(gateway) as server:
        generator = HttpLoadGenerator(
            server.host,
            server.port,
            list(paper_world.users),
            list(paper_world.videos),
            related_fraction=0.5,
            seed=11,
        )
        # Warm the serving path (connection setup, first predict_many).
        generator.run_offered(20, qps=100.0, timestamp=now)

        baseline = generator.run_offered(
            BASELINE_REQUESTS, qps=BASELINE_QPS, timestamp=now
        )
        _, _, mid_snapshot = http_get_json(
            server.host, server.port, "/snapshot"
        )

        overload = generator.run_offered(
            OVERLOAD_REQUESTS, qps=OVERLOAD_QPS, timestamp=now
        )
        _, _, final_snapshot = http_get_json(
            server.host, server.port, "/snapshot"
        )
        health_status, _, health = http_get_json(
            server.host, server.port, "/healthz"
        )

    # Coalescing during the overload phase only (the snapshots accumulate).
    mid = mid_snapshot["coalescing"]
    final = final_snapshot["coalescing"]
    overload_batches = final["batches"] - mid["batches"]
    overload_coalesced = final["requests"] - mid["requests"]
    mean_batch = (
        overload_coalesced / overload_batches if overload_batches else 0.0
    )

    rows = [
        {
            "phase": name,
            "offered_qps": round(load.offered_qps, 1),
            "offered": load.offered,
            "ok": load.ok,
            "shed_503": load.shed,
            "p50_ms": round(load.p50_ms, 2),
            "p95_ms": round(load.p95_ms, 2),
            "p99_ms": round(load.p99_ms, 2),
        }
        for name, load in (("baseline", baseline), ("overload", overload))
    ]
    rows.append(
        {
            "phase": "coalescing",
            "offered_qps": "",
            "offered": overload_coalesced,
            "ok": overload_batches,
            "shed_503": "",
            "p50_ms": "",
            "p95_ms": "",
            "p99_ms": round(mean_batch, 2),
        }
    )
    report("serving_http", format_rows(rows))

    metrics = {
        "baseline_qps": float(baseline.offered_qps),
        "baseline_achieved_qps": float(baseline.achieved_qps),
        "baseline_p50_ms": float(baseline.p50_ms),
        "baseline_p95_ms": float(baseline.p95_ms),
        "baseline_p99_ms": float(baseline.p99_ms),
        "baseline_mean_ms": float(baseline.mean_ms),
        "baseline_shed": baseline.shed,
        "overload_qps": float(overload.offered_qps),
        "overload_achieved_qps": float(overload.achieved_qps),
        "overload_ok": overload.ok,
        "overload_shed": overload.shed,
        "overload_shed_fraction": overload.shed / overload.offered,
        "overload_errors": overload.errors,
        "overload_p50_ms": float(overload.p50_ms),
        "overload_p95_ms": float(overload.p95_ms),
        "overload_p99_ms": float(overload.p99_ms),
        "coalesce_mean_batch_size": float(mean_batch),
        "coalesce_batches_overload": overload_batches,
        "coalesce_max_batch_size": final["max_batch_size"],
    }
    # The run-wide batch-size histogram, flattened into flat metric keys.
    for size, count in final["batch_size_counts"].items():
        metrics[f"coalesce_hist_{size}"] = count

    emit_bench(
        "serving_http",
        metrics=metrics,
        params={
            "admission_rate": ADMISSION_RATE,
            "admission_burst": ADMISSION_BURST,
            "baseline_requests": BASELINE_REQUESTS,
            "overload_requests": OVERLOAD_REQUESTS,
            "batch_window_ms": BATCH_WINDOW_MS,
            "batch_max": 64,
        },
    )

    # -- acceptance: the wire behaves like the overload design says ------
    assert health_status == 200 and health["status"] == "ok"
    assert baseline.connect_errors == 0 and overload.connect_errors == 0
    assert baseline.errors == 0 and overload.errors == 0
    # Baseline is under capacity: nothing shed, everything served.
    assert baseline.shed == 0
    assert baseline.ok == BASELINE_REQUESTS
    # 2x capacity: the token bucket sheds the excess as 503s on the wire,
    # while the accepted stream is still served.
    assert overload.shed > 0
    assert overload.ok > 0
    assert overload.ok + overload.shed == OVERLOAD_REQUESTS
    # Accepted-request p99 stays within 2x of the uncontended baseline
    # (+2 ms absolute grace for OS scheduler jitter at millisecond scale).
    assert overload.p99_ms <= 2.0 * baseline.p99_ms + 2.0, (
        f"overload p99 {overload.p99_ms:.2f}ms vs "
        f"baseline p99 {baseline.p99_ms:.2f}ms"
    )
    # Concurrent arrivals really coalesce into multi-request batches.
    assert mean_batch > 1.0, f"mean coalesced batch size {mean_batch:.2f}"
