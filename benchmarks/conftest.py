"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's §6 on the
calibrated synthetic world (see DESIGN.md for the substitution argument).
Results are printed and also written to ``benchmarks/results/`` so
EXPERIMENTS.md can cite them.

The expensive artefacts (the world, its action stream, the chronological
split, trained models) are session-scoped and shared across benchmarks.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _helpers import build_world, train_variant  # noqa: E402

from repro.core.variants import ALL_VARIANTS, COMBINE_MODEL  # noqa: E402
from repro.data import split_by_day  # noqa: E402
from repro.obs import Observability  # noqa: E402


@pytest.fixture(scope="session")
def paper_world():
    return build_world()


@pytest.fixture(scope="session")
def paper_actions(paper_world):
    return paper_world.generate_actions()


@pytest.fixture(scope="session")
def paper_split(paper_actions):
    return split_by_day(paper_actions, train_days=6)


@pytest.fixture(scope="session")
def genuine_liked(paper_world, paper_split):
    return paper_world.genuinely_liked(paper_split.test)


@pytest.fixture(scope="session")
def trained_variants(paper_world, paper_split):
    """One trained recommender per §6.1.2 variant (shared by Fig 4/5)."""
    return {
        variant.name: train_variant(paper_world, paper_split.train, variant)
        for variant in ALL_VARIANTS
    }


@pytest.fixture(scope="session")
def obs_trained(paper_world, paper_split):
    """A CombineModel trained with an Observability bundle attached.

    Serving through this recommender (and a router built over the same
    bundle) produces registry metrics and complete traces, which the
    harnessed benchmarks embed in their BENCH_*.json span breakdowns.
    """
    obs = Observability.create()
    recommender = train_variant(
        paper_world, paper_split.train, COMBINE_MODEL, obs=obs
    )
    return obs, recommender
