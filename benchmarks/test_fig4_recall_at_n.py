"""Figure 4 — recall@N (N = 1..10) for BinaryModel / ConfModel /
CombineModel, per demographic group.

Paper: CombineModel steadily above the other two (~10 % average
improvement); BinaryModel slightly above ConfModel in most cases but not
all.  Recall values live in the 0.02-0.16 band.

Here: the three variants (each with its own grid-searched rates) are
trained online on the calibrated world; recall@N is computed globally and
within the three largest demographic groups.  Shape checks: recall values
in a plausible band, hit counts monotone in N, and CombineModel on top of
the global aggregate (the per-group margins between variants are inside
noise at this scale — see EXPERIMENTS.md for the multi-seed means).
"""

from repro.data import group_stats
from repro.eval import recall_curve

from _helpers import format_rows, report


def _group_members(world, liked, group):
    return [
        u
        for u in liked
        if world.users.get(u) and world.users[u].demographic_group == group
    ]


def test_fig4_recall_at_n(
    benchmark, paper_world, paper_split, genuine_liked, trained_variants
):
    now = min(a.timestamp for a in paper_split.test)
    top_groups = list(
        group_stats(paper_split.train, paper_world.users, top_k=3)
    )

    def run():
        curves: dict[tuple[str, str], dict[int, float]] = {}
        for variant_name, recommender in trained_variants.items():
            recs = {
                u: recommender.recommend_ids(u, n=10, now=now)
                for u in genuine_liked
            }
            curves[(variant_name, "Global")] = recall_curve(
                recs, genuine_liked, max_n=10
            )
            for group in top_groups:
                members = _group_members(paper_world, genuine_liked, group)
                sub_recs = {u: recs[u] for u in members}
                sub_liked = {u: genuine_liked[u] for u in members}
                curves[(variant_name, group)] = recall_curve(
                    sub_recs, sub_liked, max_n=10
                )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (variant, group), curve in sorted(curves.items()):
        row = {"variant": variant, "group": group}
        row.update({f"N={n}": round(curve[n], 4) for n in (1, 2, 5, 10)})
        rows.append(row)
    report("fig4_recall_at_n", format_rows(rows))

    for (variant, group), curve in curves.items():
        # recall@N in a plausible band and hit counts monotone in N.
        assert all(0.0 <= v <= 1.0 for v in curve.values())
        hits = [curve[n] * n for n in range(1, 11)]
        assert all(b >= a - 1e-9 for a, b in zip(hits, hits[1:]))

    global_recall = {
        variant: curves[(variant, "Global")][10]
        for variant in trained_variants
    }
    assert global_recall["CombineModel"] > 0
    # The headline ordering on the calibration seed: Combine on top.
    assert global_recall["CombineModel"] >= max(
        global_recall["BinaryModel"], global_recall["ConfModel"]
    ) * 0.999
