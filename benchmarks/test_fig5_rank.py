"""Figure 5 — the rank metric (Eq. 14) for the three model variants per
demographic group.

Paper: values around 0.5 (recommended videos sit mid-list of the users'
test interests, far better than the no-overlap worst case of 1.0);
CombineModel lowest, BinaryModel slightly better than ConfModel.

Here: same trained variants as Figure 4, rank computed per group and
globally.  Shape checks: all values clearly better than 1.0 (around the
paper's 0.4-0.5 band) and CombineModel not the worst variant.
"""

from repro.data import group_stats
from repro.eval import average_rank, interest_lists_by_user

from _helpers import format_rows, report


def test_fig5_average_rank(
    benchmark, paper_world, paper_split, genuine_liked, trained_variants
):
    now = min(a.timestamp for a in paper_split.test)
    interest = interest_lists_by_user(paper_split.test, videos=paper_world.videos)
    top_groups = list(
        group_stats(paper_split.train, paper_world.users, top_k=3)
    )

    def run():
        ranks: dict[tuple[str, str], float] = {}
        for variant_name, recommender in trained_variants.items():
            recs = {
                u: recommender.recommend_ids(u, n=10, now=now)
                for u in genuine_liked
            }
            full_interest = {u: interest.get(u, []) for u in genuine_liked}
            ranks[(variant_name, "Global")] = average_rank(recs, full_interest)
            for group in top_groups:
                members = [
                    u
                    for u in genuine_liked
                    if paper_world.users.get(u)
                    and paper_world.users[u].demographic_group == group
                ]
                ranks[(variant_name, group)] = average_rank(
                    {u: recs[u] for u in members},
                    {u: interest.get(u, []) for u in members},
                )
        return ranks

    ranks = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {"variant": variant, "group": group, "rank": round(value, 4)}
        for (variant, group), value in sorted(ranks.items())
    ]
    report("fig5_rank", format_rows(rows))

    for value in ranks.values():
        assert 0.0 <= value <= 1.0
        # Far better than the no-overlap worst case; the paper's values
        # hover around 0.5.
        assert value < 0.8

    global_ranks = {
        variant: ranks[(variant, "Global")] for variant in trained_variants
    }
    # Lower is better: Combine must not be the worst variant.
    assert global_ranks["CombineModel"] <= max(global_ranks.values())
    assert global_ranks["CombineModel"] < 0.6
