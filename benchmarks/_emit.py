"""Schema-versioned JSON emission for the perf-regression harness.

Every benchmark that participates in the regression harness calls
:func:`emit_bench` with a flat dict of numeric metrics (p50/p95/p99,
throughput, ...) and optionally the per-stage span breakdown from a
:class:`repro.obs.Tracer`.  The document lands at
``benchmarks/results/BENCH_<name>.json`` where CI archives it, so runs can
be diffed across commits.

The document schema (``BENCH_SCHEMA_VERSION`` = 1)::

    {
      "schema_version": 1,
      "name": "latency",               # [a-z][a-z0-9_]*
      "smoke": false,                  # REPRO_BENCH_SMOKE reduced scale?
      "env": {"python": "...", "platform": "..."},
      "params": {"requests": 2000},    # scalar run parameters
      "metrics": {"p50_ms": 0.4},      # flat, finite numbers only
      "spans": {                       # optional per-stage attribution
        "router.handle": {"count": 10, "self_seconds": ..., "subtree_seconds": ...}
      }
    }

:func:`validate_bench_doc` checks a document against that schema with no
third-party dependency, and the module doubles as a CLI validator::

    python benchmarks/_emit.py --validate benchmarks/results/BENCH_*.json
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import sys
from pathlib import Path
from typing import Any, Mapping

#: Version stamped into every BENCH_*.json document.
BENCH_SCHEMA_VERSION = 1

RESULTS_DIR = Path(__file__).parent / "results"

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Keys required in every per-stage span entry.
_SPAN_KEYS = ("count", "self_seconds", "subtree_seconds")


def bench_smoke() -> bool:
    """Whether this run is the reduced-scale CI smoke configuration."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _is_finite_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def build_bench_doc(
    name: str,
    metrics: Mapping[str, float],
    params: Mapping[str, Any] | None = None,
    spans: Mapping[str, Mapping[str, float]] | None = None,
) -> dict:
    """Assemble (and validate) one benchmark document."""
    doc: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "smoke": bench_smoke(),
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "params": dict(params or {}),
        "metrics": dict(metrics),
    }
    if spans is not None:
        doc["spans"] = {
            stage: {key: stats[key] for key in _SPAN_KEYS}
            for stage, stats in spans.items()
        }
    errors = validate_bench_doc(doc)
    if errors:
        raise ValueError(
            f"refusing to emit invalid bench doc {name!r}: " + "; ".join(errors)
        )
    return doc


def emit_bench(
    name: str,
    metrics: Mapping[str, float],
    params: Mapping[str, Any] | None = None,
    spans: Mapping[str, Mapping[str, float]] | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results/``.

    ``metrics`` must be a flat mapping of finite numbers; ``spans`` is the
    (optional) output of :meth:`repro.obs.Tracer.stage_latencies`.
    Returns the written path.
    """
    doc = build_bench_doc(name, metrics, params=params, spans=spans)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def validate_bench_doc(doc: Any) -> list[str]:
    """Check one document against the BENCH schema; return the problems.

    An empty list means the document is valid.  Hand-rolled on purpose:
    the validation must run in CI without any dependency beyond the
    standard library.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]

    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, got {version!r}"
        )

    name = doc.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        errors.append(f"name must match {_NAME_RE.pattern}, got {name!r}")

    if not isinstance(doc.get("smoke"), bool):
        errors.append("smoke must be a boolean")

    env = doc.get("env")
    if not isinstance(env, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in env.items()
    ):
        errors.append("env must be a string-to-string object")

    params = doc.get("params")
    if not isinstance(params, dict):
        errors.append("params must be an object")
    else:
        for key, value in params.items():
            if not isinstance(value, (str, int, float, bool, type(None))):
                errors.append(f"params[{key!r}] must be a scalar")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append("metrics must be a non-empty object")
    else:
        for key, value in metrics.items():
            if not isinstance(key, str):
                errors.append(f"metric name {key!r} must be a string")
            if not _is_finite_number(value):
                errors.append(f"metrics[{key!r}] must be a finite number")

    if "spans" in doc:
        spans = doc["spans"]
        if not isinstance(spans, dict):
            errors.append("spans must be an object")
        else:
            for stage, stats in spans.items():
                if not isinstance(stats, dict):
                    errors.append(f"spans[{stage!r}] must be an object")
                    continue
                for key in _SPAN_KEYS:
                    if key not in stats:
                        errors.append(f"spans[{stage!r}] missing {key!r}")
                    elif not _is_finite_number(stats[key]):
                        errors.append(
                            f"spans[{stage!r}][{key!r}] must be a finite number"
                        )

    unknown = set(doc) - {
        "schema_version",
        "name",
        "smoke",
        "env",
        "params",
        "metrics",
        "spans",
    }
    if unknown:
        errors.append(f"unknown top-level keys: {sorted(unknown)}")
    return errors


def _main(argv: list[str]) -> int:
    if not argv or argv[0] != "--validate" or len(argv) < 2:
        print(
            "usage: python benchmarks/_emit.py --validate BENCH_*.json",
            file=sys.stderr,
        )
        return 2
    failed = 0
    for raw_path in argv[1:]:
        path = Path(raw_path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: UNREADABLE ({exc})")
            failed += 1
            continue
        errors = validate_bench_doc(doc)
        if errors:
            failed += 1
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"{path}: ok ({len(doc['metrics'])} metrics)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
