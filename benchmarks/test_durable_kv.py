"""Durable KV tier — write/read throughput per fsync policy, recovery cost.

Three questions the durable tier must answer with numbers:

* **What does durability cost on the write path?**  ``put`` throughput
  under ``fsync="never"`` / ``"interval"`` / ``"always"``, plus the
  group-commit win of ``mput`` under ``"always"`` (one fsync per batch
  instead of one per record).
* **What do reads cost once the cache tier is on top?**  ``get``
  throughput against the bare ``DurableKVStore`` (every read re-verifies
  the record checksum on disk) vs through ``ReadThroughCache`` on a hot
  working set.
* **How long does recovery take?**  Open time (index rebuild scans every
  segment) as the segment count grows, and the same corpus after
  ``compact()`` folded it into one segment.

Emits ``BENCH_durable_kv.json``; CI's durability job validates and
archives it.
"""

import time

from repro.kvstore import DurableKVStore, ReadThroughCache

from _emit import emit_bench
from _helpers import format_rows, report, smoke_scaled

SEGMENT_MAX_BYTES = 256 * 1024


def _payload(i: int):
    # ~100 bytes pickled: representative of a packed factor-vector entry.
    return (f"k{i:08d}", i, [float(i)] * 8)


def _put_throughput(root, policy: str, n: int) -> float:
    with DurableKVStore(
        root, fsync=policy, segment_max_bytes=SEGMENT_MAX_BYTES
    ) as store:
        started = time.perf_counter()
        for i in range(n):
            store.put(f"k{i:08d}", _payload(i))
        elapsed = time.perf_counter() - started
    return n / elapsed


def _mput_throughput(root, policy: str, n: int, batch: int) -> float:
    with DurableKVStore(
        root, fsync=policy, segment_max_bytes=SEGMENT_MAX_BYTES
    ) as store:
        started = time.perf_counter()
        for lo in range(0, n, batch):
            store.mput(
                [
                    (f"k{i:08d}", _payload(i))
                    for i in range(lo, min(lo + batch, n))
                ]
            )
        elapsed = time.perf_counter() - started
    return n / elapsed


def test_durable_kv_throughput_and_recovery(tmp_path):
    n_writes = smoke_scaled(20_000, 2_000)
    # fsync="always" pays a real disk flush per record; keep its sample
    # small enough that the benchmark stays interactive.
    n_always = smoke_scaled(1_000, 200)
    n_reads = smoke_scaled(40_000, 4_000)
    hot_keys = 512

    metrics: dict[str, float] = {}
    write_rows = []
    for policy, n in (("never", n_writes), ("interval", n_writes)):
        ops = _put_throughput(tmp_path / f"put-{policy}", policy, n)
        metrics[f"put_{policy}_ops"] = ops
        write_rows.append({"path": f"put fsync={policy}", "ops_per_s": round(ops)})
    always_put = _put_throughput(tmp_path / "put-always", "always", n_always)
    always_mput = _mput_throughput(
        tmp_path / "mput-always", "always", n_always * 4, batch=256
    )
    metrics["put_always_ops"] = always_put
    metrics["mput_always_ops"] = always_mput
    metrics["group_commit_speedup"] = always_mput / always_put
    write_rows += [
        {"path": "put fsync=always", "ops_per_s": round(always_put)},
        {"path": "mput(256) fsync=always", "ops_per_s": round(always_mput)},
    ]

    # --- Read path: raw disk reads vs the cache tier on a hot set -------
    durable = DurableKVStore(
        tmp_path / "reads", fsync="never", segment_max_bytes=SEGMENT_MAX_BYTES
    )
    durable.mput([(f"k{i:08d}", _payload(i)) for i in range(n_writes)])
    keys = [f"k{i % hot_keys:08d}" for i in range(n_reads)]

    started = time.perf_counter()
    for key in keys:
        durable.get(key)
    raw_get = n_reads / (time.perf_counter() - started)

    cache = ReadThroughCache(durable, capacity=hot_keys * 2)
    for key in keys[:hot_keys]:  # warm
        cache.get(key)
    started = time.perf_counter()
    for key in keys:
        cache.get(key)
    cached_get = n_reads / (time.perf_counter() - started)
    durable.close()

    metrics["get_disk_ops"] = raw_get
    metrics["get_cached_ops"] = cached_get
    metrics["cache_read_speedup"] = cached_get / raw_get

    # --- Recovery: open time vs segment count ---------------------------
    recovery_rows = []
    small_segments = 16 * 1024
    for label, n in (("small", n_writes // 4), ("large", n_writes)):
        root = tmp_path / f"recover-{label}"
        with DurableKVStore(
            root, fsync="never", segment_max_bytes=small_segments
        ) as store:
            store.mput([(f"k{i:08d}", _payload(i)) for i in range(n)])
            n_segments = len(store.sealed_segments()) + 1

        started = time.perf_counter()
        reopened = DurableKVStore(
            root, fsync="never", segment_max_bytes=small_segments
        )
        open_s = time.perf_counter() - started
        assert len(reopened) == n

        reopened.compact()
        reopened.close()
        started = time.perf_counter()
        DurableKVStore(
            root, fsync="never", segment_max_bytes=small_segments
        ).close()
        compacted_open_s = time.perf_counter() - started

        metrics[f"open_ms_{label}"] = open_s * 1000.0
        metrics[f"open_ms_{label}_compacted"] = compacted_open_s * 1000.0
        metrics[f"segments_{label}"] = float(n_segments)
        recovery_rows.append(
            {
                "corpus": f"{n} records / {n_segments} segments",
                "open_ms": round(open_s * 1000.0, 1),
                "open_ms_compacted": round(compacted_open_s * 1000.0, 1),
            }
        )

    report(
        "durable_kv",
        format_rows(write_rows)
        + "\n\n"
        + format_rows(
            [
                {"path": "get (disk, checksummed)", "ops_per_s": round(raw_get)},
                {"path": "get (read-through cache)", "ops_per_s": round(cached_get)},
            ]
        )
        + "\n\n"
        + format_rows(recovery_rows),
    )
    emit_bench(
        "durable_kv",
        metrics=metrics,
        params={
            "writes": n_writes,
            "writes_fsync_always": n_always,
            "reads": n_reads,
            "hot_keys": hot_keys,
            "segment_max_bytes": SEGMENT_MAX_BYTES,
        },
    )

    # Sanity bars, not perf gates: relaxed enough to hold on CI runners.
    assert metrics["group_commit_speedup"] > 1.0, (
        "mput group commit should beat per-put fsync"
    )
    assert metrics["cache_read_speedup"] > 1.0, (
        "hot-set reads through the cache should beat raw disk gets"
    )
