"""Demographic optimizations — DB filtering and demographic training (§5.2).

Run:  python examples/demographic_pipeline.py

What it shows:
  1. the demographic-based (DB) hot-video algorithm and how its results
     complement MF recommendations (diversity slots + cold-start fallback),
  2. how a brand-new unregistered user still gets served (global group),
  3. demographic training: one model per group, with the per-group density
     gain of Table 4 and the per-group recall gain of Figure 3.
"""

from repro import GroupedRecommender, RealtimeRecommender, SyntheticWorld, VirtualClock
from repro.data import dataset_stats, group_stats, split_by_day
from repro.data.synthetic import paper_world_config
from repro.eval import recall_curve


def main() -> None:
    world = SyntheticWorld(paper_world_config(n_users=200, n_videos=250))
    split = split_by_day(world.generate_actions(), train_days=6)
    now = min(a.timestamp for a in split.test)

    # --- 1. DB algorithm + demographic filtering -----------------------
    clock = VirtualClock(0.0)
    recommender = RealtimeRecommender(
        world.videos, users=world.users, clock=clock, enable_demographic=True
    )
    recommender.observe_stream(split.train)
    clock.set(now)

    some_user = next(u for u in world.users if recommender.history.recent(u))
    group = recommender.demographic.group_for(some_user)
    print(f"user {some_user} belongs to demographic group {group!r}")
    print(f"  group hot videos: {recommender.demographic.recommend(some_user, 5)}")
    print(f"  merged top-5:     {recommender.recommend_ids(some_user, n=5)}")

    # --- 2. cold start: a user we have never seen ----------------------
    print("\nbrand-new unregistered user gets the global hot fallback:")
    print(f"  {recommender.recommend_ids('totally-new-visitor', n=5)}")

    # --- 3. demographic training (one model per group) -----------------
    print("\nper-group density (Table 4's effect):")
    global_stats = dataset_stats(split.train)
    for name, stats in group_stats(split.train, world.users, top_k=3).items():
        ratio = stats.sparsity / global_stats.sparsity
        print(
            f"  {name:<10} users={stats.n_users:<4} "
            f"density x{ratio:4.2f} vs global"
        )

    grouped = GroupedRecommender(
        world.videos, world.users, clock=VirtualClock(0.0)
    )
    grouped.observe_stream(split.train)

    liked = world.genuinely_liked(split.test)
    top_group = next(iter(group_stats(split.train, world.users, top_k=1)))
    members = [
        u
        for u in liked
        if world.users.get(u)
        and world.users[u].demographic_group == top_group
    ]
    grouped_recs = {
        u: [r.video_id for r in grouped.recommend(u, n=10, now=now)]
        for u in members
    }
    global_recs = {
        u: recommender.recommend_ids(u, n=10, now=now) for u in members
    }
    sub_liked = {u: liked[u] for u in members}
    print(f"\nFigure 3's effect on group {top_group!r} ({len(members)} test users):")
    print(f"  grouped training recall@10: {recall_curve(grouped_recs, sub_liked)[10]:.4f}")
    print(f"  global  training recall@10: {recall_curve(global_recs, sub_liked)[10]:.4f}")


if __name__ == "__main__":
    main()
