"""Quickstart — train the real-time recommender on a synthetic week and
serve recommendations.

Run:  python examples/quickstart.py

What it shows:
  1. building a synthetic Tencent-Video-like world,
  2. streaming six days of implicit feedback through the online
     adjustable-MF recommender (Algorithm 1 + similar-video tables),
  3. serving "Guess You Like" and "Related Videos" requests in real time,
  4. scoring the result with the paper's recall@N / rank metrics.
"""

from repro import RealtimeRecommender, SyntheticWorld, VirtualClock
from repro.data import split_by_day
from repro.data.synthetic import paper_world_config
from repro.eval import evaluate


def main() -> None:
    # 1. A calibrated world: 300 users, 400 videos, 7 days of actions.
    world = SyntheticWorld(paper_world_config())
    actions = world.generate_actions()
    print(f"generated {len(actions):,} user actions over 7 days")

    split = split_by_day(actions, train_days=6)

    # 2. Stream the first six days through the recommender, one action at
    #    a time — every action updates the model in a single step.
    clock = VirtualClock(0.0)
    recommender = RealtimeRecommender(
        world.videos, users=world.users, clock=clock
    )
    recommender.observe_stream(split.train)
    clock.set(max(a.timestamp for a in split.train) + 1)
    print(
        f"trained online: {recommender.model.n_users} user vectors, "
        f"{recommender.model.n_videos} video vectors, "
        f"{len(recommender.table.tracked_videos())} similar-video lists"
    )

    # 3a. "Guess You Like": the user opens the site, seeds come from their
    #     recent history.
    user = next(u for u in world.users if recommender.history.recent(u))
    print(f"\nGuess-you-like for {user}:")
    for rec in recommender.recommend(user, n=5):
        video = world.videos[rec.video_id]
        print(f"  {rec.video_id:>6}  type={video.kind:<8} score={rec.score:+.3f}")

    # 3b. "Related Videos": the user is watching something right now.
    current = recommender.history.recent(user, 1)[0]
    print(f"\nPeople who watched {current} also like:")
    for rec in recommender.recommend(user, current_video=current, n=5):
        print(f"  {rec.video_id:>6}  score={rec.score:+.3f}")

    # 4. Offline evaluation on the held-out seventh day (Eq. 13 / Eq. 14).
    fresh = RealtimeRecommender(
        world.videos, users=world.users, clock=VirtualClock(0.0)
    )
    result = evaluate(
        fresh,
        split.train,
        split.test,
        videos=world.videos,
        liked=world.genuinely_liked(split.test),
    )
    print(f"\nOffline protocol scores: {result.summary()}")
    print(
        f"mean request latency: "
        f"{recommender.request_latency.mean * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
