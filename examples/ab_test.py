"""Simulated A/B test — rMF against the production comparators (§6.2).

Run:  python examples/ab_test.py

What it shows: the live-evaluation methodology of the paper — traffic
diverted into arms, one recommendation method per arm, CTR tracked per day
— on the synthetic world whose ground-truth click model simulates the
users.  Batch arms (AR, SimHash) retrain daily; Hot and rMF update in real
time.
"""

from repro import RealtimeRecommender, SyntheticWorld, VirtualClock
from repro.baselines import (
    AssociationRuleRecommender,
    HotRecommender,
    SimHashCFRecommender,
)
from repro.data.synthetic import paper_world_config
from repro.eval import ABTestHarness

DAYS = 5


def main() -> None:
    world = SyntheticWorld(paper_world_config(n_users=150, n_videos=200, days=DAYS))
    arms = {
        "Hot": HotRecommender(clock=VirtualClock(0.0), exclude_watched=False),
        "AR": AssociationRuleRecommender(
            min_support=2, min_confidence=0.02, exclude_watched=False
        ),
        "SimHash": SimHashCFRecommender(
            min_similarity=0.55, exclude_watched=False
        ),
        "rMF": RealtimeRecommender(
            world.videos, users=world.users, clock=VirtualClock(0.0)
        ),
    }
    harness = ABTestHarness(
        world, arms=arms, days=DAYS, requests_per_user_per_day=1, top_n=10
    )
    print(f"running a {DAYS}-day A/B test with arms: {', '.join(arms)} ...")
    result = harness.run()

    daily = result.daily_ctr()
    print("\nper-day CTR (Figure 7 series):")
    header = "day  " + "  ".join(f"{arm:>8}" for arm in arms)
    print(header)
    for day in range(DAYS):
        cells = "  ".join(f"{daily[arm][day]:8.4f}" for arm in arms)
        print(f"{day + 1:>3}  {cells}")

    print("\noverall CTR:")
    for arm, ctr in sorted(
        result.overall_ctr().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {arm:<8} {ctr:.4f}")

    print("\npairwise improvements (Table 5 style):")
    improvements = result.improvement_table()
    for (a, b) in (("rMF", "Hot"), ("rMF", "AR"), ("rMF", "SimHash")):
        print(f"  {a} over {b}: {100 * improvements[(a, b)]:+.1f} %")


if __name__ == "__main__":
    main()
