"""Continuous experimentation — rMF against the production comparators (§6.2).

Run:  python examples/ab_test.py

What it shows: the live-evaluation methodology of the paper, upgraded to
the :class:`repro.eval.Experiment` platform — team-draft interleaved
traffic (every request is a multileaved list drafted from all arms, which
slashes the variance of CTR deltas), mSPRT sequential stopping against the
Hot control, CTR tracked per day — on the synthetic world whose
ground-truth click model simulates the users.  Batch arms (AR, SimHash)
retrain daily; Hot and rMF update in real time.
"""

from repro import RealtimeRecommender, SyntheticWorld, VirtualClock
from repro.baselines import (
    AssociationRuleRecommender,
    HotRecommender,
    SimHashCFRecommender,
)
from repro.data.synthetic import paper_world_config
from repro.eval import Experiment, MSPRTStopping

DAYS = 5


def main() -> None:
    world = SyntheticWorld(paper_world_config(n_users=150, n_videos=200, days=DAYS))
    arms = {
        "Hot": HotRecommender(clock=VirtualClock(0.0), exclude_watched=False),
        "AR": AssociationRuleRecommender(
            min_support=2, min_confidence=0.02, exclude_watched=False
        ),
        "SimHash": SimHashCFRecommender(
            min_similarity=0.55, exclude_watched=False
        ),
        "rMF": RealtimeRecommender(
            world.videos, users=world.users, clock=VirtualClock(0.0)
        ),
    }
    experiment = Experiment(
        world,
        arms,
        days=DAYS,
        requests_per_user_per_day=1,
        top_n=10,
        assignment="interleave",
        stopping=MSPRTStopping(control="Hot", min_days=2),
    )
    print(
        f"running a {DAYS}-day interleaved experiment with arms: "
        f"{', '.join(arms)} ..."
    )
    result = experiment.run()

    daily = result.daily_ctr()
    print("\nper-day CTR (Figure 7 series):")
    header = "day  " + "  ".join(f"{arm:>8}" for arm in arms)
    print(header)
    for day in range(result.days):
        cells = "  ".join(
            f"{daily[arm][day]:8.4f}" if daily[arm][day] is not None else
            f"{'-':>8}"
            for arm in arms
        )
        print(f"{day + 1:>3}  {cells}")

    print("\noverall CTR:")
    for arm, ctr in sorted(
        result.overall_ctr().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {arm:<8} {ctr:.4f}")

    print("\npairwise improvements (Table 5 style):")
    improvements = result.improvement_table()
    for (a, b) in (("rMF", "Hot"), ("rMF", "AR"), ("rMF", "SimHash")):
        print(f"  {a} over {b}: {100 * improvements[(a, b)]:+.1f} %")

    print("\nsequential stopping (mSPRT vs the Hot control):")
    for arm, p in sorted(result.p_values.items()):
        print(f"  {arm:<8} running p-value {p:.2e}")
    if result.stopped_day is not None:
        print(
            f"  stopped early after day {result.stopped_day + 1}: "
            f"{result.stopped_arm} beat the control at alpha=0.05"
        )
    else:
        print("  ran the full horizon (no arm crossed alpha)")


if __name__ == "__main__":
    main()
