"""Serve while training — the system's defining real-time property.

Run:  python examples/serve_while_train.py

What it shows: concurrent request workers hitting the recommendation
router (both Figure 6 scenarios) while a trainer thread streams fresh user
actions into the very same model — recommendations reflect activity from
seconds ago, and serving latency stays in the millisecond band throughout.
"""

from repro import RealtimeRecommender, SyntheticWorld, VirtualClock
from repro.data import split_by_day
from repro.data.synthetic import paper_world_config
from repro.serving import LoadGenerator, RequestRouter, Scenario


def main() -> None:
    world = SyntheticWorld(paper_world_config(n_users=200, n_videos=250))
    split = split_by_day(world.generate_actions(), train_days=6)

    clock = VirtualClock(0.0)
    recommender = RealtimeRecommender(
        world.videos, users=world.users, clock=clock
    )
    print(f"warm-starting on {len(split.train):,} actions ...")
    recommender.observe_stream(split.train)
    clock.set(min(a.timestamp for a in split.test))

    router = RequestRouter(recommender)
    generator = LoadGenerator(
        router,
        list(world.users),
        list(world.videos),
        related_fraction=0.5,
        seed=1,
    )
    print(
        f"firing 1,000 requests from 4 workers while streaming "
        f"{len(split.test):,} day-7 actions into the model ..."
    )
    load = generator.run(
        total_requests=1000,
        workers=4,
        now=min(a.timestamp for a in split.test),
        training_stream=split.test,
        observe=recommender.observe,
    )

    print(
        f"\nserved {load.requests:,} requests "
        f"({load.qps:,.0f} req/s) with {load.errors} errors"
    )
    print(
        f"latency: mean {load.mean_latency_ms:.2f} ms, "
        f"p99 {load.p99_latency_ms:.2f} ms"
    )
    print(f"actions trained during the run: {load.trained_actions:,}")
    for scenario in Scenario:
        stats = router.stats(scenario)
        print(
            f"  {scenario.value:<16} requests={stats.requests:<5} "
            f"empty={stats.empty:<4} "
            f"mean={stats.latency.mean * 1000:.2f} ms"
        )


if __name__ == "__main__":
    main()
