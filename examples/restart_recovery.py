"""Crash and restart with durable recovery — no acked action lost.

Run:  python examples/restart_recovery.py

What it shows: a serving process ingests a live action stream into a
durable tier (log-structured KV store under a read-through cache, with a
write-ahead log and periodic incremental checkpoints).  This script
SIGKILLs that process mid-ingest — no shutdown hook, no flush — then
restarts: the checkpoint rolls the store back to a consistent segment
set, the WAL suffix replays through a fresh recommender, and the revived
process serves exactly the same top-N as an uninterrupted run over the
same acked prefix.
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core.recommender import RealtimeRecommender
from repro.data import SyntheticWorld
from repro.data.synthetic import WorldConfig
from repro.kvstore import DurableKVStore, ReadThroughCache, ShardedKVStore
from repro.reliability import ActionWAL, CheckpointManager, RecoveryManager

WORLD = dict(n_users=60, n_videos=80, n_types=5, days=3, seed=11)
KILL_AFTER = 400  # acked actions before the SIGKILL
CHECKPOINT_EVERY = 100


def build_tier(root: Path):
    durable = DurableKVStore(root / "kv", fsync="interval")
    tier = ReadThroughCache(durable, capacity=1024)
    wal = ActionWAL(root / "wal", fsync=True)
    recovery = RecoveryManager(CheckpointManager(root / "ckpt"), wal)
    return durable, tier, wal, recovery


def ingest(root: Path) -> None:
    """Child mode: stream actions durably, ack each one, never exit cleanly."""
    world = SyntheticWorld(WorldConfig(**WORLD))
    _, tier, wal, recovery = build_tier(root)
    recommender = RealtimeRecommender(
        world.videos, enable_demographic=False, store=tier, wal=wal
    )
    recovery.checkpoint(tier, incremental=True)  # baseline cut at seq 0
    for count, action in enumerate(world.generate_actions(), start=1):
        recommender.observe(action)
        print(f"ACK {count}", flush=True)
        if count % CHECKPOINT_EVERY == 0:
            recovery.checkpoint(tier, incremental=True)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-restart-"))
    print(f"data root: {root}")

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, __file__, "--ingest", str(root)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    acked = 0
    for line in child.stdout:
        if line.startswith("ACK "):
            acked = int(line.split()[1])
            if acked >= KILL_AFTER:
                break
    os.kill(child.pid, signal.SIGKILL)
    child.wait()
    child.stdout.close()
    print(f"ingested {acked} acked actions, then SIGKILL (rc={child.returncode})")

    # ---- Restart: recover from the surviving files ---------------------
    world = SyntheticWorld(WorldConfig(**WORLD))
    durable, tier, wal, recovery = build_tier(root)
    recovered = RealtimeRecommender(
        world.videos, enable_demographic=False, store=tier, wal=wal
    )
    report = recovery.recover(tier, recovered.observe)
    print(
        f"recovered: checkpoint seq={report.checkpoint.wal_seq if report.checkpoint else '-'}, "
        f"replayed {report.replayed} WAL records, last seq {report.last_seq}"
    )
    assert report.last_seq >= acked, "an acked action went missing!"

    # ---- Referee: a clean process that saw the same prefix -------------
    actions = world.generate_actions()[: report.last_seq]
    clean = RealtimeRecommender(
        world.videos,
        enable_demographic=False,
        store=ShardedKVStore(n_shards=4),
    )
    clean.observe_stream(actions)

    now = actions[-1].timestamp + 60.0
    users = sorted({a.user_id for a in actions})[:8]
    for user in users:
        got = recovered.recommend_ids(user, n=5, now=now)
        want = clean.recommend_ids(user, n=5, now=now)
        match = "ok" if got == want else "MISMATCH"
        print(f"  {user}: {got} [{match}]")
        assert got == want, f"top-N diverged for {user}"
    durable.close()
    print(f"\nall {len(users)} users serve identical top-5 after the crash.")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--ingest":
        ingest(Path(sys.argv[2]))
    else:
        main()
