"""Streaming topology — run the paper's Figure 2 Storm topology end to end.

Run:  python examples/streaming_topology.py

What it shows:
  1. serialising a synthetic action stream to raw log lines (the format
     the production spout parses),
  2. assembling the Figure 2 topology — spout, UserHistory, ComputeMF ->
     MFStorage (fields-grouped single-writer vector updates), GetItemPairs
     -> ItemPairSim -> ResultStorage — over a sharded KV store,
  3. executing it on the threaded executor with real per-worker queues,
  4. serving recommendations straight from the KV-store state the
     topology built.
"""

from repro import SyntheticWorld, VirtualClock, WorldConfig
from repro.data import actions_to_log
from repro.storm import ThreadedExecutor
from repro.topology import build_recommendation_topology


def main() -> None:
    world = SyntheticWorld(WorldConfig(n_users=150, n_videos=200, days=2, seed=8))
    actions = world.generate_actions()
    log_lines = actions_to_log(actions).splitlines()
    print(f"raw log: {len(log_lines):,} lines")

    clock = VirtualClock(0.0)
    topology, system = build_recommendation_topology(
        log_lines,
        world.videos,
        users=world.users,
        clock=clock,
        parallelism={
            "spout": 2,
            "user_history": 2,
            "compute_mf": 4,
            "mf_storage": 4,
            "get_item_pairs": 2,
            "item_pair_sim": 4,
            "result_storage": 4,
        },
    )
    print("\ntopology wiring:")
    print(topology.describe())

    metrics = ThreadedExecutor(topology).run(timeout=600.0)
    print("\ncomponent metrics:")
    for name, stats in metrics.snapshot().items():
        print(
            f"  {name:<16} processed={stats['processed']:>7,} "
            f"emitted={stats['emitted']:>7,} failed={stats['failed']} "
            f"mean_latency={stats['mean_latency_s'] * 1e6:7.1f} us"
        )

    clock.set(max(a.timestamp for a in actions) + 1)
    recommender = system.serving_recommender()
    print("\nserving from the topology's KV-store state:")
    shown = 0
    for user in world.users:
        recs = recommender.recommend_ids(user, n=5)
        if recs:
            print(f"  {user}: {recs}")
            shown += 1
        if shown == 5:
            break

    print(
        f"\nmodel state: {system.model.n_users} users, "
        f"{system.model.n_videos} videos, "
        f"{len(system.table.tracked_videos())} similar-video lists"
    )


if __name__ == "__main__":
    main()
