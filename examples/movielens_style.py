"""MovieLens-format data — feed external rating files into the system.

Run:  python examples/movielens_style.py

What it shows:
  1. writing a MovieLens ``u.data``-style ratings file (here: synthesised,
     but any real MovieLens 100K ``u.data`` file works the same way),
  2. converting explicit star ratings into the implicit action funnel the
     recommender consumes,
  3. training online and serving recommendations from it.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import RealtimeRecommender, ReproConfig, VirtualClock
from repro.data import Video, load_ratings_file, parse_items


def synthesize_ratings_file(path: Path, n_users: int = 80, n_items: int = 60) -> None:
    """Write a small MovieLens-style file with block structure: even users
    prefer even items, odd users prefer odd items."""
    rng = np.random.default_rng(4)
    with open(path, "w", encoding="utf-8") as sink:
        for user in range(1, n_users + 1):
            items = rng.choice(n_items, size=15, replace=False) + 1
            for item in items:
                aligned = (user % 2) == (item % 2)
                rating = int(
                    np.clip(rng.normal(4.4 if aligned else 1.3, 0.7), 1, 5)
                )
                timestamp = int(rng.integers(0, 6 * 86_400))
                sink.write(f"{user}\t{item}\t{rating}\t{timestamp}\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        ratings_path = Path(tmp) / "u.data"
        synthesize_ratings_file(ratings_path)

        # Item metadata: id|type|duration — the simplified u.item format.
        items_file = [
            f"{i}|{'even-genre' if i % 2 == 0 else 'odd-genre'}|5400"
            for i in range(1, 61)
        ]
        videos = parse_items(items_file)
        durations = {vid: v.duration for vid, v in videos.items()}

        actions = load_ratings_file(ratings_path, durations=durations)
        print(
            f"parsed {len(actions):,} implicit actions from "
            f"{ratings_path.name} (ratings -> impress/click/play/playtime)"
        )

        clock = VirtualClock(0.0)
        # With only two genres, lean harder on the type-similarity factor
        # when building the similar-video tables (beta of Eq. 12).
        # Narrow the candidate pool so the similar-video tables (not the
        # popularity bias of the reranker) dominate the related-videos list.
        config = ReproConfig().with_overrides(
            similarity={"beta": 0.5},
            recommend={"max_candidates": 12},
        )
        recommender = RealtimeRecommender(
            videos, config=config, clock=clock, enable_demographic=False
        )
        recommender.observe_stream(actions)
        clock.set(max(a.timestamp for a in actions) + 1)

        # Related-videos scenario: recommendations seeded by the video the
        # user is watching should stay overwhelmingly within its genre.
        for current, genre in (("v2", "even-genre"), ("v3", "odd-genre")):
            recs = recommender.recommend_ids("u1", current_video=current, n=8)
            share = (
                sum(1 for v in recs if videos[v].kind == genre) / len(recs)
                if recs
                else 0
            )
            print(
                f"related to {current} ({genre}): {recs}  "
                f"same-genre share: {share:.0%}"
            )


if __name__ == "__main__":
    main()
