"""Tests for the public API surface: exports resolve and stay consistent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.data",
    "repro.storm",
    "repro.kvstore",
    "repro.topology",
    "repro.baselines",
    "repro.eval",
    "repro.serving",
    "repro.reliability",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_symbols():
    """The symbols the README quickstart uses are importable from repro."""
    from repro import (  # noqa: F401
        ALL_VARIANTS,
        BINARY_MODEL,
        COMBINE_MODEL,
        CONF_MODEL,
        GroupedRecommender,
        MFModel,
        OnlineTrainer,
        RealtimeRecommender,
        ReproConfig,
        SyntheticWorld,
        VirtualClock,
        WorldConfig,
    )


def test_docstrings_on_public_classes():
    """Every public class/function carries a docstring."""
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


def test_paper_equation_references_present():
    """The core modules document which paper equations they implement."""
    import repro.core.mf
    import repro.core.online
    import repro.core.similarity

    assert "Eq. 2" in repro.core.mf.__doc__
    assert "Algorithm 1" in repro.core.online.__doc__
    assert "Eq. 12" in repro.core.similarity.__doc__ or "Eqs. 9-12" in repro.core.similarity.__doc__
