"""Tests for stable hashing (shard/worker routing determinism)."""

import os
import subprocess
import sys

from repro.hashing import combined_hash, stable_bucket, stable_hash


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("user-42") == stable_hash("user-42")

    def test_distinguishes_types(self):
        """1 and "1" must route differently — ids are typed."""
        assert stable_hash(1) != stable_hash("1")

    def test_deterministic_across_processes(self):
        """Unlike built-in hash(), unaffected by PYTHONHASHSEED."""
        code = "from repro.hashing import stable_hash; print(stable_hash('k1'))"
        outs = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": seed,
                    "PATH": "/usr/bin:/bin",
                    # The subprocess must be able to import repro however
                    # this test process found it (src checkout or install).
                    "PYTHONPATH": os.pathsep.join(sys.path),
                },
            )
            assert result.returncode == 0, result.stderr
            outs.add(result.stdout.strip())
        assert len(outs) == 1
        assert outs.pop() == str(stable_hash("k1"))

    def test_spreads_keys(self):
        """CRC32 over distinct keys should not collapse to few values."""
        values = {stable_hash(f"key-{i}") for i in range(1000)}
        assert len(values) > 990


class TestStableBucket:
    def test_within_range(self):
        for i in range(100):
            assert 0 <= stable_bucket(f"k{i}", 7) < 7

    def test_rejects_nonpositive_buckets(self):
        import pytest

        with pytest.raises(ValueError):
            stable_bucket("k", 0)

    def test_roughly_uniform(self):
        counts = [0] * 8
        for i in range(4000):
            counts[stable_bucket(f"user-{i}", 8)] += 1
        assert min(counts) > 300  # perfectly uniform would be 500

    def test_single_bucket(self):
        assert stable_bucket("anything", 1) == 0


class TestCombinedHash:
    def test_order_sensitive(self):
        assert combined_hash(["a", "b"]) != combined_hash(["b", "a"])

    def test_deterministic(self):
        assert combined_hash(("x", 1)) == combined_hash(("x", 1))

    def test_empty_sequence(self):
        assert combined_hash([]) == 0
