"""Tests for configuration validation and overrides."""

import pytest

from repro.config import (
    TABLE2_PARAMETERS,
    ActionWeightConfig,
    MFConfig,
    OnlineConfig,
    RecommendConfig,
    ReproConfig,
    SimilarityConfig,
)
from repro.errors import ConfigError


class TestActionWeightConfig:
    def test_defaults_valid(self):
        cfg = ActionWeightConfig()
        assert cfg.impress == 0.0
        assert cfg.a >= cfg.b > 0

    def test_playtime_span_matches_table1(self):
        """With the defaults the PlayTime weight spans [a-b, a] = [1.5, 2.5]."""
        cfg = ActionWeightConfig()
        assert cfg.a == pytest.approx(2.5)
        assert cfg.a - cfg.b == pytest.approx(1.5)

    def test_nonzero_impress_rejected(self):
        with pytest.raises(ConfigError):
            ActionWeightConfig(impress=0.5)

    def test_a_less_than_b_rejected(self):
        with pytest.raises(ConfigError):
            ActionWeightConfig(a=1.0, b=2.0)

    def test_vrate_floor_bounds(self):
        with pytest.raises(ConfigError):
            ActionWeightConfig(vrate_floor=0.0)
        with pytest.raises(ConfigError):
            ActionWeightConfig(vrate_floor=1.0)

    def test_floor_weight_must_not_exceed_play(self):
        # a - b*1 (floor at 0.1, log10 => -1) must be <= play weight
        with pytest.raises(ConfigError):
            ActionWeightConfig(a=5.0, b=1.0, play=1.5)

    def test_negative_click_rejected(self):
        with pytest.raises(ConfigError):
            ActionWeightConfig(click=-1.0)


class TestMFConfig:
    def test_defaults_valid(self):
        cfg = MFConfig()
        assert cfg.f >= 1
        assert cfg.lam >= 0

    @pytest.mark.parametrize("field,value", [("f", 0), ("lam", -0.1), ("init_scale", 0.0)])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            MFConfig(**{field: value})


class TestOnlineConfig:
    def test_defaults_valid(self):
        cfg = OnlineConfig()
        assert cfg.eta0 > 0
        assert cfg.alpha >= 0

    def test_zero_eta0_rejected(self):
        with pytest.raises(ConfigError):
            OnlineConfig(eta0=0.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigError):
            OnlineConfig(alpha=-0.01)

    def test_max_eta_below_eta0_rejected(self):
        with pytest.raises(ConfigError):
            OnlineConfig(eta0=0.1, max_eta=0.05)


class TestSimilarityConfig:
    def test_defaults_valid(self):
        cfg = SimilarityConfig()
        assert 0 <= cfg.beta <= 1
        assert cfg.xi > 0

    def test_beta_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(beta=1.5)

    def test_candidate_pool_smaller_than_table_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(table_size=100, candidate_pool=50)

    def test_nonpositive_xi_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(xi=0.0)


class TestRecommendConfig:
    def test_defaults_valid(self):
        cfg = RecommendConfig()
        assert cfg.top_n >= 1
        assert 0 <= cfg.demographic_slots <= 1

    def test_candidates_must_cover_top_n(self):
        with pytest.raises(ConfigError):
            RecommendConfig(top_n=100, max_candidates=50)

    def test_slots_fraction_bounds(self):
        with pytest.raises(ConfigError):
            RecommendConfig(demographic_slots=1.5)


class TestReproConfig:
    def test_with_overrides_changes_only_named_fields(self):
        base = ReproConfig()
        tuned = base.with_overrides(online={"alpha": 0.0})
        assert tuned.online.alpha == 0.0
        assert tuned.online.eta0 == base.online.eta0
        assert tuned.mf == base.mf
        # original untouched (frozen)
        assert base.online.alpha != 0.0

    def test_with_overrides_multiple_sections(self):
        tuned = ReproConfig().with_overrides(
            mf={"f": 8}, similarity={"beta": 0.5}
        )
        assert tuned.mf.f == 8
        assert tuned.similarity.beta == 0.5

    def test_with_overrides_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig().with_overrides(nonsense={"x": 1})

    def test_with_overrides_validates_new_values(self):
        with pytest.raises(ConfigError):
            ReproConfig().with_overrides(mf={"f": 0})

    def test_table2_parameters_cover_paper_names(self):
        assert set(TABLE2_PARAMETERS) == {
            "f", "lambda", "a", "b", "eta_0", "alpha", "beta", "xi",
        }

    def test_table2_paths_resolve(self):
        cfg = ReproConfig()
        for path in TABLE2_PARAMETERS.values():
            section, field = path.split(".")
            assert hasattr(getattr(cfg, section), field)
