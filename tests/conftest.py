"""Shared fixtures: a small synthetic world, its action stream, and splits.

The world is deliberately tiny so the whole unit suite stays fast; the
benchmarks use the full-size calibrated world instead.
"""

from __future__ import annotations

import pytest

from repro.data import SyntheticWorld, WorldConfig, split_by_day
from repro.data.synthetic import paper_world_config


@pytest.fixture(scope="session")
def small_world() -> SyntheticWorld:
    """A 60-user, 80-video, 3-day world (session-scoped: treat as read-only)."""
    return SyntheticWorld(
        WorldConfig(n_users=60, n_videos=80, n_types=5, days=3, seed=42)
    )


@pytest.fixture(scope="session")
def small_actions(small_world):
    """The full sorted action stream of ``small_world``."""
    return small_world.generate_actions()


@pytest.fixture(scope="session")
def small_split(small_actions):
    """Days 0-1 train, day 2 test."""
    return split_by_day(small_actions, train_days=2)


@pytest.fixture(scope="session")
def medium_world() -> SyntheticWorld:
    """A calibrated (paper-config) world at reduced scale."""
    return SyntheticWorld(
        paper_world_config(n_users=120, n_videos=150, days=4, seed=11)
    )


@pytest.fixture(scope="session")
def medium_actions(medium_world):
    return medium_world.generate_actions()


@pytest.fixture(scope="session")
def medium_split(medium_actions):
    return split_by_day(medium_actions, train_days=3)
