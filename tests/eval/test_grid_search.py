"""Tests for the grid-search harness (Table 2)."""

import pytest

from repro.data import ActionType, UserAction, Video
from repro.eval import grid_search

VIDEOS = {"v1": Video("v1", "t", 1000.0), "v2": Video("v2", "t", 1000.0)}


class _ParamRecommender:
    """Recommends v1 first iff its parameter says so — makes the grid's
    winner fully predictable."""

    def __init__(self, prefer_v1):
        self.prefer_v1 = prefer_v1

    def observe(self, action):
        pass

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return ["v1", "v2"] if self.prefer_v1 else ["v2", "v1"]


TEST_ACTIONS = [
    UserAction(10.0, "u", "v1", ActionType.PLAYTIME, view_time=950.0)
]


class TestGridSearch:
    def test_evaluates_every_combination(self):
        result = grid_search(
            _ParamRecommender,
            {"prefer_v1": [True, False]},
            train=[],
            test=TEST_ACTIONS,
            videos=VIDEOS,
            metric_n=1,
        )
        assert len(result.points) == 2

    def test_best_first(self):
        result = grid_search(
            _ParamRecommender,
            {"prefer_v1": [False, True]},
            train=[],
            test=TEST_ACTIONS,
            videos=VIDEOS,
            metric_n=1,
        )
        assert result.best.params == {"prefer_v1": True}
        assert result.best.score == 1.0

    def test_cartesian_product(self):
        calls = []

        def factory(a, b):
            calls.append((a, b))
            return _ParamRecommender(True)

        grid_search(
            factory,
            {"a": [1, 2, 3], "b": ["x", "y"]},
            train=[],
            test=TEST_ACTIONS,
            videos=VIDEOS,
        )
        assert len(calls) == 6
        assert len(set(calls)) == 6

    def test_table_rows_include_params_and_score(self):
        result = grid_search(
            _ParamRecommender,
            {"prefer_v1": [True]},
            train=[],
            test=TEST_ACTIONS,
            videos=VIDEOS,
            metric_n=1,
        )
        row = result.table()[0]
        assert row["prefer_v1"] is True
        assert row["recall@1"] == 1.0

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_search(_ParamRecommender, {}, [], TEST_ACTIONS)
