"""Tests for the continuous-experimentation engine (Experiment, mSPRT)."""

import math
import warnings

import pytest

from repro.data import SyntheticWorld, WorldConfig
from repro.errors import ConfigError
from repro.eval import (
    ABTestHarness,
    ArmStats,
    Experiment,
    ExperimentResult,
    MSPRTStopping,
    mixture_sprt_p_value,
)


class _FixedArm:
    def __init__(self, recs):
        self.recs = list(recs)
        self.observed = 0

    def observe(self, action):
        self.observed += 1

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return self.recs[: (n or 10)]


class _OracleArm(_FixedArm):
    """Recommends each user's ground-truth best (or worst) videos."""

    def __init__(self, world, best):
        super().__init__([])
        self.world = world
        self.best = best

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        k = n or 10
        videos = self.world.best_videos(user_id, len(self.world.videos))
        return videos[:k] if self.best else videos[-k:]


@pytest.fixture(scope="module")
def small_world():
    return SyntheticWorld(WorldConfig(n_users=25, n_videos=40, days=3, seed=5))


# Pinned from the pre-refactor ABTestHarness on the fixture above with
# days=3, seed=11 — the Experiment hash path must reproduce the legacy
# harness draw for draw.
LEGACY_ANTI_IMPRESSIONS = [120, 120, 120]
LEGACY_ANTI_CLICKS = [14, 11, 12]
LEGACY_ORACLE_IMPRESSIONS = [130, 130, 130]
LEGACY_ORACLE_CLICKS = [58, 51, 53]
LEGACY_ARM_OF = ["anti", "oracle", "anti", "oracle", "anti", "oracle"]


class TestHashPathLegacyEquivalence:
    def _arms(self, world):
        return {"oracle": _OracleArm(world, True), "anti": _OracleArm(world, False)}

    def test_experiment_reproduces_legacy_golden(self, small_world):
        result = Experiment(
            small_world, self._arms(small_world), days=3, seed=11
        ).run()
        anti, oracle = result.arms["anti"], result.arms["oracle"]
        assert anti.impressions == LEGACY_ANTI_IMPRESSIONS
        assert anti.clicks == LEGACY_ANTI_CLICKS
        assert oracle.impressions == LEGACY_ORACLE_IMPRESSIONS
        assert oracle.clicks == LEGACY_ORACLE_CLICKS

    def test_deprecated_harness_matches_experiment(self, small_world):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            harness = ABTestHarness(
                small_world, self._arms(small_world), days=3, seed=11
            )
        legacy = harness.run()
        assert legacy.arms["anti"].clicks == LEGACY_ANTI_CLICKS
        assert legacy.arms["oracle"].clicks == LEGACY_ORACLE_CLICKS
        assert legacy.assignment == "hash"

    def test_harness_emits_deprecation_warning(self, small_world):
        with pytest.warns(DeprecationWarning):
            ABTestHarness(small_world, {"a": _FixedArm([])}, days=1)

    def test_arm_assignment_is_pinned(self, small_world):
        exp = Experiment(small_world, self._arms(small_world), days=1)
        assert [exp.arm_of(f"u{i}") for i in range(6)] == LEGACY_ARM_OF


class TestInterleaving:
    def test_team_draft_slots_are_disjoint_and_credited(self, small_world):
        a = _FixedArm([f"v{i}" for i in range(10)])
        b = _FixedArm([f"v{i}" for i in range(5, 15)])
        exp = Experiment(
            small_world, {"a": a, "b": b}, days=1, assignment="interleave",
            top_n=10,
        )
        slots = exp._interleave({"a": a.recs, "b": b.recs})
        shown = [vid for vid, _ in slots]
        assert len(shown) == len(set(shown)) == 10
        credits = {arm for _, arm in slots}
        assert credits == {"a", "b"}
        # Team draft: each arm drafts once per round, so credit is split
        # evenly when both lists are long enough.
        assert sum(1 for _, arm in slots if arm == "a") == 5

    def test_exhausted_lists_terminate(self, small_world):
        exp = Experiment(
            small_world,
            {"a": _FixedArm([]), "b": _FixedArm([])},
            days=1,
            assignment="interleave",
        )
        assert exp._interleave({"a": ["v1"], "b": ["v1"]}) == [("v1", "a")] or \
            exp._interleave({"a": ["v1"], "b": ["v1"]}) == [("v1", "b")]

    def test_all_arms_served_every_day(self, small_world):
        arms = {
            "oracle": _OracleArm(small_world, True),
            "anti": _OracleArm(small_world, False),
        }
        result = Experiment(
            small_world, arms, days=2, assignment="interleave", seed=11
        ).run()
        for stats in result.arms.values():
            assert all(i > 0 for i in stats.impressions)
        assert result.assignment == "interleave"

    def test_interleaved_oracle_still_wins(self, small_world):
        arms = {
            "oracle": _OracleArm(small_world, True),
            "anti": _OracleArm(small_world, False),
        }
        result = Experiment(
            small_world, arms, days=3, assignment="interleave", seed=11
        ).run()
        ctr = result.overall_ctr()
        assert ctr["oracle"] > ctr["anti"]

    def test_shared_feedback_reaches_all_arms(self, small_world):
        a = _FixedArm(small_world.video_ids()[:10])
        b = _FixedArm(small_world.video_ids()[10:20])
        Experiment(
            small_world, {"a": a, "b": b}, days=1, assignment="interleave"
        ).run()
        assert a.observed == b.observed > 0

    def test_unknown_assignment_rejected(self, small_world):
        with pytest.raises(ConfigError):
            Experiment(
                small_world, {"a": _FixedArm([])}, assignment="bandit"
            )


class TestMixtureSPRT:
    def test_no_data_is_inconclusive(self):
        assert mixture_sprt_p_value(0, 0, 0, 0, tau=0.02) == 1.0
        assert mixture_sprt_p_value(5, 10, 0, 0, tau=0.02) == 1.0

    def test_identical_rates_stay_near_one(self):
        p = mixture_sprt_p_value(50, 1000, 50, 1000, tau=0.02)
        assert p > 0.5

    def test_large_gap_drives_p_down(self):
        p = mixture_sprt_p_value(50, 1000, 200, 1000, tau=0.02)
        assert p < 1e-6

    def test_symmetric_in_direction(self):
        up = mixture_sprt_p_value(50, 1000, 100, 1000, tau=0.02)
        down = mixture_sprt_p_value(100, 1000, 50, 1000, tau=0.02)
        assert up == pytest.approx(down)

    def test_more_data_sharpens_same_rates(self):
        small = mixture_sprt_p_value(10, 100, 20, 100, tau=0.02)
        big = mixture_sprt_p_value(1000, 10000, 2000, 10000, tau=0.02)
        assert big < small

    def test_extreme_gap_hits_zero_without_overflow(self):
        assert mixture_sprt_p_value(0, 10**6, 10**6, 10**6, tau=0.5) == 0.0

    def test_stopping_policy_validation(self):
        with pytest.raises(ConfigError):
            MSPRTStopping(alpha=0.0)
        with pytest.raises(ConfigError):
            MSPRTStopping(alpha=1.5)
        with pytest.raises(ConfigError):
            MSPRTStopping(tau=-1.0)
        with pytest.raises(ConfigError):
            MSPRTStopping(min_days=0)

    def test_stopping_needs_known_control_and_two_arms(self, small_world):
        with pytest.raises(ConfigError):
            Experiment(
                small_world,
                {"a": _FixedArm([]), "b": _FixedArm([])},
                stopping=MSPRTStopping(control="nope"),
            )
        with pytest.raises(ConfigError):
            Experiment(
                small_world,
                {"a": _FixedArm([])},
                stopping=MSPRTStopping(),
            )


class TestSequentialStopping:
    def test_rigged_experiment_stops_early(self, small_world):
        """Oracle vs anti-oracle: a huge true effect must stop in days."""
        arms = {
            "oracle": _OracleArm(small_world, True),
            "anti": _OracleArm(small_world, False),
        }
        result = Experiment(
            small_world,
            arms,
            days=10,
            seed=11,
            stopping=MSPRTStopping(control="anti", min_days=2),
        ).run()
        assert result.stopped_day is not None
        assert result.stopped_arm == "oracle"
        assert result.days < 10
        assert result.p_values["oracle"] <= 0.05

    def test_aa_runs_do_not_stop(self):
        """Identical arms must essentially never cross alpha=0.05 — the
        running-min mSPRT p-value is always-valid under optional stopping
        (the acceptance criterion for sequential stopping)."""
        false_positives = 0
        for seed in range(12):
            world = SyntheticWorld(
                WorldConfig(n_users=20, n_videos=30, days=4, seed=seed)
            )
            recs = world.video_ids()[:10]
            result = Experiment(
                world,
                {"a": _FixedArm(recs), "b": _FixedArm(recs)},
                days=4,
                seed=seed + 100,
                stopping=MSPRTStopping(min_days=2),
            ).run()
            if result.stopped_day is not None:
                false_positives += 1
        assert false_positives == 0

    def test_no_stopping_policy_runs_full_horizon(self, small_world):
        result = Experiment(
            small_world, {"a": _FixedArm(small_world.video_ids()[:5])}, days=3
        ).run()
        assert result.days == 3
        assert result.stopped_day is None
        assert result.p_values == {}


class TestResultAggregation:
    def test_days_won_skips_unserved_days(self):
        result = ExperimentResult(
            arms={
                "a": ArmStats(impressions=[10, 0, 10], clicks=[5, 0, 1]),
                "b": ArmStats(impressions=[10, 10, 10], clicks=[1, 5, 2]),
            },
            days=3,
        )
        assert result.days_won("a") == 1  # day 0; day 1 unserved, day 2 lost
        assert result.days_won("b") == 2

    def test_improvement_table_skips_never_served_arms(self):
        result = ExperimentResult(
            arms={
                "a": ArmStats(impressions=[10], clicks=[5]),
                "ghost": ArmStats(impressions=[0], clicks=[0]),
            },
            days=1,
        )
        table = result.improvement_table()
        assert table == {}
        assert math.isnan(result.overall_ctr()["ghost"])
