"""Tests for the A/B harness's real-time feedback loop — the mechanism
that gives online methods their edge over daily-batch ones (§6.2)."""

import pytest

from repro.data import ActionType, SyntheticWorld, WorldConfig
from repro.eval import ABTestHarness


class _RecordingArm:
    """Serves a fixed list and records every observed action."""

    def __init__(self, recs):
        self.recs = recs
        self.actions = []

    def observe(self, action):
        self.actions.append(action)

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return self.recs[: (n or 10)]


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(WorldConfig(n_users=15, n_videos=25, days=1, seed=6))


class TestFeedbackLoop:
    def test_clicks_feed_back_into_the_serving_arm(self, world):
        arm = _RecordingArm(world.video_ids()[:8])
        harness = ABTestHarness(world, arms={"only": arm}, days=1, seed=2)
        result = harness.run()
        clicks = [
            a
            for a in arm.actions
            if a.action is ActionType.CLICK and a.timestamp > 0
        ]
        # every simulated click produced a CLICK + PLAY feedback pair
        feedback_clicks = result.arms["only"].clicks[0]
        organic_clicks = len(clicks) - feedback_clicks
        assert feedback_clicks > 0
        plays = [a for a in arm.actions if a.action is ActionType.PLAY]
        assert len(plays) >= feedback_clicks

    def test_feedback_goes_only_to_the_users_arm(self, world):
        a = _RecordingArm(world.video_ids()[:8])
        b = _RecordingArm([])  # serves nothing, gets no feedback of its own
        harness = ABTestHarness(world, arms={"a": a, "b": b}, days=1, seed=2)
        result = harness.run()
        assert result.arms["b"].impressions == [0]
        # both arms share the same organic traffic...
        assert b.actions
        # ...and the only difference is a's recommendation feedback:
        # one CLICK + one PLAY per simulated click.
        assert len(a.actions) - len(b.actions) == 2 * result.arms["a"].clicks[0]
