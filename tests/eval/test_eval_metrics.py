"""Tests for the evaluation metrics (Eqs. 13-14)."""

import pytest

from repro.eval import (
    average_rank,
    mean_absolute_error,
    percentile_rank,
    precision_at_n,
    recall_at_n,
    recall_curve,
)


class TestRecallAtN:
    def test_eq13_definition(self):
        """recall = mean over users of |liked ∩ topN| / N."""
        recommended = {"u1": ["a", "b", "c"], "u2": ["x", "y", "z"]}
        liked = {"u1": {"a", "b"}, "u2": {"q"}}
        # u1: 2/3 hits, u2: 0/3 -> mean = 1/3
        assert recall_at_n(recommended, liked, n=3) == pytest.approx(1 / 3)

    def test_divides_by_n_not_list_length(self):
        recommended = {"u1": ["a"]}  # short list
        liked = {"u1": {"a"}}
        assert recall_at_n(recommended, liked, n=10) == pytest.approx(0.1)

    def test_users_without_likes_excluded(self):
        recommended = {"u1": ["a"], "u2": ["b"]}
        liked = {"u1": {"a"}, "u2": set()}
        assert recall_at_n(recommended, liked, n=1) == 1.0

    def test_user_missing_from_recommendations_scores_zero(self):
        assert recall_at_n({}, {"u1": {"a"}}, n=5) == 0.0

    def test_empty_test_set(self):
        assert recall_at_n({"u": ["a"]}, {}, n=5) == 0.0

    def test_bounds(self):
        recommended = {"u": [f"v{i}" for i in range(10)]}
        liked = {"u": {f"v{i}" for i in range(20)}}
        assert 0.0 <= recall_at_n(recommended, liked, 10) <= 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            recall_at_n({}, {"u": {"a"}}, n=0)

    def test_curve_monotone_in_hits_not_value(self):
        """recall@N uses prefix truncation: the hit count is non-decreasing
        in N even though the ratio may fall."""
        recommended = {"u": ["a", "x", "b", "y"]}
        liked = {"u": {"a", "b"}}
        curve = recall_curve(recommended, liked, max_n=4)
        hits = [curve[n] * n for n in range(1, 5)]
        assert hits == sorted(hits)
        assert curve[1] == 1.0
        assert curve[2] == pytest.approx(0.5)


class TestPercentileRank:
    def test_first_is_zero(self):
        assert percentile_rank(0, 10) == 0.0

    def test_last_below_one(self):
        """Absence ranks 1.0, strictly worse than any listed position."""
        assert percentile_rank(9, 10) == pytest.approx(0.9)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile_rank(10, 10)
        with pytest.raises(ValueError):
            percentile_rank(-1, 10)


class TestAverageRank:
    def test_perfect_model_scores_low(self):
        """Recommending the test list in its exact order gives a low rank."""
        test_ranking = {"u": ["a", "b", "c", "d"]}
        good = {"u": ["a", "b", "c", "d"]}
        bad = {"u": ["d", "c", "b", "a"]}
        assert average_rank(good, test_ranking) < average_rank(bad, test_ranking)

    def test_bounds(self):
        test_ranking = {"u": ["a", "b"]}
        recommended = {"u": ["b", "z", "a"]}
        assert 0.0 <= average_rank(recommended, test_ranking) <= 1.0

    def test_nothing_recommended_is_worst(self):
        assert average_rank({}, {"u": ["a", "b"]}) == 1.0

    def test_non_test_recommendations_carry_no_weight(self):
        """Videos the user never engaged with in test drop out of both
        sums (rank_ui = 1 => weight 0 for unrecommended test videos is the
        only channel)."""
        test_ranking = {"u": ["a"]}
        only_miss = {"u": ["x", "y"]}
        assert average_rank(only_miss, test_ranking) == 1.0

    def test_weight_decreases_with_recommendation_position(self):
        """A test video recommended at the top dominates one at the bottom."""
        test_ranking = {"u1": ["good", "bad"]}
        top_good = {"u1": ["good", "z1", "z2", "bad"]}
        top_bad = {"u1": ["bad", "z1", "z2", "good"]}
        assert average_rank(top_good, test_ranking) < average_rank(
            top_bad, test_ranking
        )

    def test_matches_hand_computation(self):
        test_ranking = {"u": ["a", "b"]}  # rank^t: a=0, b=0.5
        recommended = {"u": ["b", "a"]}  # rank: b=0, a=0.5
        # weights: b -> 1-0 = 1, a -> 1-0.5 = 0.5
        # rank = (0.5*1 + 0*0.5) / (1 + 0.5) = 1/3
        assert average_rank(recommended, test_ranking) == pytest.approx(1 / 3)


class TestSecondaryMetrics:
    def test_precision_uses_actual_length(self):
        recommended = {"u": ["a"]}
        liked = {"u": {"a"}}
        assert precision_at_n(recommended, liked, n=10) == 1.0

    def test_precision_empty(self):
        assert precision_at_n({}, {}, 5) == 0.0
        assert precision_at_n({"u": []}, {"u": {"a"}}, 5) == 0.0

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_mae_empty(self):
        assert mean_absolute_error([], []) == 0.0

    def test_mae_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])
