"""Tests for the offline evaluation protocol (§6.1)."""

import pytest

from repro.clock import VirtualClock
from repro.core import RealtimeRecommender
from repro.data import ActionType, UserAction, Video
from repro.eval import evaluate
from repro.eval import interest_lists_by_user as interest_lists_for
from repro.eval.protocol import liked_videos_by_user

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=1000.0) for i in range(5)}


class _StaticRecommender:
    """Recommends a fixed list; records what it observed."""

    def __init__(self, recs):
        self.recs = recs
        self.observed = []

    def observe(self, action):
        self.observed.append(action)

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return list(self.recs)[: (n or 10)]


def _playtime(user, video, vrate, ts=0.0):
    return UserAction(
        ts, user, video, ActionType.PLAYTIME, view_time=vrate * 1000.0
    )


class TestLikedVideos:
    def test_strong_watch_counts(self):
        liked = liked_videos_by_user(
            [_playtime("u", "v1", 0.9)], videos=VIDEOS
        )
        assert liked == {"u": {"v1"}}

    def test_bare_click_does_not_count(self):
        liked = liked_videos_by_user(
            [UserAction(0, "u", "v1", ActionType.CLICK)], videos=VIDEOS
        )
        assert liked == {}

    def test_social_actions_count(self):
        liked = liked_videos_by_user(
            [UserAction(0, "u", "v1", ActionType.LIKE)], videos=VIDEOS
        )
        assert liked == {"u": {"v1"}}

    def test_threshold_configurable(self):
        actions = [UserAction(0, "u", "v1", ActionType.CLICK)]
        assert liked_videos_by_user(actions, VIDEOS, min_weight=0.1) == {
            "u": {"v1"}
        }

    def test_impressions_never_count(self):
        actions = [UserAction(0, "u", "v1", ActionType.IMPRESS)]
        assert liked_videos_by_user(actions, VIDEOS, min_weight=0.0) == {}


class TestInterestLists:
    def test_ordered_by_confidence(self):
        actions = [
            _playtime("u", "v1", 0.2, ts=1.0),  # w = 2.5 + log10(0.2) ~ 1.8
            _playtime("u", "v2", 1.0, ts=2.0),  # w = 2.5
            UserAction(3.0, "u", "v3", ActionType.CLICK),  # w = 0.5
        ]
        lists = interest_lists_for(actions, videos=VIDEOS)
        assert lists["u"] == ["v2", "v1", "v3"]

    def test_max_confidence_per_video(self):
        actions = [
            _playtime("u", "v1", 0.2, ts=1.0),
            _playtime("u", "v1", 1.0, ts=2.0),  # stronger, wins
            _playtime("u", "v2", 0.5, ts=3.0),
        ]
        lists = interest_lists_for(actions, videos=VIDEOS)
        assert lists["u"][0] == "v1"

    def test_unknown_duration_falls_back(self):
        actions = [_playtime("u", "ghost", 0.9)]
        lists = interest_lists_for(actions, videos=VIDEOS)
        assert lists["u"] == ["ghost"]


class TestEvaluate:
    def test_trains_then_scores(self):
        rec = _StaticRecommender(["v1", "v2"])
        train = [UserAction(0.0, "u", "v3", ActionType.CLICK)]
        test = [_playtime("u", "v1", 0.9, ts=100.0)]
        result = evaluate(rec, train, test, videos=VIDEOS)
        assert rec.observed == train
        assert result.recall(1) == 1.0
        assert result.n_test_users == 1

    def test_observe_train_false_skips_training(self):
        rec = _StaticRecommender(["v1"])
        train = [UserAction(0.0, "u", "v3", ActionType.CLICK)]
        test = [_playtime("u", "v1", 0.9, ts=100.0)]
        evaluate(rec, train, test, videos=VIDEOS, observe_train=False)
        assert rec.observed == []

    def test_explicit_liked_override(self):
        rec = _StaticRecommender(["v9"])
        test = [_playtime("u", "v1", 0.9, ts=100.0)]
        result = evaluate(
            rec, [], test, videos=VIDEOS, liked={"u": {"v9"}}
        )
        assert result.recall(1) == 1.0

    def test_summary_keys(self):
        rec = _StaticRecommender(["v1"])
        test = [_playtime("u", "v1", 0.9, ts=1.0)]
        summary = evaluate(rec, [], test, videos=VIDEOS).summary()
        assert {"recall@1", "recall@5", "recall@10", "avg_rank", "test_users"} <= set(summary)

    def test_full_pipeline_beats_empty_model(self, medium_world, medium_split):
        """End-to-end sanity: a trained recommender scores better than an
        untrained one under the protocol."""
        clock = VirtualClock(0.0)
        trained = RealtimeRecommender(
            medium_world.videos, users=medium_world.users, clock=clock
        )
        liked = medium_world.genuinely_liked(medium_split.test)
        result = evaluate(
            trained,
            medium_split.train,
            medium_split.test,
            videos=medium_world.videos,
            liked=liked,
        )
        untrained = RealtimeRecommender(
            medium_world.videos,
            users=medium_world.users,
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )
        cold = evaluate(
            untrained,
            [],
            medium_split.test,
            videos=medium_world.videos,
            liked=liked,
        )
        assert result.recall(10) > cold.recall(10)
        assert result.avg_rank <= 1.0
