"""Tests for scenario timelines, reports, and the end-to-end runner."""

import json
import math

import numpy as np
import pytest

from repro.clock import SECONDS_PER_DAY
from repro.errors import ConfigError
from repro.eval.scenarios import (
    SCENARIO_LIBRARY,
    SCENARIO_REPORT_SCHEMA_VERSION,
    CatalogChurn,
    DiurnalWave,
    FlashCrowd,
    PreferenceDrift,
    Scenario,
    ScenarioOpsConfig,
    ScenarioReport,
    _ctr_ordering_ok,
    _plane_rotation,
    run_scenario,
    validate_scenario_report,
)


class TestEventValidation:
    def test_flash_crowd_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            FlashCrowd(day=-1)
        with pytest.raises(ConfigError):
            FlashCrowd(duration_days=0)
        with pytest.raises(ConfigError):
            FlashCrowd(boost=1.0)

    def test_catalog_churn_rejects_negative(self):
        with pytest.raises(ConfigError):
            CatalogChurn(start_day=-1)
        with pytest.raises(ConfigError):
            CatalogChurn(adds_per_day=-1)

    def test_diurnal_rejects_bad_amplitude(self):
        with pytest.raises(ConfigError):
            DiurnalWave(amplitude=0.0)
        with pytest.raises(ConfigError):
            DiurnalWave(amplitude=1.5)
        with pytest.raises(ConfigError):
            DiurnalWave(period_seconds=0.0)

    def test_drift_rejects_bad_angle(self):
        with pytest.raises(ConfigError):
            PreferenceDrift(angle_degrees=0.0)
        with pytest.raises(ConfigError):
            PreferenceDrift(angle_degrees=270.0)

    def test_scenario_name_must_be_slug(self):
        with pytest.raises(ConfigError):
            Scenario("")
        with pytest.raises(ConfigError):
            Scenario("no spaces allowed")


class TestComposition:
    def test_popularity_multipliers_compose_multiplicatively(self):
        scen = Scenario(
            "combo",
            (
                FlashCrowd(day=1, duration_days=2, boost=10.0, video_id="v1"),
                FlashCrowd(day=2, duration_days=1, boost=3.0, video_id="v1"),
            ),
        )
        assert scen.popularity_multipliers(1) == {"v1": 10.0}
        assert scen.popularity_multipliers(2) == {"v1": 30.0}
        assert scen.popularity_multipliers(4) == {}

    def test_rate_multipliers_compose(self):
        scen = Scenario(
            "combo",
            (
                FlashCrowd(day=1, duration_days=1, rate_spike=2.0, video_id="v0"),
                FlashCrowd(day=1, duration_days=1, rate_spike=1.5, video_id="v1"),
            ),
        )
        assert scen.rate_multiplier(1) == pytest.approx(3.0)
        assert scen.rate_multiplier(0) == 1.0

    def test_retires_accumulate_across_events(self):
        scen = Scenario(
            "combo",
            (
                CatalogChurn(start_day=0, adds_per_day=0, retires_per_day=1),
                CatalogChurn(start_day=2, adds_per_day=0, retires_per_day=2),
            ),
        )
        assert scen.retire_count_through(0) == 1
        assert scen.retire_count_through(2) == 3 + 2

    def test_duplicate_extra_ids_rejected(self):
        scen = Scenario(
            "combo",
            (
                CatalogChurn(start_day=0, adds_per_day=1, retires_per_day=0),
                CatalogChurn(start_day=0, adds_per_day=1, retires_per_day=0),
            ),
        )
        with pytest.raises(ConfigError):
            scen.extra_video_specs(days=3)

    def test_offered_multiplier_follows_events(self):
        scen = Scenario(
            "flash", (FlashCrowd(day=1, duration_days=1, rate_spike=2.0),)
        )
        assert scen.offered_multiplier(0.5 * SECONDS_PER_DAY) == 1.0
        assert scen.offered_multiplier(1.5 * SECONDS_PER_DAY) == 2.0

    def test_event_window_picks_earliest(self):
        scen = Scenario(
            "combo",
            (
                FlashCrowd(day=3, duration_days=1),
                PreferenceDrift(day=1),
            ),
        )
        start, _ = scen.event_window(days=6)
        assert start == SECONDS_PER_DAY

    def test_describe_names_events(self):
        scen = Scenario("flash", (FlashCrowd(),))
        assert "FlashCrowd" in scen.describe()
        assert "baseline" in Scenario("baseline").describe()

    def test_library_covers_the_four_regimes(self):
        assert set(SCENARIO_LIBRARY) == {
            "flash_crowd",
            "catalog_churn",
            "diurnal_wave",
            "preference_drift",
        }
        for name, factory in SCENARIO_LIBRARY.items():
            scen = factory()
            assert scen.name == name
            assert scen.events


class TestPlaneRotation:
    def test_rotation_is_orthogonal(self):
        rot = _plane_rotation(8, math.radians(75.0), seed=7)
        assert np.allclose(rot @ rot.T, np.eye(8), atol=1e-10)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_rotation_moves_vectors_by_the_angle_at_most(self):
        angle = math.radians(60.0)
        rot = _plane_rotation(6, angle, seed=3)
        rng = np.random.default_rng(0)
        for _ in range(10):
            v = rng.normal(size=6)
            w = rot @ v
            cos = float(v @ w / (np.linalg.norm(v) * np.linalg.norm(w)))
            assert cos >= math.cos(angle) - 1e-9

    def test_deterministic_in_seed(self):
        a = _plane_rotation(8, 1.0, seed=5)
        b = _plane_rotation(8, 1.0, seed=5)
        c = _plane_rotation(8, 1.0, seed=6)
        assert np.array_equal(a, b)
        assert not np.allclose(a, c)

    def test_degenerate_dim_is_identity(self):
        assert np.array_equal(_plane_rotation(1, 1.0, seed=0), np.eye(1))


def _report(**overrides):
    base = dict(
        scenario="flash_crowd",
        events=("FlashCrowd",),
        days=6,
        arms={
            "Hot": {
                "overall_ctr": 0.2,
                "impressions": 100,
                "clicks": 20,
                "daily_ctr": [0.2, None],
            },
            "rMF": {
                "overall_ctr": 0.4,
                "impressions": 100,
                "clicks": 40,
                "daily_ctr": [0.4, 0.4],
            },
        },
        ctr_ordering_ok=True,
        ops={
            "offered": 512.0,
            "served": 500.0,
            "shed": 12.0,
            "shed_rate": 12.0 / 512.0,
            "accepted_p99_ms": 4.2,
            "breaker_trips": 0.0,
            "recovery_seconds": 10800.0,
            "peak_window_shed_rate": 0.09,
        },
    )
    base.update(overrides)
    return ScenarioReport(**base)


class TestScenarioReport:
    def test_valid_report_round_trips_through_json(self):
        doc = _report().to_doc()
        assert validate_scenario_report(doc) == []
        again = json.loads(json.dumps(doc))
        assert validate_scenario_report(again) == []
        assert again["schema_version"] == SCENARIO_REPORT_SCHEMA_VERSION

    def test_flat_metrics_naming(self):
        flat = _report().flat_metrics()
        assert flat["flash_crowd_ctr_hot"] == pytest.approx(0.2)
        assert flat["flash_crowd_ctr_rmf"] == pytest.approx(0.4)
        assert flat["flash_crowd_ordering_ok"] == 1.0
        assert flat["flash_crowd_recovery_seconds"] == 10800.0
        assert all(math.isfinite(v) for v in flat.values())

    def test_never_served_arm_dropped_from_flat_metrics(self):
        report = _report(
            arms={
                "Hot": {
                    "overall_ctr": None,
                    "impressions": 0,
                    "clicks": 0,
                    "daily_ctr": [None],
                },
            },
            ctr_ordering_ok=False,
        )
        flat = report.flat_metrics()
        assert "flash_crowd_ctr_hot" not in flat
        assert flat["flash_crowd_ordering_ok"] == 0.0

    def test_to_doc_refuses_missing_ops_keys(self):
        report = _report(ops={"offered": 1.0})
        with pytest.raises(ValueError, match="ops missing keys"):
            report.to_doc()

    def test_validator_catches_each_defect(self):
        good = _report().to_doc()
        for mutate, needle in [
            (lambda d: d.pop("ops"), "ops"),
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.update(days=0), "days"),
            (lambda d: d.update(arms={}), "arms"),
            (lambda d: d.update(ctr_ordering_ok="yes"), "ctr_ordering_ok"),
            (lambda d: d.update(extra_key=1), "unknown top-level"),
            (lambda d: d["ops"].update(shed_rate=float("nan")), "finite"),
            (lambda d: d["arms"]["Hot"].pop("daily_ctr"), "daily_ctr"),
        ]:
            doc = json.loads(json.dumps(good))
            mutate(doc)
            errors = validate_scenario_report(doc)
            assert errors and any(needle in e for e in errors), (needle, errors)

    def test_validator_rejects_non_object(self):
        assert validate_scenario_report([1, 2]) != []


class TestCtrOrdering:
    def test_paper_ordering_accepted(self):
        assert _ctr_ordering_ok(
            {"Hot": 0.2, "AR": 0.35, "SimHash": 0.36, "rMF": 0.44}
        )

    def test_rmf_within_tolerance_of_mids_accepted(self):
        assert _ctr_ordering_ok(
            {"Hot": 0.2, "AR": 0.35, "SimHash": 0.40, "rMF": 0.395}
        )

    def test_hot_winning_rejected(self):
        assert not _ctr_ordering_ok(
            {"Hot": 0.5, "AR": 0.35, "SimHash": 0.36, "rMF": 0.44}
        )

    def test_rmf_losing_rejected(self):
        assert not _ctr_ordering_ok(
            {"Hot": 0.2, "AR": 0.35, "SimHash": 0.45, "rMF": 0.40}
        )

    def test_missing_arms_rejected(self):
        assert not _ctr_ordering_ok({"Hot": 0.2})


class TestOpsConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            ScenarioOpsConfig(base_qps=0.0)
        with pytest.raises(ConfigError):
            ScenarioOpsConfig(requests_per_window=0)


class _CheapArm:
    """A trivial arm so run_scenario tests stay fast."""

    def __init__(self, recs):
        self.recs = list(recs)

    def observe(self, action):
        pass

    def recommend_ids(self, user_id, current_video=None, n=10, now=None):
        return self.recs[:n]


class TestRunScenarioEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        scen = SCENARIO_LIBRARY["flash_crowd"](day=1, duration_days=1)
        arms = None

        def cheap_arms(world):
            ids = world.video_ids()
            return {
                "Hot": _CheapArm(ids[:10]),
                "AR": _CheapArm(ids[5:15]),
                "SimHash": _CheapArm(ids[10:20]),
                "rMF": _CheapArm(ids[15:25]),
            }

        from repro.data.synthetic import SyntheticWorld, paper_world_config

        world = SyntheticWorld(
            paper_world_config(n_users=30, n_videos=40, days=3, seed=4),
            scenario=scen,
        )
        return run_scenario(
            scen,
            days=3,
            n_users=30,
            n_videos=40,
            seed=4,
            arms=cheap_arms(world),
        )

    def test_report_document_is_valid(self, report):
        doc = report.to_doc()
        assert validate_scenario_report(doc) == []
        assert doc["scenario"] == "flash_crowd"
        assert doc["events"] == ["FlashCrowd"]
        assert doc["days"] == 3

    def test_every_arm_accounted(self, report):
        for name in ("Hot", "AR", "SimHash", "rMF"):
            stats = report.arms[name]
            assert stats["impressions"] > 0
            assert len(stats["daily_ctr"]) == 3

    def test_ops_metrics_conserve_requests(self, report):
        ops = report.ops
        assert ops["offered"] == ops["served"] + ops["shed"]
        assert 0.0 <= ops["shed_rate"] <= 1.0
        assert ops["accepted_p99_ms"] > 0.0
        assert ops["recovery_seconds"] >= 0.0

    def test_flash_crowd_actually_sheds(self, report):
        # The 1.5x offered spike pushes 60 qps against a 50 qps bucket.
        assert report.ops["peak_window_shed_rate"] > 0.0
