"""Tests for the simulated A/B testing harness (§6.2)."""

import pytest

from repro.data import SyntheticWorld, WorldConfig
from repro.eval import ABTestHarness, ABTestResult, ArmStats


class _FixedArm:
    """Always recommends the same list; counts observes and retrains."""

    def __init__(self, recs):
        self.recs = list(recs)
        self.observed = 0
        self.retrained_at = []

    def observe(self, action):
        self.observed += 1

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return self.recs[: (n or 10)]

    def retrain(self, now):
        self.retrained_at.append(now)


class _SilentArm(_FixedArm):
    def __init__(self):
        super().__init__([])


@pytest.fixture(scope="module")
def tiny_world():
    return SyntheticWorld(WorldConfig(n_users=20, n_videos=30, days=2, seed=3))


class TestHarness:
    def test_traffic_split_is_stable(self, tiny_world):
        harness = ABTestHarness(
            tiny_world, arms={"a": _SilentArm(), "b": _SilentArm()}, days=1
        )
        for user in tiny_world.user_ids():
            assert harness.arm_of(user) == harness.arm_of(user)

    def test_traffic_split_roughly_even(self, tiny_world):
        harness = ABTestHarness(
            tiny_world, arms={"a": _SilentArm(), "b": _SilentArm()}, days=1
        )
        arms = [harness.arm_of(u) for u in tiny_world.user_ids()]
        assert 0 < arms.count("a") < len(arms)

    def test_every_arm_sees_the_shared_organic_stream(self, tiny_world):
        a, b = _SilentArm(), _SilentArm()
        ABTestHarness(tiny_world, arms={"a": a, "b": b}, days=2).run()
        assert a.observed == b.observed
        assert a.observed > 0

    def test_ctr_accounting(self, tiny_world):
        good = _FixedArm(tiny_world.video_ids()[:5])
        result = ABTestHarness(
            tiny_world, arms={"good": good}, days=2, top_n=5
        ).run()
        stats = result.arms["good"]
        assert len(stats.impressions) == 2
        assert all(i > 0 for i in stats.impressions)
        assert all(0 <= c <= i for c, i in zip(stats.clicks, stats.impressions))
        assert 0.0 <= stats.overall_ctr <= 1.0

    def test_silent_arm_counts_no_impressions(self, tiny_world):
        result = ABTestHarness(
            tiny_world, arms={"quiet": _SilentArm()}, days=1
        ).run()
        assert result.arms["quiet"].impressions == [0]

    def test_batch_arms_retrained_daily(self, tiny_world):
        arm = _FixedArm(["v0"])
        ABTestHarness(tiny_world, arms={"ar": arm}, days=3).run()
        assert len(arm.retrained_at) == 3
        assert arm.retrained_at == sorted(arm.retrained_at)

    def test_ground_truth_arm_beats_antitruth_arm(self, tiny_world):
        """An arm recommending each user's true best videos must out-CTR an
        arm recommending their worst — the harness discriminates quality."""

        class OracleArm(_SilentArm):
            def __init__(self, world, best):
                super().__init__()
                self.world = world
                self.best = best

            def recommend_ids(self, user_id, current_video=None, n=None, now=None):
                k = n or 10
                videos = self.world.best_videos(user_id, len(self.world.videos))
                return videos[:k] if self.best else videos[-k:]

        result = ABTestHarness(
            tiny_world,
            arms={
                "oracle": OracleArm(tiny_world, True),
                "anti": OracleArm(tiny_world, False),
            },
            days=3,
            seed=1,
        ).run()
        ctr = result.overall_ctr()
        assert ctr["oracle"] > ctr["anti"]

    def test_requires_arms(self, tiny_world):
        with pytest.raises(ValueError):
            ABTestHarness(tiny_world, arms={}, days=1)


class TestResult:
    def _result(self):
        arms = {
            "a": ArmStats(impressions=[100, 100], clicks=[10, 20]),
            "b": ArmStats(impressions=[100, 100], clicks=[5, 15]),
        }
        return ABTestResult(arms=arms, days=2)

    def test_daily_ctr(self):
        daily = self._result().daily_ctr()
        assert daily["a"] == [0.1, 0.2]
        assert daily["b"] == [0.05, 0.15]

    def test_overall_ctr(self):
        assert self._result().overall_ctr() == {"a": 0.15, "b": 0.10}

    def test_improvement_table(self):
        table = self._result().improvement_table()
        assert table[("a", "b")] == pytest.approx(0.5)
        assert table[("b", "a")] == pytest.approx(-1 / 3)

    def test_days_won(self):
        result = self._result()
        assert result.days_won("a") == 2
        assert result.days_won("b") == 0

    def test_zero_impressions_ctr(self):
        """Never-served days are None, never-served arms NaN — not a fake
        0.0 that is indistinguishable from 'served but never clicked'."""
        import math

        stats = ArmStats(impressions=[0, 10], clicks=[0, 0])
        assert stats.daily_ctr() == [None, 0.0]
        assert stats.overall_ctr == 0.0

        never = ArmStats(impressions=[0], clicks=[0])
        assert never.daily_ctr() == [None]
        assert math.isnan(never.overall_ctr)
