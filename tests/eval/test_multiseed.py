"""Tests for multi-seed runs and bootstrap confidence intervals."""

import pytest

from repro.clock import VirtualClock
from repro.core import RealtimeRecommender
from repro.eval import (
    SeedSummary,
    bootstrap_ci,
    per_user_recall,
    run_across_seeds,
    summarize,
)


class TestBootstrapCI:
    def test_ci_contains_sample_mean_for_spread_data(self):
        scores = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] * 10
        lo, hi = bootstrap_ci(scores, n_resamples=500)
        mean = sum(scores) / len(scores)
        assert lo <= mean <= hi

    def test_degenerate_data_gives_point_interval(self):
        lo, hi = bootstrap_ci([0.3] * 20, n_resamples=100)
        assert lo == hi == pytest.approx(0.3)

    def test_wider_confidence_wider_interval(self):
        scores = [0.0, 1.0] * 25
        lo99, hi99 = bootstrap_ci(scores, confidence=0.99, n_resamples=800)
        lo80, hi80 = bootstrap_ci(scores, confidence=0.80, n_resamples=800)
        assert hi99 - lo99 >= hi80 - lo80

    def test_deterministic_given_seed(self):
        scores = [0.1, 0.5, 0.9, 0.2]
        assert bootstrap_ci(scores, seed=1) == bootstrap_ci(scores, seed=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([0.1], confidence=1.5)


class TestPerUserRecall:
    def test_matches_eq13_mean(self):
        from repro.eval import recall_at_n

        recommended = {"u1": ["a", "b"], "u2": ["x"]}
        liked = {"u1": {"a"}, "u2": {"y"}}
        scores = per_user_recall(recommended, liked, n=2)
        assert sum(scores) / len(scores) == pytest.approx(
            recall_at_n(recommended, liked, n=2)
        )

    def test_skips_users_without_likes(self):
        scores = per_user_recall({"u": ["a"]}, {"u": set()}, n=1)
        assert scores == []

    def test_validation(self):
        with pytest.raises(ValueError):
            per_user_recall({}, {"u": {"a"}}, n=0)


class TestSeedSummary:
    def test_mean_and_std(self):
        summary = SeedSummary("recall@10", (0.1, 0.2, 0.3))
        assert summary.mean == pytest.approx(0.2)
        assert summary.std > 0
        assert "recall@10" in str(summary)


class TestRunAcrossSeeds:
    def test_two_tiny_seeds(self):
        def make(world):
            return RealtimeRecommender(
                world.videos,
                users=world.users,
                clock=VirtualClock(0.0),
                enable_demographic=False,
            )

        results = run_across_seeds(
            make,
            seeds=[1, 2],
            train_days=2,
            world_overrides={"n_users": 50, "n_videos": 60, "days": 3},
        )
        assert set(results) == {1, 2}
        summaries = summarize(results)
        assert 0.0 <= summaries["recall@10"].mean <= 1.0
        assert 0.0 <= summaries["avg_rank"].mean <= 1.0
        assert len(summaries["recall@10"].values) == 2
