"""Tests for the request router."""

import pytest

from repro.serving import RecRequest, RequestRouter, Scenario


class _Backend:
    def __init__(self, fail_for=None):
        self.fail_for = fail_for or set()
        self.calls = []

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        self.calls.append((user_id, current_video, n, now))
        if user_id in self.fail_for:
            raise RuntimeError("backend exploded")
        if user_id == "empty-user":
            return []
        return [f"rec{i}" for i in range(n or 10)]


class TestScenarioDispatch:
    def test_related_videos_scenario(self):
        request = RecRequest("u1", current_video="v9")
        assert request.scenario is Scenario.RELATED_VIDEOS

    def test_guess_you_like_scenario(self):
        assert RecRequest("u1").scenario is Scenario.GUESS_YOU_LIKE

    def test_arguments_forwarded(self):
        backend = _Backend()
        router = RequestRouter(backend)
        router.handle(RecRequest("u1", current_video="v2", n=3, timestamp=7.0))
        assert backend.calls == [("u1", "v2", 3, 7.0)]


class TestHandling:
    def test_successful_response(self):
        router = RequestRouter(_Backend())
        response = router.handle(RecRequest("u1", n=4))
        assert response.ok
        assert len(response.video_ids) == 4
        assert response.latency_seconds > 0
        assert not response.empty

    def test_backend_failure_isolated(self):
        """A failing request degrades to an empty response, never raises."""
        router = RequestRouter(_Backend(fail_for={"bad-user"}))
        response = router.handle(RecRequest("bad-user"))
        assert not response.ok
        assert response.video_ids == ()
        assert "backend exploded" in response.error

    def test_empty_results_counted(self):
        router = RequestRouter(_Backend())
        router.handle(RecRequest("empty-user"))
        stats = router.stats(Scenario.GUESS_YOU_LIKE)
        assert stats.empty == 1


class TestGracefulDegradation:
    def test_fallback_serves_when_primary_fails(self):
        fallback = _Backend()
        router = RequestRouter(_Backend(fail_for={"u1"}), fallback=fallback)
        response = router.handle(RecRequest("u1", n=3))
        assert response.ok
        assert response.degraded
        assert len(response.video_ids) == 3
        assert fallback.calls == [("u1", None, 3, None)]
        stats = router.stats(Scenario.GUESS_YOU_LIKE)
        assert stats.fallbacks == 1
        assert stats.errors == 0

    def test_fallback_not_consulted_on_success(self):
        fallback = _Backend()
        router = RequestRouter(_Backend(), fallback=fallback)
        response = router.handle(RecRequest("u1"))
        assert response.ok and not response.degraded
        assert fallback.calls == []
        assert router.stats(Scenario.GUESS_YOU_LIKE).fallbacks == 0

    def test_both_backends_failing_reports_both_errors(self):
        router = RequestRouter(
            _Backend(fail_for={"u1"}), fallback=_Backend(fail_for={"u1"})
        )
        response = router.handle(RecRequest("u1"))
        assert not response.ok
        assert not response.degraded
        assert "fallback failed" in response.error
        stats = router.stats(Scenario.GUESS_YOU_LIKE)
        assert stats.errors == 1
        assert stats.fallbacks == 0

    def test_fallbacks_in_snapshot(self):
        router = RequestRouter(_Backend(fail_for={"u1"}), fallback=_Backend())
        router.handle(RecRequest("u1"))
        assert router.snapshot()["guess_you_like"]["fallbacks"] == 1


class TestStats:
    def test_per_scenario_accounting(self):
        router = RequestRouter(_Backend(fail_for={"bad"}))
        router.handle(RecRequest("u1"))
        router.handle(RecRequest("u2", current_video="v1"))
        router.handle(RecRequest("bad", current_video="v1"))
        home = router.stats(Scenario.GUESS_YOU_LIKE)
        related = router.stats(Scenario.RELATED_VIDEOS)
        assert home.requests == 1
        assert related.requests == 2
        assert related.errors == 1
        assert router.total_requests == 3

    def test_snapshot_shape(self):
        router = RequestRouter(_Backend())
        router.handle(RecRequest("u1"))
        snap = router.snapshot()
        assert snap["guess_you_like"]["requests"] == 1
        assert snap["guess_you_like"]["mean_latency_ms"] >= 0
        assert snap["related_videos"]["requests"] == 0

    def test_concurrent_handling_counts_exactly(self):
        import threading

        router = RequestRouter(_Backend())

        def fire():
            for i in range(100):
                router.handle(RecRequest(f"u{i}"))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert router.total_requests == 600
        assert router.stats(Scenario.GUESS_YOU_LIKE).latency.count == 600


class TestHandleMany:
    def test_batch_responses_in_request_order(self):
        router = RequestRouter(_Backend())
        requests = [RecRequest(f"u{i}") for i in range(5)]
        responses = router.handle_many(requests)
        assert [r.request.user_id for r in responses] == [
            f"u{i}" for i in range(5)
        ]
        assert router.total_requests == 5

    def test_empty_batch_is_a_noop(self):
        """The gateway's empty-flush path must not touch any accounting."""
        from repro.obs import Observability

        obs = Observability.create()
        router = RequestRouter(_Backend(), obs=obs)
        assert router.handle_many([]) == []
        assert router.total_requests == 0
        for scenario in Scenario:
            stats = router.stats(scenario)
            assert stats.requests == 0
            assert stats.latency.count == 0
        # Registry side: no serving counter series exists yet either.
        totals = obs.registry.counter_totals()
        assert not any(
            name.startswith("serving_requests_total") for name in totals
        )
